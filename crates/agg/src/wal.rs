//! Durability for the aggregator: checkpoint files + a delta WAL.
//!
//! Both artifacts reuse the integrity armour the repo already has.
//! The **WAL** is simply the accepted sequenced wire frames
//! ([`ppp_ir::wire`], CRC-framed) appended verbatim to
//! `<dir>/<bench>.wal` *before* the delta is applied; a torn tail (a
//! crash mid-append) is detected by the frame CRC and cut off on
//! recovery. The **checkpoint** at `<dir>/<bench>.ckpt` is itself a
//! frame stream — a `Hello`-kind manifest naming the bench, the shard
//! count, and every client's acked sequence watermark, followed by one
//! persist_v2 edge + path container per shard (each carrying only the
//! functions that shard owns) and a closing `Done`. Checkpoints are
//! written to a temp file and atomically renamed, so a crash mid-write
//! leaves the previous checkpoint intact; the WAL is truncated only
//! *after* the rename, so a crash between the two merely replays
//! deltas the watermark dedup then drops.
//!
//! Recovery (`Aggregator::recover` in [`crate::recover`]) therefore
//! reconstructs exactly the uncrashed state: checkpoint first, then
//! every complete WAL record above the checkpointed watermarks.

use ppp_ir::wire::{decode_stream, encode_frame, Frame, FrameKind};
use ppp_ir::{
    read_edge_profile_v2, read_path_profile_v2, write_edge_profile_v2, write_path_profile_v2,
    Module, ModuleEdgeProfile, ModulePathProfile,
};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Durability knobs for one aggregator.
#[derive(Clone, Debug)]
pub struct DurOptions {
    /// Directory holding `<bench>.ckpt` / `<bench>.wal`.
    pub dir: PathBuf,
    /// Write a checkpoint every this many accepted sequenced deltas
    /// (0 = only on explicit [`crate::Aggregator::checkpoint`] calls).
    pub checkpoint_every: u64,
}

impl DurOptions {
    /// Durability under `dir`, checkpointing every `checkpoint_every`
    /// accepted deltas.
    pub fn new(dir: impl Into<PathBuf>, checkpoint_every: u64) -> Self {
        Self {
            dir: dir.into(),
            checkpoint_every,
        }
    }
}

/// Benchmark names come from `Hello` frames, i.e. over a trust
/// boundary; anything that could traverse directories is flattened
/// before it becomes a file name.
fn safe_stem(bench: &str) -> String {
    let mut stem: String = bench
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if stem.is_empty() || stem.bytes().all(|b| b == b'.') {
        stem = "_".to_owned();
    }
    stem
}

/// Path of the WAL for `bench` under `dir`.
pub fn wal_path(dir: &Path, bench: &str) -> PathBuf {
    dir.join(format!("{}.wal", safe_stem(bench)))
}

/// Path of the checkpoint for `bench` under `dir`.
pub fn checkpoint_path(dir: &Path, bench: &str) -> PathBuf {
    dir.join(format!("{}.ckpt", safe_stem(bench)))
}

/// An open WAL, appending complete wire frames.
pub struct Wal {
    file: File,
    len: u64,
    bench: String,
}

impl Wal {
    /// Opens (creating if absent) the WAL at `path`, truncated to
    /// `valid_len` — recovery passes the verified frame-prefix length
    /// so a torn tail never survives into the next append.
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn open(path: &Path, valid_len: u64, bench: &str) -> std::io::Result<Wal> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(path)?;
        file.set_len(valid_len)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        Ok(Wal {
            file,
            len: valid_len,
            bench: bench.to_owned(),
        })
    }

    /// Bytes currently in the log.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// `true` when the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one encoded frame and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Propagates write failures; the caller must then refuse the
    /// delta (never apply what was not logged).
    pub fn append(&mut self, frame_bytes: &[u8]) -> std::io::Result<()> {
        let started = std::time::Instant::now();
        self.file.write_all(frame_bytes)?;
        self.file.flush()?;
        self.len += frame_bytes.len() as u64;
        let obs = ppp_obs::global();
        let metrics = obs.metrics();
        metrics.observe(
            ppp_obs::names::WAL_FSYNC_MICROS,
            &[("bench", &self.bench)],
            started.elapsed().as_micros() as u64,
        );
        metrics.inc(ppp_obs::names::WAL_APPENDS, &[("bench", &self.bench)]);
        metrics.inc_by(
            ppp_obs::names::WAL_BYTES,
            &[("bench", &self.bench)],
            frame_bytes.len() as u64,
        );
        Ok(())
    }

    /// Empties the log (called after a checkpoint rename lands).
    ///
    /// # Errors
    ///
    /// Propagates file-system failures.
    pub fn reset(&mut self) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        Ok(())
    }
}

/// What a WAL scan found: the decodable frame prefix and how much
/// tail (if any) was torn off by a crash mid-append.
pub struct WalScan {
    /// Every complete, CRC-valid frame in order.
    pub frames: Vec<Frame>,
    /// Byte length of the valid prefix.
    pub valid_len: u64,
    /// Bytes past the valid prefix (torn tail), 0 when clean.
    pub torn_bytes: u64,
    /// The wire error that ended the scan, if any.
    pub damage: Option<String>,
}

/// Reads and verifies the WAL at `path`. A missing file is an empty,
/// clean scan.
///
/// # Errors
///
/// Propagates file-system failures (not frame damage — that is
/// reported in the scan).
pub fn scan_wal(path: &Path) -> std::io::Result<WalScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let (frames, damage) = decode_stream(&bytes);
    let (valid_len, damage) = match damage {
        Some((at, e)) => (at as u64, Some(e.to_string())),
        None => (bytes.len() as u64, None),
    };
    Ok(WalScan {
        frames,
        torn_bytes: bytes.len() as u64 - valid_len,
        valid_len,
        damage,
    })
}

/// A loaded checkpoint: merged profiles plus the per-client sequence
/// watermarks captured in the same consistent cut.
pub struct Checkpoint {
    /// Shard count recorded at write time (informational; recovery
    /// re-shards freely because merges are order-independent).
    pub shards: usize,
    /// Per-client acked sequence watermarks.
    pub watermarks: BTreeMap<u64, u64>,
    /// Merged edge profile.
    pub edges: ModuleEdgeProfile,
    /// Merged path profile.
    pub paths: ModulePathProfile,
}

/// Serializes and atomically installs a checkpoint. `shard_profiles`
/// holds one module-shaped (edge, path) pair per shard, each carrying
/// only that shard's owned functions. Returns bytes written.
///
/// # Errors
///
/// Propagates file-system failures; the previous checkpoint (if any)
/// is untouched on failure.
pub fn write_checkpoint(
    dir: &Path,
    bench: &str,
    module: &Module,
    watermarks: &BTreeMap<u64, u64>,
    shard_profiles: &[(ModuleEdgeProfile, ModulePathProfile)],
) -> std::io::Result<u64> {
    std::fs::create_dir_all(dir)?;
    let mut manifest = format!(
        "ppp-agg ckpt v1\nbench {bench}\nfuncs {}\nshards {}\n",
        module.functions.len(),
        shard_profiles.len()
    );
    for (client, seq) in watermarks {
        manifest.push_str(&format!("client {client} {seq}\n"));
    }
    let mut bytes = encode_frame(FrameKind::Hello, manifest.as_bytes());
    for (edges, paths) in shard_profiles {
        bytes.extend(encode_frame(
            FrameKind::EdgeDelta,
            write_edge_profile_v2(module, edges).as_bytes(),
        ));
        bytes.extend(encode_frame(
            FrameKind::PathDelta,
            write_path_profile_v2(module, paths).as_bytes(),
        ));
    }
    bytes.extend(encode_frame(FrameKind::Done, b""));

    let target = checkpoint_path(dir, bench);
    let tmp = target.with_extension("ckpt.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, &target)?;
    let obs = ppp_obs::global();
    let metrics = obs.metrics();
    metrics.inc(ppp_obs::names::WAL_CHECKPOINTS, &[("bench", bench)]);
    metrics.inc_by(
        ppp_obs::names::WAL_CHECKPOINT_BYTES,
        &[("bench", bench)],
        bytes.len() as u64,
    );
    Ok(bytes.len() as u64)
}

/// Loads the checkpoint for `bench`, strictly verified against
/// `module`. `Ok(None)` when no checkpoint exists.
///
/// # Errors
///
/// A checkpoint that exists but fails any check (frame damage, bad
/// manifest, shape mismatch, missing `Done`) is an error: atomic
/// rename means a valid install can only be damaged after the fact,
/// which must surface loudly rather than silently start from zero.
pub fn read_checkpoint(
    dir: &Path,
    bench: &str,
    module: &Module,
) -> Result<Option<Checkpoint>, String> {
    let path = checkpoint_path(dir, bench);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => f
            .read_to_end(&mut bytes)
            .map_err(|e| format!("checkpoint {}: {e}", path.display()))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("checkpoint {}: {e}", path.display())),
    };
    let (frames, damage) = decode_stream(&bytes);
    if let Some((at, e)) = damage {
        return Err(format!(
            "checkpoint {} damaged at byte {at}: {e}",
            path.display()
        ));
    }
    let mut it = frames.into_iter();
    let manifest = match it.next() {
        Some(f) if f.kind == FrameKind::Hello => f.payload,
        _ => return Err(format!("checkpoint {} has no manifest", path.display())),
    };
    let (shards, watermarks) = parse_manifest(&manifest, bench, module)
        .map_err(|e| format!("checkpoint {}: {e}", path.display()))?;
    let mut edges = ModuleEdgeProfile::zeroed(module);
    let mut paths = ModulePathProfile::with_capacity(module.functions.len());
    let mut saw_done = false;
    for frame in it {
        match frame.kind {
            FrameKind::EdgeDelta => {
                let shard = read_edge_profile_v2(module, &frame.payload)
                    .map_err(|e| format!("checkpoint {}: edge shard: {e}", path.display()))?;
                edges.merge(&shard);
            }
            FrameKind::PathDelta => {
                let shard = read_path_profile_v2(module, &frame.payload)
                    .map_err(|e| format!("checkpoint {}: path shard: {e}", path.display()))?;
                paths.merge(&shard);
            }
            FrameKind::Done => saw_done = true,
            other => {
                return Err(format!(
                    "checkpoint {}: unexpected {other} frame",
                    path.display()
                ))
            }
        }
    }
    if !saw_done {
        return Err(format!(
            "checkpoint {} is incomplete (no Done frame)",
            path.display()
        ));
    }
    Ok(Some(Checkpoint {
        shards,
        watermarks,
        edges,
        paths,
    }))
}

fn parse_manifest(
    payload: &[u8],
    bench: &str,
    module: &Module,
) -> Result<(usize, BTreeMap<u64, u64>), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "manifest is not utf-8".to_owned())?;
    let mut lines = text.lines();
    if lines.next() != Some("ppp-agg ckpt v1") {
        return Err("missing manifest header".to_owned());
    }
    let mut shards = 1usize;
    let mut watermarks = BTreeMap::new();
    for line in lines {
        let Some((key, value)) = line.split_once(' ') else {
            return Err(format!("malformed manifest line {line:?}"));
        };
        match key {
            "bench" => {
                if value != bench {
                    return Err(format!(
                        "manifest is for bench {value:?}, expected {bench:?}"
                    ));
                }
            }
            "funcs" => {
                let funcs: usize = value.parse().map_err(|_| format!("bad funcs {value:?}"))?;
                if funcs != module.functions.len() {
                    return Err(format!(
                        "manifest has {funcs} functions, module has {}",
                        module.functions.len()
                    ));
                }
            }
            "shards" => {
                shards = value.parse().map_err(|_| format!("bad shards {value:?}"))?;
            }
            "client" => {
                let (id, seq) = value
                    .split_once(' ')
                    .ok_or_else(|| format!("malformed client line {line:?}"))?;
                let id: u64 = id.parse().map_err(|_| format!("bad client id {id:?}"))?;
                let seq: u64 = seq.parse().map_err(|_| format!("bad watermark {seq:?}"))?;
                watermarks.insert(id, seq);
            }
            _ => return Err(format!("unknown manifest key {key:?}")),
        }
    }
    Ok((shards, watermarks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::wire::encode_seq_payload;

    fn scratch(tag: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/ppp-scratch/wal-unit")
            .join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn bench_names_cannot_escape_the_directory() {
        assert_eq!(safe_stem("mcf"), "mcf");
        assert_eq!(safe_stem("../../etc/passwd"), ".._.._etc_passwd");
        assert_eq!(safe_stem(".."), "_");
        assert_eq!(safe_stem(""), "_");
    }

    #[test]
    fn wal_append_scan_roundtrip_and_torn_tail() {
        let dir = scratch("torn-tail");
        let path = wal_path(&dir, "t");
        let frame = encode_frame(
            FrameKind::SeqEdgeDelta,
            &encode_seq_payload(1, 1, b"payload"),
        );
        {
            let mut wal = Wal::open(&path, 0, "t").expect("open");
            wal.append(&frame).expect("append");
            wal.append(&frame).expect("append");
            assert_eq!(wal.len(), 2 * frame.len() as u64);
        }
        // Simulate a crash mid-append: half a frame at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).expect("open");
            f.write_all(&frame[..frame.len() / 2]).expect("tear");
        }
        let scan = scan_wal(&path).expect("scan");
        assert_eq!(scan.frames.len(), 2);
        assert_eq!(scan.valid_len, 2 * frame.len() as u64);
        assert_eq!(scan.torn_bytes, (frame.len() / 2) as u64);
        assert!(scan.damage.is_some());

        // Re-opening at the valid length truncates the torn tail.
        let wal = Wal::open(&path, scan.valid_len, "t").expect("reopen");
        assert_eq!(wal.len(), scan.valid_len);
        let scan = scan_wal(&path).expect("rescan");
        assert_eq!(scan.torn_bytes, 0);
        assert!(scan.damage.is_none());

        // Missing files scan clean and empty.
        let scan = scan_wal(&wal_path(&dir, "absent")).expect("scan absent");
        assert!(scan.frames.is_empty() && scan.torn_bytes == 0);
    }
}
