//! A minimal scoped worker pool with deterministic result ordering.
//!
//! `run_indexed` fans N independent work items over W threads and
//! returns the results *in item order*, whatever order the threads
//! finished in — which is what lets `repro chaos --workers 8` and
//! `repro bench --workers 8` produce byte-identical output to their
//! sequential runs. Work is claimed from a shared atomic counter, so a
//! slow item never idles the other workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f(0..n)` across `workers` threads; `out[i] == f(i)`.
///
/// `workers == 0` or `1` (or `n <= 1`) degrades to a plain sequential
/// loop on the calling thread — no threads, identical behavior.
///
/// # Panics
///
/// If `f` panics on any item the panic is propagated after all workers
/// stop claiming new work.
pub fn run_indexed<R, F>(workers: usize, n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if workers <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        return;
                    }
                    let r = f(i);
                    results.lock().expect("pool results lock")[i] = Some(r);
                })
            })
            .collect();
        for h in handles {
            if let Err(p) = h.join() {
                // Stop the other workers from claiming more items, then
                // re-raise on the caller.
                next.store(n, Ordering::Relaxed);
                std::panic::resume_unwind(p);
            }
        }
    });
    results
        .into_inner()
        .expect("pool results lock")
        .into_iter()
        .map(|r| r.expect("every index completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        for workers in [0, 1, 2, 8, 32] {
            let out = run_indexed(workers, 20, |i| i * i);
            assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        assert_eq!(run_indexed(16, 3, |i| i), vec![0, 1, 2]);
        assert_eq!(run_indexed(16, 0, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn parallel_mode_runs_off_the_calling_thread() {
        use std::collections::HashSet;
        use std::thread::ThreadId;
        let caller = std::thread::current().id();
        let ids = Mutex::new(HashSet::<ThreadId>::new());
        run_indexed(4, 64, |_| {
            ids.lock().unwrap().insert(std::thread::current().id());
        });
        // All work is claimed by spawned workers; how many of the 4 get
        // a slice depends on scheduling (on a single core, often one).
        let ids = ids.lock().unwrap();
        assert!(!ids.is_empty() && !ids.contains(&caller));
        // Sequential mode stays on the caller.
        let seq = Mutex::new(HashSet::<ThreadId>::new());
        run_indexed(1, 4, |_| {
            seq.lock().unwrap().insert(std::thread::current().id());
        });
        assert_eq!(*seq.lock().unwrap(), HashSet::from([caller]));
    }
}
