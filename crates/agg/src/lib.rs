//! # ppp-agg: a sharded, concurrent profile-aggregation service
//!
//! The paper's premise is a profile feeding a *dynamic optimizer* — a
//! consumer that ingests profiles continuously while programs run. This
//! crate is that ingestion tier for the reproduction: N concurrent VM
//! workers stream partial profile deltas (cut by the tracer's delta
//! hooks — `Tracer::enable_deltas` in `ppp-vm`) to a K-way sharded
//! aggregator that merges them into a single
//! flow-conservative [`ppp_ir::ModuleEdgeProfile`] / path profile.
//!
//! Layers, bottom up:
//!
//! - [`queue`]: bounded blocking queues — a slow shard throttles the
//!   workers feeding it (backpressure), never grows without bound;
//! - [`shard`]: the [`Aggregator`] — K shard threads, each owning the
//!   functions with `func_id % K == shard`, merging with saturating
//!   (commutative, associative) adds so snapshots are **byte-identical**
//!   to a sequential merge regardless of shard count or arrival order;
//! - [`service`]: the per-benchmark [`AggService`] registry, the
//!   batching [`AggClient`], and the [`FrameSink`] abstraction over
//!   transports;
//! - [`tcp`]: a localhost `std::net` transport (one thread per
//!   connection, no async runtime) speaking the `PPAG` frame format of
//!   [`ppp_ir::wire`];
//! - [`pool`]: a scoped worker pool with deterministic result ordering,
//!   reused by `repro chaos --workers` / `repro bench --workers`.
//!
//! Everything is observable through the process-global `ppp-obs`
//! metrics registry (`ppp_agg_*` counters and histograms), and the wire
//! path is fault-tested by `repro chaos` through the
//! `truncate-frame` / `corrupt-frame` / `kill-connection` sites.
//!
//! Zero dependencies outside the workspace: std threads, `Mutex`,
//! `Condvar`, and `TcpListener` only.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod pool;
pub mod queue;
pub mod recover;
pub mod service;
pub mod shard;
pub mod tcp;
pub mod wal;

pub use pool::run_indexed;
pub use queue::BoundedQueue;
pub use recover::RecoveryReport;
pub use service::{AggClient, AggService, FrameSink, Hello, InProcSink, RetryPolicy};
pub use shard::{AggConfig, Aggregator, IngestError, IngestOutcome, StreamReport};
pub use tcp::{
    fetch_stats, read_frame, ModuleResolver, ReadError, ResilientSink, ServeOptions, Server,
    TcpSink, STATS_SCHEMA,
};
pub use wal::DurOptions;
