//! The aggregation service and the worker-side streaming client.
//!
//! [`AggService`] hosts one [`Aggregator`] per registered benchmark,
//! keyed by the benchmark name carried in `Hello` frames. Registration
//! is idempotent, so N workers streaming the same benchmark all land on
//! the same aggregator.
//!
//! [`AggClient`] is the producer half: a VM worker hands it profile
//! deltas as they are cut; the client merges them into a local batch
//! (saturating, so batching cannot change the merged result) and ships
//! the batch as wire frames every `max_batch` deltas. Frames flow
//! through a [`FrameSink`] — in-process straight into an aggregator's
//! wire decoder, or over TCP — so the wire path is exercised even when
//! no socket is involved.

use crate::shard::{AggConfig, Aggregator};
use crate::wal::DurOptions;
use ppp_ir::wire::{
    encode_frame, encode_seq_payload, encode_seq_payload_traced, FrameKind, TraceContext,
};
use ppp_ir::{
    write_edge_profile_v2, write_path_profile_v2, Module, ModuleEdgeProfile, ModulePathProfile,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Contents of a `Hello` frame: which benchmark the following deltas
/// belong to, from which worker.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hello {
    /// Benchmark (aggregator registry key).
    pub bench: String,
    /// Function count of the worker's module — cross-checked against
    /// the server's module so mismatched builds are refused up front.
    pub funcs: usize,
    /// Workload scale factor as exact `f64` bits (text-safe).
    pub scale_bits: u64,
    /// Worker id (diagnostics only).
    pub worker: u64,
}

impl Hello {
    /// Serializes into a `Hello` frame payload.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "ppp-agg hello v1\nbench {}\nfuncs {}\nscale_bits {:016x}\nworker {}\n",
            self.bench, self.funcs, self.scale_bits, self.worker
        )
        .into_bytes()
    }

    /// Parses a `Hello` frame payload.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line. Never panics.
    pub fn parse(payload: &[u8]) -> Result<Hello, String> {
        let text = std::str::from_utf8(payload).map_err(|_| "hello is not utf-8".to_owned())?;
        let mut lines = text.lines();
        if lines.next() != Some("ppp-agg hello v1") {
            return Err("missing hello header".to_owned());
        }
        let mut bench = None;
        let mut funcs = None;
        let mut scale_bits = None;
        let mut worker = None;
        for line in lines {
            let Some((key, value)) = line.split_once(' ') else {
                return Err(format!("malformed hello line {line:?}"));
            };
            match key {
                "bench" => bench = Some(value.to_owned()),
                "funcs" => {
                    funcs = Some(
                        value
                            .parse::<usize>()
                            .map_err(|_| format!("bad funcs count {value:?}"))?,
                    );
                }
                "scale_bits" => {
                    scale_bits = Some(
                        u64::from_str_radix(value, 16)
                            .map_err(|_| format!("bad scale_bits {value:?}"))?,
                    );
                }
                "worker" => {
                    worker = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("bad worker id {value:?}"))?,
                    );
                }
                _ => return Err(format!("unknown hello key {key:?}")),
            }
        }
        Ok(Hello {
            bench: bench.ok_or("hello missing bench")?,
            funcs: funcs.ok_or("hello missing funcs")?,
            scale_bits: scale_bits.unwrap_or(0),
            worker: worker.unwrap_or(0),
        })
    }
}

/// A registry of per-benchmark aggregators.
pub struct AggService {
    config: AggConfig,
    aggs: Mutex<BTreeMap<String, Arc<Aggregator>>>,
    durability: Option<DurOptions>,
}

impl AggService {
    /// Creates an empty service; every registered aggregator uses
    /// `config`.
    pub fn new(config: AggConfig) -> Arc<Self> {
        Arc::new(Self {
            config,
            aggs: Mutex::new(BTreeMap::new()),
            durability: None,
        })
    }

    /// Creates a *durable* service: every registered aggregator
    /// checkpoints + WALs under `durability.dir`, and registration
    /// recovers whatever state survives there — so restarting a
    /// crashed service and re-registering a benchmark resumes from the
    /// last durable cut instead of zero.
    pub fn new_durable(config: AggConfig, durability: DurOptions) -> Arc<Self> {
        Arc::new(Self {
            config,
            aggs: Mutex::new(BTreeMap::new()),
            durability: Some(durability),
        })
    }

    /// `true` when registrations recover from / persist to disk.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Returns the aggregator for `bench`, spawning it on first use.
    /// On a durable service, first use recovers checkpoint + WAL state
    /// from the durability directory.
    ///
    /// # Errors
    ///
    /// Refuses re-registration under the same key with a different
    /// module shape (two workers disagreeing about the program must not
    /// share an accumulator), and propagates recovery failures.
    pub fn register(&self, bench: &str, module: &Arc<Module>) -> Result<Arc<Aggregator>, String> {
        let mut aggs = self.aggs.lock().expect("service lock");
        if let Some(existing) = aggs.get(bench) {
            if existing.module().functions.len() != module.functions.len() {
                return Err(format!(
                    "benchmark {bench:?} already registered with {} functions, got {}",
                    existing.module().functions.len(),
                    module.functions.len()
                ));
            }
            return Ok(Arc::clone(existing));
        }
        let agg = match &self.durability {
            Some(dur) => {
                let (agg, report) =
                    Aggregator::recover(bench, Arc::clone(module), self.config, dur.clone())?;
                if !report.cold_start() {
                    ppp_obs::global().info(
                        "agg.recovered",
                        &[
                            ("bench", ppp_obs::Value::from(bench)),
                            ("summary", ppp_obs::Value::from(report.summary())),
                        ],
                    );
                }
                agg
            }
            None => Aggregator::new(bench, Arc::clone(module), self.config),
        };
        let agg = Arc::new(agg);
        aggs.insert(bench.to_owned(), Arc::clone(&agg));
        Ok(agg)
    }

    /// Checkpoints every registered durable aggregator (graceful
    /// shutdown path). Returns the number checkpointed.
    ///
    /// # Errors
    ///
    /// Reports the first failure after attempting every aggregator.
    pub fn checkpoint_all(&self) -> Result<usize, String> {
        let aggs: Vec<Arc<Aggregator>> = self
            .aggs
            .lock()
            .expect("service lock")
            .values()
            .cloned()
            .collect();
        let mut written = 0;
        let mut first_err = None;
        for agg in aggs {
            match agg.checkpoint() {
                Ok(true) => written += 1,
                Ok(false) => {}
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(written),
        }
    }

    /// The aggregator registered for `bench`, if any.
    pub fn get(&self, bench: &str) -> Option<Arc<Aggregator>> {
        self.aggs.lock().expect("service lock").get(bench).cloned()
    }

    /// Registered benchmark keys, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.aggs
            .lock()
            .expect("service lock")
            .keys()
            .cloned()
            .collect()
    }
}

/// Where a client's frames go.
pub trait FrameSink {
    /// Delivers one encoded frame.
    ///
    /// # Errors
    ///
    /// Returns a description of the delivery failure.
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), String>;
}

/// Delivers frames straight into an [`Aggregator`]'s wire decoder —
/// deliberately through the full encode/decode/CRC path, so in-process
/// aggregation exercises exactly the bytes TCP would carry.
pub struct InProcSink {
    agg: Arc<Aggregator>,
}

impl InProcSink {
    /// A sink feeding `agg`.
    pub fn new(agg: Arc<Aggregator>) -> Self {
        Self { agg }
    }
}

impl FrameSink for InProcSink {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), String> {
        let report = self.agg.ingest_stream(bytes);
        if let Some((off, e)) = &report.wire_error {
            return Err(format!("wire damage at byte {off}: {e}"));
        }
        if let Some((i, e)) = report.rejected.first() {
            return Err(format!("frame {i} rejected: {e}"));
        }
        Ok(())
    }
}

/// Deterministic, jitter-free retry schedule for resilient sinks:
/// attempt `n` sleeps `min(base << n, cap)`. No randomness — the same
/// failure sequence always produces the same schedule, which keeps
/// chaos and drive runs reproducible.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Delivery attempts before giving up (min 1).
    pub attempts: u32,
    /// First backoff sleep.
    pub base: Duration,
    /// Backoff ceiling.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 8,
            base: Duration::from_millis(25),
            cap: Duration::from_millis(400),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.min(16);
        let exp = self.base.checked_mul(1u32 << shift).unwrap_or(self.cap);
        exp.min(self.cap)
    }
}

/// The worker-side streaming client: batches deltas, ships sequenced
/// frames. Every delta frame carries `(client id, seq)` — the client
/// id is the hello's `worker`, the sequence is strictly monotonic from
/// 1 — so the server can drop retried duplicates and report an acked
/// watermark for reconnect-and-resume.
pub struct AggClient<S: FrameSink> {
    module: Arc<Module>,
    sink: S,
    max_batch: usize,
    batch_edges: ModuleEdgeProfile,
    batch_paths: ModulePathProfile,
    batched: usize,
    /// Client id carried in sequenced frames (the hello's `worker`).
    client: u64,
    /// Next sequence number to assign.
    next_seq: u64,
    /// Frames sent, by kind (diagnostics).
    frames_sent: u64,
    /// Payload bytes sent.
    bytes_sent: u64,
    finished: bool,
    /// When set, flushed frames carry a trace context (this trace id +
    /// the send span's id) so server-side apply spans stitch under
    /// this client's send spans. `None` keeps the wire bytes identical
    /// to an untraced client.
    trace_id: Option<u64>,
}

impl<S: FrameSink> AggClient<S> {
    /// Opens a session: sends `hello` immediately, then batches up to
    /// `max_batch` deltas (min 1) per frame pair.
    ///
    /// # Errors
    ///
    /// Fails if the hello frame cannot be delivered.
    pub fn open(
        module: Arc<Module>,
        sink: S,
        max_batch: usize,
        hello: &Hello,
    ) -> Result<Self, String> {
        let mut client = Self {
            batch_edges: ModuleEdgeProfile::zeroed(&module),
            batch_paths: ModulePathProfile::with_capacity(module.functions.len()),
            module,
            sink,
            max_batch: max_batch.max(1),
            batched: 0,
            client: hello.worker,
            next_seq: 1,
            frames_sent: 0,
            bytes_sent: 0,
            finished: false,
            trace_id: None,
        };
        client.send(FrameKind::Hello, &hello.encode())?;
        Ok(client)
    }

    /// Adds one delta to the current batch, flushing when full. The
    /// local batch merge saturates, so batch size cannot change the
    /// aggregate.
    ///
    /// # Errors
    ///
    /// Propagates delivery failures from a triggered flush.
    pub fn push_delta(
        &mut self,
        edges: &ModuleEdgeProfile,
        paths: &ModulePathProfile,
    ) -> Result<(), String> {
        self.batch_edges.merge(edges);
        self.batch_paths.merge(paths);
        self.batched += 1;
        if self.batched >= self.max_batch {
            self.flush()?;
        }
        Ok(())
    }

    /// Ships the current batch as an edge frame + a path frame.
    ///
    /// # Errors
    ///
    /// Propagates delivery failures.
    pub fn flush(&mut self) -> Result<(), String> {
        if self.batched == 0 {
            return Ok(());
        }
        ppp_obs::global()
            .metrics()
            .observe("ppp_agg_batch_deltas", &[], self.batched as u64);
        let edges = write_edge_profile_v2(&self.module, &self.batch_edges);
        let paths = write_path_profile_v2(&self.module, &self.batch_paths);
        // The send span's id rides inside the frames, so it must be
        // open (and allocated) before the payloads are encoded; it
        // closes when this flush returns, covering the delivery.
        let send_span = self.trace_id.map(|tid| {
            let mut s = ppp_obs::global().span("client.send");
            s.set("trace_id", tid);
            s.set("client", self.client);
            s.set("first_seq", self.next_seq);
            s
        });
        let (seq_edges, seq_paths) = match (&send_span, self.trace_id) {
            (Some(span), Some(tid)) => {
                let ctx = TraceContext::sampled(tid, span.id());
                (
                    encode_seq_payload_traced(self.client, self.next_seq, &ctx, edges.as_bytes()),
                    encode_seq_payload_traced(
                        self.client,
                        self.next_seq + 1,
                        &ctx,
                        paths.as_bytes(),
                    ),
                )
            }
            _ => (
                encode_seq_payload(self.client, self.next_seq, edges.as_bytes()),
                encode_seq_payload(self.client, self.next_seq + 1, paths.as_bytes()),
            ),
        };
        self.send(FrameKind::SeqEdgeDelta, &seq_edges)?;
        self.next_seq += 1;
        self.send(FrameKind::SeqPathDelta, &seq_paths)?;
        self.next_seq += 1;
        for f in &mut self.batch_edges.funcs {
            f.zero();
        }
        for f in &mut self.batch_paths.funcs {
            f.clear();
        }
        self.batched = 0;
        Ok(())
    }

    /// Flushes any remainder and sends `Done`. Idempotent.
    ///
    /// # Errors
    ///
    /// Propagates delivery failures.
    pub fn finish(&mut self) -> Result<(), String> {
        if self.finished {
            return Ok(());
        }
        self.flush()?;
        self.send(FrameKind::Done, b"")?;
        self.finished = true;
        Ok(())
    }

    /// Enables distributed tracing for subsequent flushes: each frame
    /// pair carries `(trace_id, send-span id)` so the server's
    /// `shard.apply` span stitches under this client's `client.send`.
    pub fn set_trace_id(&mut self, trace_id: u64) {
        self.trace_id = Some(trace_id);
    }

    /// `(frames, payload bytes)` sent so far.
    pub fn sent(&self) -> (u64, u64) {
        (self.frames_sent, self.bytes_sent)
    }

    /// Highest sequence number assigned so far (0 before any flush).
    /// After a clean `finish`, the server's acked watermark for this
    /// client must equal this.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Consumes the client, returning its sink (e.g. to read a TCP ack).
    pub fn into_sink(self) -> S {
        self.sink
    }

    fn send(&mut self, kind: FrameKind, payload: &[u8]) -> Result<(), String> {
        let bytes = encode_frame(kind, payload);
        self.sink.send_frame(&bytes)?;
        self.frames_sent += 1;
        self.bytes_sent += payload.len() as u64;
        ppp_obs::global()
            .metrics()
            .inc("ppp_agg_client_frames_sent_total", &[("kind", kind.name())]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{BlockId, EdgeRef, FunctionBuilder, Reg};

    fn test_module() -> Arc<Module> {
        let mut m = Module::new();
        for i in 0..3 {
            let mut b = FunctionBuilder::new(format!("f{i}"), 1);
            let (t, e) = (b.new_block(), b.new_block());
            b.branch(Reg(0), t, e);
            b.switch_to(t);
            b.ret(None);
            b.switch_to(e);
            b.ret(None);
            m.add_function(b.finish());
        }
        Arc::new(m)
    }

    #[test]
    fn hello_roundtrip_and_damage() {
        let h = Hello {
            bench: "mcf".to_owned(),
            funcs: 12,
            scale_bits: 0.25f64.to_bits(),
            worker: 3,
        };
        assert_eq!(Hello::parse(&h.encode()), Ok(h.clone()));
        assert!(Hello::parse(b"nope").is_err());
        assert!(Hello::parse(b"ppp-agg hello v1\nfuncs twelve\n").is_err());
        assert!(
            Hello::parse(b"ppp-agg hello v1\nfuncs 3\n").is_err(),
            "bench required"
        );
    }

    #[test]
    fn service_registration_is_idempotent_and_shape_checked() {
        let m = test_module();
        let svc = AggService::new(AggConfig::default());
        let a = svc.register("crafty", &m).expect("register");
        let b = svc.register("crafty", &m).expect("re-register");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(svc.keys(), vec!["crafty".to_owned()]);

        let mut other = Module::new();
        let mut fb = FunctionBuilder::new("only", 0);
        fb.ret(None);
        other.add_function(fb.finish());
        assert!(svc.register("crafty", &Arc::new(other)).is_err());
        assert!(svc.get("crafty").is_some());
        assert!(svc.get("vpr").is_none());
    }

    #[test]
    fn client_batches_and_aggregates_through_the_wire() {
        let m = test_module();
        let svc = AggService::new(AggConfig {
            shards: 2,
            queue_cap: 8,
        });
        let agg = svc.register("gap", &m).expect("register");

        let mut delta = ModuleEdgeProfile::zeroed(&m);
        let p = &mut delta.funcs[1];
        p.set_entries(2);
        p.set_block(BlockId(0), 2);
        p.set_edge(EdgeRef::new(BlockId(0), 1), 2);
        p.set_block(BlockId(2), 2);
        let paths = ModulePathProfile::with_capacity(3);

        let hello = Hello {
            bench: "gap".to_owned(),
            funcs: 3,
            scale_bits: 0,
            worker: 0,
        };
        let mut client =
            AggClient::open(Arc::clone(&m), InProcSink::new(Arc::clone(&agg)), 4, &hello)
                .expect("open");
        for _ in 0..10 {
            client.push_delta(&delta, &paths).expect("push");
        }
        client.finish().expect("finish");
        client.finish().expect("idempotent");
        // 10 deltas at batch 4 = 3 flushes = 1 hello + 6 delta frames + done.
        assert_eq!(client.sent().0, 8);

        let (edges, _) = agg.snapshot();
        assert_eq!(edges.funcs[1].entries(), 20);
        assert_eq!(edges.funcs[1].edge(EdgeRef::new(BlockId(0), 1)), 20);
    }

    #[test]
    fn traced_client_stitches_send_and_apply_spans() {
        let (ctx, collect) = ppp_obs::ObsCtx::collecting();
        ppp_obs::install_global(ctx);
        let m = test_module();
        // Created after install_global so the aggregator observes into
        // the collecting context.
        let svc = AggService::new(AggConfig::default());
        let agg = svc.register("traced", &m).expect("register");
        let hello = Hello {
            bench: "traced".to_owned(),
            funcs: 3,
            scale_bits: 0,
            worker: 7,
        };
        let mut client =
            AggClient::open(Arc::clone(&m), InProcSink::new(Arc::clone(&agg)), 1, &hello)
                .expect("open");
        client.set_trace_id(0xABCD);
        client
            .push_delta(
                &ModuleEdgeProfile::zeroed(&m),
                &ModulePathProfile::with_capacity(3),
            )
            .expect("push");
        client.finish().expect("finish");
        ppp_obs::install_global(ppp_obs::ObsCtx::noop());

        // Partition the shared stream into the two "processes".
        let recs = collect.records();
        let local: Vec<_> = recs
            .iter()
            .filter(|r| r.name == "client.send")
            .cloned()
            .collect();
        let remote: Vec<_> = recs
            .iter()
            .filter(|r| r.name == "shard.apply")
            .cloned()
            .collect();
        assert!(!local.is_empty() && !remote.is_empty());

        let tree = ppp_obs::SpanTree::stitch(&local, &remote);
        assert_eq!(tree.roots.len(), 1, "one flush, one trace");
        let send = &tree.roots[0];
        assert_eq!(send.name, "client.send");
        // One flush ships an edge + a path frame: two apply spans.
        assert_eq!(send.children.len(), 2);
        for apply in &send.children {
            assert_eq!(apply.name, "shard.apply");
            assert_eq!(
                apply.fields.iter().find(|(k, _)| k == "trace_id"),
                Some(&("trace_id".to_owned(), ppp_obs::Value::U64(0xABCD)))
            );
        }
    }
}
