//! Bounded MPSC queues with blocking backpressure.
//!
//! The aggregator's shards each drain one of these. Producers
//! (ingesting connections) block when a shard falls behind — that *is*
//! the backpressure model: a slow shard throttles exactly the workers
//! feeding it, instead of growing an unbounded buffer until the process
//! dies. Built on `Mutex` + two `Condvar`s; no channel crates, no spin.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    /// Producer blocks caused by a full queue (backpressure events).
    stalls: u64,
    /// High-water mark of the queue depth.
    peak_depth: usize,
}

/// A bounded blocking FIFO queue.
pub struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    /// Signalled when an item arrives or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item leaves or the queue closes.
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                stalls: 0,
                peak_depth: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues `item`, blocking while the queue is full. Returns
    /// `false` (dropping the item) if the queue is closed.
    pub fn push(&self, item: T) -> bool {
        let mut g = self.inner.lock().expect("queue lock");
        if g.items.len() >= self.capacity && !g.closed {
            g.stalls += 1;
            while g.items.len() >= self.capacity && !g.closed {
                g = self.not_full.wait(g).expect("queue lock");
            }
        }
        if g.closed {
            return false;
        }
        g.items.push_back(item);
        g.peak_depth = g.peak_depth.max(g.items.len());
        drop(g);
        self.not_empty.notify_one();
        true
    }

    /// Dequeues the next item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue lock");
        }
    }

    /// Closes the queue: pending items remain poppable, new pushes are
    /// refused, and blocked producers/consumers wake.
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("queue lock");
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Producer blocks caused by a full queue so far.
    pub fn stalls(&self) -> u64 {
        self.inner.lock().expect("queue lock").stalls
    }

    /// Highest queue depth observed so far.
    pub fn peak_depth(&self) -> usize {
        self.inner.lock().expect("queue lock").peak_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_order_and_depth() {
        let q = BoundedQueue::new(8);
        assert!(q.push(1));
        assert!(q.push(2));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.peak_depth(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.push(1);
        q.close();
        assert!(!q.push(2), "push after close is refused");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn full_queue_blocks_producer_until_drained() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(0u64);
        let qp = Arc::clone(&q);
        let producer = thread::spawn(move || {
            for i in 1..=100u64 {
                assert!(qp.push(i));
            }
        });
        let mut got = Vec::new();
        for _ in 0..=100 {
            got.push(q.pop().expect("open"));
        }
        producer.join().expect("producer");
        assert_eq!(got, (0..=100).collect::<Vec<_>>());
        assert!(q.stalls() > 0, "capacity-1 queue must have stalled");
    }

    #[test]
    fn consumer_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(4));
        let qc = Arc::clone(&q);
        let consumer = thread::spawn(move || qc.pop());
        thread::sleep(std::time::Duration::from_millis(10));
        q.push(7);
        assert_eq!(consumer.join().expect("consumer"), Some(7));
    }
}
