//! Localhost TCP transport for the aggregation service.
//!
//! One thread per connection, std networking only. The protocol is the
//! frame stream of [`ppp_ir::wire`]: the first frame must be a `Hello`
//! naming a benchmark the server's resolver can produce a module for;
//! the server replies with an `Ack` frame carrying the client's acked
//! sequence watermark (the reconnect-and-resume point). Sequenced
//! delta frames are merged idempotently (duplicates below the
//! watermark are dropped); on `Done` the server acks the final
//! watermark so the client knows everything it sent was merged before
//! it reads a snapshot.
//!
//! Nothing here hangs and nothing fails silently:
//!
//! - every socket carries read/write deadlines
//!   ([`ServeOptions::read_timeout`]) — a stalled peer (slowloris)
//!   surfaces as a typed [`WireError::TimedOut`], is told so via a
//!   `Reject` frame, and loses the connection;
//! - a server over [`ServeOptions::max_conns`] or past
//!   [`ServeOptions::shed_depth`] *sheds*: it sends a `Reject` with
//!   class `overloaded` and closes, so a retrying client backs off and
//!   resends (the watermark makes that lossless);
//! - damaged frames earn a `Reject` and close the connection (the
//!   wire format has no resync point) — counters already merged
//!   remain valid and the rejection is visible in
//!   `ppp_agg_frames_rejected_total`;
//! - [`Server::shutdown`] drains: connection handlers finish reading
//!   what is in flight, ack it, and (on a durable service) a final
//!   checkpoint is written. [`Server::kill`] is the opposite on
//!   purpose — an abrupt crash for recovery testing.
//!
//! [`ResilientSink`] is the client half of the story: bounded
//! jitter-free exponential backoff ([`RetryPolicy`]), reconnects
//! against a shared (swappable) address, and resumes from the
//! server's acked watermark by resending its retained unacked window.

use crate::service::{AggService, FrameSink, Hello, RetryPolicy};
use crate::shard::{Aggregator, IngestOutcome};
use ppp_ir::wire::{
    decode_frame, encode_frame, encode_reject_payload, encode_seq_payload, split_reject_payload,
    split_seq_payload, Frame, FrameKind, WireError, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD,
};
use ppp_ir::Module;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema tag of the live-introspection document served for a
/// `StatsRequest` frame.
pub const STATS_SCHEMA: &str = "ppp-stats/v1";

/// Resolves the benchmark named by a `Hello` to its module. Returning
/// `None` refuses the connection.
pub type ModuleResolver = dyn Fn(&Hello) -> Option<Arc<Module>> + Send + Sync;

/// Server limits and deadlines.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Connections beyond this are shed with a `Reject` (`overloaded`).
    pub max_conns: usize,
    /// Per-read deadline. Doubles as the slowloris budget: a peer that
    /// stalls longer mid-frame is rejected with `timed-out`.
    pub read_timeout: Duration,
    /// Per-write deadline (a peer that stops draining our acks).
    pub write_timeout: Duration,
    /// Shed incoming deltas when the deepest shard queue exceeds this
    /// (`None` = rely on backpressure alone).
    pub shed_depth: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            max_conns: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            shed_depth: None,
        }
    }
}

/// A frame-read failure: wire damage (including a typed timeout) or a
/// transport error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ReadError {
    /// Damage in the frame bytes, or a read deadline firing
    /// ([`WireError::TimedOut`]).
    Wire(WireError),
    /// A transport failure outside the frame grammar.
    Io(String),
}

impl ReadError {
    /// Stable machine-readable class (metric labels, reject frames).
    pub fn class(&self) -> &'static str {
        match self {
            ReadError::Wire(e) => e.class(),
            ReadError::Io(_) => "io",
        }
    }
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Wire(e) => e.fmt(f),
            ReadError::Io(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for ReadError {}

fn io_read_error(e: &std::io::Error) -> ReadError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ReadError::Wire(WireError::TimedOut)
        }
        _ => ReadError::Io(e.to_string()),
    }
}

/// A running TCP front-end over an [`AggService`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    crash: Arc<AtomicBool>,
    frames: Arc<AtomicU64>,
    conns: Arc<Mutex<Vec<Option<TcpStream>>>>,
    service: Arc<AggService>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts accepting on `listener` (bind it first — `127.0.0.1:0`
    /// picks a free port). Returns immediately; connections are served
    /// on background threads until [`Server::shutdown`].
    pub fn spawn(
        listener: TcpListener,
        service: Arc<AggService>,
        resolver: Arc<ModuleResolver>,
        options: ServeOptions,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let crash = Arc::new(AtomicBool::new(false));
        let frames = Arc::new(AtomicU64::new(0));
        let conns: Arc<Mutex<Vec<Option<TcpStream>>>> = Arc::new(Mutex::new(Vec::new()));
        let started = Instant::now();
        let accept_thread = {
            let stop = Arc::clone(&stop);
            let crash = Arc::clone(&crash);
            let frames = Arc::clone(&frames);
            let conns = Arc::clone(&conns);
            let service = Arc::clone(&service);
            std::thread::Builder::new()
                .name("agg-accept".to_owned())
                .spawn(move || {
                    accept_loop(
                        &listener, &service, &resolver, options, &stop, &crash, &frames, &conns,
                        started,
                    );
                })?
        };
        Ok(Server {
            addr,
            stop,
            crash,
            frames,
            conns,
            service,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Delta frames accepted (merged) so far, across all connections.
    pub fn frames_accepted(&self) -> u64 {
        self.frames.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stops accepting, lets every connection
    /// handler drain and ack what is already in flight, then writes a
    /// final checkpoint on a durable service. A delta the server read
    /// is never dropped by a graceful restart.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        if self.service.is_durable() {
            if let Err(e) = self.service.checkpoint_all() {
                ppp_obs::global().warn(
                    "agg.shutdown_checkpoint_failed",
                    &[("error", ppp_obs::Value::from(e))],
                );
            }
        }
    }

    /// Abrupt crash: kills every connection mid-frame and joins the
    /// threads **without** draining, acking, or checkpointing. This is
    /// deliberately the worst case a client and the recovery path can
    /// face; `repro drive --kill-after` uses it.
    pub fn kill(mut self) {
        // The kill event lands in the flight-recorder ring *before* the
        // dump, so the post-mortem artifact records what died and how
        // much it had accepted.
        ppp_obs::global().warn(
            "server.kill",
            &[
                ("addr", ppp_obs::Value::from(self.addr.to_string())),
                (
                    "frames_accepted",
                    ppp_obs::Value::U64(self.frames_accepted()),
                ),
            ],
        );
        self.crash.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        for s in self.conns.lock().expect("conns lock").iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        let _ = ppp_obs::flight_dump("server-kill");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: &TcpListener,
    service: &Arc<AggService>,
    resolver: &Arc<ModuleResolver>,
    options: ServeOptions,
    stop: &Arc<AtomicBool>,
    crash: &Arc<AtomicBool>,
    frames: &Arc<AtomicU64>,
    conns: &Arc<Mutex<Vec<Option<TcpStream>>>>,
    started: Instant,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let handles: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let _ = stream.set_read_timeout(Some(options.read_timeout));
        let _ = stream.set_write_timeout(Some(options.write_timeout));
        let _ = stream.set_nodelay(true);
        if active.load(Ordering::SeqCst) >= options.max_conns.max(1) {
            ppp_obs::global()
                .metrics()
                .inc(ppp_obs::names::SHED_TOTAL, &[("reason", "admission")]);
            let _ = send_reject(&mut stream, "overloaded", "connection limit reached; retry");
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let slot = {
            let mut g = conns.lock().expect("conns lock");
            match stream.try_clone() {
                Ok(clone) => {
                    if let Some(i) = g.iter().position(Option::is_none) {
                        g[i] = Some(clone);
                        Some(i)
                    } else {
                        g.push(Some(clone));
                        Some(g.len() - 1)
                    }
                }
                Err(_) => None,
            }
        };
        let service = Arc::clone(service);
        let resolver = Arc::clone(resolver);
        let active = Arc::clone(&active);
        let stop = Arc::clone(stop);
        let crash = Arc::clone(crash);
        let frames = Arc::clone(frames);
        let conns = Arc::clone(conns);
        let handle = std::thread::Builder::new()
            .name("agg-conn".to_owned())
            .spawn(move || {
                // A failed connection must not take the server down;
                // outcomes are reported over the socket and in metrics.
                let _ = serve_connection(
                    &mut stream,
                    &service,
                    &resolver,
                    &options,
                    &stop,
                    &crash,
                    &frames,
                    started,
                );
                if let Some(i) = slot {
                    conns.lock().expect("conns lock")[i] = None;
                }
                active.fetch_sub(1, Ordering::SeqCst);
            });
        if let Ok(h) = handle {
            handles.lock().expect("handles lock").push(h);
        }
        // Reap finished connection threads opportunistically.
        let mut g = handles.lock().expect("handles lock");
        g.retain(|h| !h.is_finished());
    }
    for h in handles.into_inner().expect("handles lock") {
        let _ = h.join();
    }
}

/// Reads exactly one frame from `r`. `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Wire damage (bad magic/kind/CRC, truncation mid-frame) comes back
/// as [`ReadError::Wire`]; a read deadline firing is the typed
/// [`WireError::TimedOut`]; other transport failures are
/// [`ReadError::Io`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, ReadError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(ReadError::Wire(WireError::Truncated {
                    expected: FRAME_HEADER_LEN,
                    available: got,
                }))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_read_error(&e)),
        }
    }
    let (_, len, _) = ppp_ir::wire::decode_header(&header).map_err(ReadError::Wire)?;
    if len > MAX_FRAME_PAYLOAD {
        return Err(ReadError::Wire(WireError::Oversize { declared: len }));
    }
    let mut bytes = Vec::with_capacity(FRAME_HEADER_LEN + len);
    bytes.extend_from_slice(&header);
    bytes.resize(FRAME_HEADER_LEN + len, 0);
    let mut at = FRAME_HEADER_LEN;
    while at < bytes.len() {
        match r.read(&mut bytes[at..]) {
            Ok(0) => {
                return Err(ReadError::Wire(WireError::Truncated {
                    expected: FRAME_HEADER_LEN + len,
                    available: at,
                }))
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(io_read_error(&e)),
        }
    }
    let (frame, _) = decode_frame(&bytes).map_err(ReadError::Wire)?;
    Ok(Some(frame))
}

fn send_ack(stream: &mut TcpStream, client: u64, watermark: u64) -> std::io::Result<()> {
    stream.write_all(&encode_frame(
        FrameKind::Ack,
        &encode_seq_payload(client, watermark, b""),
    ))
}

fn send_reject(stream: &mut TcpStream, class: &str, detail: &str) -> std::io::Result<()> {
    // A reject is an anomaly worth a post-mortem: dump the flight
    // recorder (no-op when none is installed). The reason is
    // class-deterministic so repeated rejects overwrite one artifact.
    let _ = ppp_obs::flight_dump(&format!("reject-{class}"));
    stream.write_all(&encode_frame(
        FrameKind::Reject,
        &encode_reject_payload(class, detail),
    ))
}

/// Renders the `ppp-stats/v1` live-introspection document: uptime,
/// frames accepted, per-bench shard queue depths and watermarks, and a
/// full metrics-registry snapshot. Served without requiring a `Hello`,
/// and without touching any shard queue — reading stats never disturbs
/// ingestion.
fn stats_json(service: &AggService, started: Instant, frames: u64) -> String {
    let mut benches = Vec::new();
    for key in service.keys() {
        let Some(agg) = service.get(&key) else {
            continue;
        };
        let depths = agg
            .queue_depths()
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let watermarks = agg
            .watermarks()
            .iter()
            .map(|(c, s)| format!("{{\"client\":{c},\"seq\":{s}}}"))
            .collect::<Vec<_>>()
            .join(",");
        benches.push(format!(
            "{{\"bench\":\"{}\",\"shards\":{},\"queue_depths\":[{depths}],\
             \"watermarks\":[{watermarks}],\"frames_since_checkpoint\":{},\
             \"backpressure_stalls\":{}}}",
            ppp_obs::json::escape(&key),
            agg.shards(),
            agg.frames_since_checkpoint(),
            agg.backpressure_stalls(),
        ));
    }
    format!(
        "{{\"schema\":\"{STATS_SCHEMA}\",\"uptime_ms\":{},\"frames_accepted\":{frames},\
         \"durable\":{},\"benches\":[{}],\"registry\":{}}}",
        started.elapsed().as_millis(),
        service.is_durable(),
        benches.join(","),
        ppp_obs::global().metrics().to_json(),
    )
}

/// Requests one live-introspection document from the server at `addr`:
/// a single empty `StatsRequest` frame, answered with a
/// [`STATS_SCHEMA`] JSON text payload.
///
/// # Errors
///
/// Fails on connect/transport errors, a `Reject`, or a non-stats
/// reply.
pub fn fetch_stats(addr: SocketAddr, timeout: Duration) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(&encode_frame(FrameKind::StatsRequest, b""))
        .map_err(|e| e.to_string())?;
    match read_frame(&mut stream) {
        Ok(Some(f)) if f.kind == FrameKind::StatsResponse => {
            String::from_utf8(f.payload).map_err(|_| "stats payload is not utf-8".to_owned())
        }
        Ok(Some(f)) if f.kind == FrameKind::Reject => {
            let (class, detail) = split_reject_payload(&f.payload);
            Err(format!("server rejected: {class}: {detail}"))
        }
        Ok(Some(f)) => Err(format!("expected stats-response, got {} frame", f.kind)),
        Ok(None) => Err("connection closed before stats response".to_owned()),
        Err(e) => Err(format!("reading stats: {e}")),
    }
}

/// Serves one connection to completion: hello (acked with the resume
/// watermark), sequenced deltas, done (acked with the final
/// watermark). Every refusal is a `Reject` frame before the close —
/// never a silent drop.
///
/// # Errors
///
/// Returns a description of the first protocol violation or transport
/// failure; the caller just drops the connection.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    stream: &mut TcpStream,
    service: &Arc<AggService>,
    resolver: &Arc<ModuleResolver>,
    options: &ServeOptions,
    stop: &AtomicBool,
    crash: &AtomicBool,
    frames: &AtomicU64,
    started: Instant,
) -> Result<(), String> {
    let mut agg: Option<Arc<Aggregator>> = None;
    let mut client_id = 0u64;
    let mut draining = false;
    loop {
        if crash.load(Ordering::SeqCst) {
            return Err("server crashed".to_owned());
        }
        if stop.load(Ordering::SeqCst) && !draining {
            // Graceful stop: keep reading what is already in flight,
            // but shrink the deadline so an idle client releases us.
            draining = true;
            let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
        }
        let frame = match read_frame(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // clean EOF
            Err(ReadError::Wire(WireError::TimedOut)) => {
                if crash.load(Ordering::SeqCst) {
                    return Err("server crashed".to_owned());
                }
                if draining || stop.load(Ordering::SeqCst) {
                    // Drained: everything read was merged; final ack.
                    if let Some(a) = &agg {
                        let _ = send_ack(stream, client_id, a.watermark(client_id));
                    }
                    return Ok(());
                }
                // Slowloris: the peer stalled mid-stream. Say so, then
                // close — never pin the thread.
                ppp_obs::global()
                    .metrics()
                    .inc(ppp_obs::names::SHED_TOTAL, &[("reason", "timed-out")]);
                let _ = send_reject(stream, "timed-out", "read deadline fired mid-stream");
                return Err(WireError::TimedOut.to_string());
            }
            Err(e) => {
                let _ = send_reject(stream, e.class(), &e.to_string());
                return Err(e.to_string());
            }
        };
        match frame.kind {
            FrameKind::Hello => {
                let hello = Hello::parse(&frame.payload).inspect_err(|e| {
                    let _ = send_reject(stream, "hello", e);
                })?;
                let module = resolver(&hello).ok_or_else(|| {
                    let msg = format!("unknown benchmark {:?}", hello.bench);
                    let _ = send_reject(stream, "unknown-bench", &msg);
                    msg
                })?;
                if module.functions.len() != hello.funcs {
                    let msg = format!(
                        "hello declares {} functions, server module has {}",
                        hello.funcs,
                        module.functions.len()
                    );
                    let _ = send_reject(stream, "shape", &msg);
                    return Err(msg);
                }
                let a = service.register(&hello.bench, &module).inspect_err(|e| {
                    let _ = send_reject(stream, "register", e);
                })?;
                record_tcp_frame(&a, &frame);
                client_id = hello.worker;
                send_ack(stream, client_id, a.watermark(client_id)).map_err(|e| e.to_string())?;
                agg = Some(a);
            }
            FrameKind::EdgeDelta
            | FrameKind::PathDelta
            | FrameKind::SeqEdgeDelta
            | FrameKind::SeqPathDelta => {
                let Some(a) = &agg else {
                    let _ = send_reject(stream, "no-hello", "delta before hello");
                    return Err("delta before hello".to_owned());
                };
                if let Some(depth) = options.shed_depth {
                    let now = a.max_queue_depth();
                    if now > depth {
                        // Load shedding: refuse *without* applying, so
                        // the watermark stays put and the client's
                        // retry (after backoff) is lossless.
                        ppp_obs::global()
                            .metrics()
                            .inc(ppp_obs::names::SHED_TOTAL, &[("reason", "overloaded")]);
                        let _ = send_reject(
                            stream,
                            "overloaded",
                            &format!("shard queue depth {now} over shed limit {depth}; retry"),
                        );
                        return Err("shed: overloaded".to_owned());
                    }
                }
                match a.ingest_frame(&frame) {
                    Ok(IngestOutcome::Applied) => {
                        frames.fetch_add(1, Ordering::SeqCst);
                        record_tcp_frame(a, &frame);
                    }
                    Ok(IngestOutcome::Duplicate) => {} // counted by the aggregator
                    Err(e) => {
                        let _ = send_reject(stream, e.class, &e.detail);
                        return Err(e.to_string());
                    }
                }
            }
            FrameKind::Done => {
                let Some(a) = &agg else {
                    let _ = send_reject(stream, "no-hello", "done before hello");
                    return Err("done before hello".to_owned());
                };
                record_tcp_frame(a, &frame);
                send_ack(stream, client_id, a.watermark(client_id)).map_err(|e| e.to_string())?;
            }
            FrameKind::StatsRequest => {
                // Live introspection: served without a hello and
                // without touching any shard queue.
                let doc = stats_json(service, started, frames.load(Ordering::SeqCst));
                ppp_obs::global()
                    .metrics()
                    .inc(ppp_obs::names::STATS_SERVED, &[]);
                stream
                    .write_all(&encode_frame(FrameKind::StatsResponse, doc.as_bytes()))
                    .map_err(|e| e.to_string())?;
            }
            FrameKind::Ack | FrameKind::Reject | FrameKind::StatsResponse => {
                let msg = format!("client sent a server-only {} frame", frame.kind);
                let _ = send_reject(stream, "protocol", &msg);
                return Err(msg);
            }
        }
    }
}

fn record_tcp_frame(agg: &Aggregator, frame: &Frame) {
    let obs = ppp_obs::global();
    let bench = agg.bench();
    obs.metrics().inc(
        "ppp_agg_frames_ingested_total",
        &[("bench", bench), ("kind", frame.kind.name())],
    );
    obs.metrics().inc_by(
        "ppp_agg_bytes_ingested_total",
        &[("bench", bench)],
        frame.payload.len() as u64,
    );
}

/// A [`FrameSink`] writing frames to one TCP connection (no retry —
/// see [`ResilientSink`] for the self-healing variant).
pub struct TcpSink {
    stream: TcpStream,
    hello_watermark: Option<u64>,
}

impl TcpSink {
    /// Connects with 5-second read/write deadlines.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with(addr, Duration::from_secs(5))
    }

    /// Connects with explicit read/write deadlines.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self {
            stream,
            hello_watermark: None,
        })
    }

    /// The watermark the server acked for our hello (the resume
    /// point), once the hello has been sent.
    pub fn hello_watermark(&self) -> Option<u64> {
        self.hello_watermark
    }

    /// Reads one `Ack` frame and returns its watermark.
    ///
    /// # Errors
    ///
    /// A `Reject` frame, wire damage, a timeout, or EOF all fail with
    /// a description (rejects include the server's class + detail).
    pub fn read_ack(&mut self) -> Result<u64, String> {
        read_ack_on(&mut self.stream)
    }

    /// Waits for the server's `Done` ack. Call after
    /// [`crate::AggClient::finish`].
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a non-ack reply.
    pub fn wait_ack(&mut self) -> Result<(), String> {
        self.read_ack().map(|_| ())
    }
}

fn read_ack_on(stream: &mut TcpStream) -> Result<u64, String> {
    match read_frame(stream) {
        Ok(Some(f)) if f.kind == FrameKind::Ack => split_seq_payload(&f.payload)
            .map(|(_, watermark, _)| watermark)
            .map_err(|e| format!("malformed ack: {e}")),
        Ok(Some(f)) if f.kind == FrameKind::Reject => {
            let (class, detail) = split_reject_payload(&f.payload);
            ppp_obs::global()
                .metrics()
                .inc(ppp_obs::names::RETRY_REJECTS, &[("class", &class)]);
            Err(format!("server rejected: {class}: {detail}"))
        }
        Ok(Some(f)) => Err(format!("expected ack, got {} frame", f.kind)),
        Ok(None) => Err("connection closed before ack".to_owned()),
        Err(e) => Err(format!("reading ack: {e}")),
    }
}

fn frame_kind_of(bytes: &[u8]) -> Option<FrameKind> {
    bytes.get(4).copied().and_then(FrameKind::from_byte)
}

impl FrameSink for TcpSink {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.stream.write_all(bytes).map_err(|e| e.to_string())?;
        if frame_kind_of(bytes) == Some(FrameKind::Hello) {
            self.hello_watermark = Some(self.read_ack()?);
        }
        Ok(())
    }
}

/// Cumulative resilience counters for one [`ResilientSink`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResilientStats {
    /// Sessions established (first connect + every reconnect).
    pub connects: u64,
    /// Backoff sleeps taken.
    pub backoffs: u64,
    /// Frames resent from the retained window after a reconnect.
    pub resent: u64,
    /// Server rejects observed.
    pub rejects: u64,
}

/// A self-healing [`FrameSink`]: deadlines on every socket, bounded
/// jitter-free exponential backoff, reconnect against a shared
/// (swappable) address, and resume from the server's acked watermark.
///
/// Sequenced frames are retained until acked; after a reconnect the
/// sink replays everything above the server's watermark — and because
/// the server dedups below it, an ambiguous failure (did the crashed
/// server merge my last frame?) is safe to answer with "resend".
pub struct ResilientSink {
    addr: Arc<Mutex<SocketAddr>>,
    policy: RetryPolicy,
    timeout: Duration,
    stream: Option<TcpStream>,
    hello: Option<Vec<u8>>,
    /// Unacked sequenced frames, in seq order.
    retained: Vec<(u64, Vec<u8>)>,
    /// Server-acked watermark (frames at or below are pruned).
    acked: u64,
    /// Highest seq written on the *current* session.
    sent_in_session: u64,
    /// Highest seq ever handed to this sink.
    last_seq: u64,
    stats: ResilientStats,
}

impl ResilientSink {
    /// A sink targeting the address in `addr` — shared so an
    /// orchestrator can repoint every client after restarting the
    /// server elsewhere.
    pub fn new(addr: Arc<Mutex<SocketAddr>>, policy: RetryPolicy, timeout: Duration) -> Self {
        Self {
            addr,
            policy,
            timeout,
            stream: None,
            hello: None,
            retained: Vec::new(),
            acked: 0,
            sent_in_session: 0,
            last_seq: 0,
            stats: ResilientStats::default(),
        }
    }

    /// A sink pinned to one address with default policy and a
    /// 5-second deadline.
    pub fn connect(addr: SocketAddr) -> Self {
        Self::new(
            Arc::new(Mutex::new(addr)),
            RetryPolicy::default(),
            Duration::from_secs(5),
        )
    }

    /// Resilience counters so far.
    pub fn stats(&self) -> ResilientStats {
        self.stats
    }

    /// The server-acked sequence watermark.
    pub fn acked(&self) -> u64 {
        self.acked
    }

    fn backoff(&mut self, attempt: u32) {
        self.stats.backoffs += 1;
        ppp_obs::global()
            .metrics()
            .inc(ppp_obs::names::RETRY_BACKOFFS, &[]);
        std::thread::sleep(self.policy.backoff(attempt));
    }

    fn teardown(&mut self) {
        self.stream = None;
        self.sent_in_session = self.acked;
    }

    fn prune(&mut self) {
        let acked = self.acked;
        self.retained.retain(|(seq, _)| *seq > acked);
    }

    /// Establishes a session if none: connect, hello, read the resume
    /// watermark, replay the retained window above it.
    fn ensure_session(&mut self) -> Result<(), String> {
        if self.stream.is_some() {
            return Ok(());
        }
        let hello = self.hello.clone().ok_or("no hello sent yet")?;
        let addr = *self.addr.lock().expect("addr lock");
        let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        stream
            .set_read_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream
            .set_write_timeout(Some(self.timeout))
            .map_err(|e| e.to_string())?;
        stream.write_all(&hello).map_err(|e| e.to_string())?;
        let watermark = match read_ack_on(&mut stream) {
            Ok(w) => w,
            Err(e) => {
                self.stats.rejects += 1;
                return Err(e);
            }
        };
        self.stats.connects += 1;
        ppp_obs::global()
            .metrics()
            .inc(ppp_obs::names::RETRY_RECONNECTS, &[]);
        self.acked = self.acked.max(watermark);
        self.prune();
        self.sent_in_session = watermark;
        // Resume: replay everything the server has not acked.
        for (seq, bytes) in &self.retained {
            if *seq <= watermark {
                continue;
            }
            stream.write_all(bytes).map_err(|e| e.to_string())?;
            self.sent_in_session = *seq;
            self.stats.resent += 1;
            ppp_obs::global()
                .metrics()
                .inc(ppp_obs::names::RETRY_RESENT, &[]);
        }
        self.stream = Some(stream);
        Ok(())
    }

    /// One delivery pass: session up, retained window flushed through
    /// `last_seq`.
    fn deliver_window(&mut self) -> Result<(), String> {
        self.ensure_session()?;
        let pending: Vec<(u64, Vec<u8>)> = self
            .retained
            .iter()
            .filter(|(seq, _)| *seq > self.sent_in_session)
            .cloned()
            .collect();
        let Some(stream) = self.stream.as_mut() else {
            return Err("no session".to_owned());
        };
        for (seq, bytes) in pending {
            stream.write_all(&bytes).map_err(|e| e.to_string())?;
            self.sent_in_session = seq;
        }
        Ok(())
    }

    fn with_retry(
        &mut self,
        what: &str,
        mut step: impl FnMut(&mut Self) -> Result<(), String>,
    ) -> Result<(), String> {
        let mut last = String::new();
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                self.backoff(attempt - 1);
            }
            match step(self) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    self.teardown();
                    last = e;
                }
            }
        }
        Err(format!(
            "{what} failed after {} attempts: {last}",
            self.policy.attempts.max(1)
        ))
    }

    /// Sends `Done` and confirms the server's final watermark covers
    /// everything we ever sent, reconnecting and resending as needed.
    fn finish_done(&mut self, bytes: &[u8]) -> Result<(), String> {
        let done = bytes.to_vec();
        let target = self.last_seq;
        self.with_retry("done", move |sink| {
            sink.deliver_window()?;
            let stream = sink.stream.as_mut().ok_or("no session")?;
            stream.write_all(&done).map_err(|e| e.to_string())?;
            let watermark = read_ack_on(stream)?;
            sink.acked = sink.acked.max(watermark);
            sink.prune();
            if watermark < target {
                return Err(format!(
                    "server acked watermark {watermark}, expected {target}"
                ));
            }
            Ok(())
        })
    }
}

impl FrameSink for ResilientSink {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), String> {
        match frame_kind_of(bytes) {
            Some(FrameKind::Hello) => {
                self.hello = Some(bytes.to_vec());
                self.with_retry("hello", |sink| sink.ensure_session())
            }
            Some(FrameKind::SeqEdgeDelta) | Some(FrameKind::SeqPathDelta) => {
                let (_, seq, _) = split_seq_payload(&bytes[FRAME_HEADER_LEN..])
                    .map_err(|e| format!("malformed seq frame: {e}"))?;
                if self.retained.last().is_none_or(|(s, _)| *s < seq) {
                    self.retained.push((seq, bytes.to_vec()));
                }
                self.last_seq = self.last_seq.max(seq);
                self.with_retry("delta", |sink| sink.deliver_window())
            }
            Some(FrameKind::Done) => self.finish_done(bytes),
            _ => {
                // Legacy/unsequenced frames cannot be safely retried
                // (no dedup), so they get exactly one delivery attempt.
                self.with_retry("frame", |sink| {
                    sink.ensure_session()?;
                    let stream = sink.stream.as_mut().ok_or("no session")?;
                    stream.write_all(bytes).map_err(|e| e.to_string())
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::AggClient;
    use crate::shard::AggConfig;
    use crate::wal::DurOptions;
    use ppp_ir::{BlockId, EdgeRef, FunctionBuilder, ModuleEdgeProfile, ModulePathProfile, Reg};
    use std::path::PathBuf;

    fn test_module() -> Arc<Module> {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 1);
        let (t, e) = (b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        m.add_function(b.finish());
        Arc::new(m)
    }

    fn test_resolver(m: &Arc<Module>) -> Arc<ModuleResolver> {
        let module = Arc::clone(m);
        Arc::new(move |h: &Hello| (h.bench == "tcp-test").then(|| Arc::clone(&module)))
    }

    fn start_server(m: &Arc<Module>) -> (Server, Arc<AggService>) {
        start_server_with(m, ServeOptions::default())
    }

    fn start_server_with(m: &Arc<Module>, options: ServeOptions) -> (Server, Arc<AggService>) {
        let service = AggService::new(AggConfig {
            shards: 2,
            queue_cap: 8,
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = Server::spawn(listener, Arc::clone(&service), test_resolver(m), options)
            .expect("spawn");
        (server, service)
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/ppp-scratch/tcp-unit")
            .join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn one_delta(m: &Module) -> (ModuleEdgeProfile, ModulePathProfile) {
        let mut delta = ModuleEdgeProfile::zeroed(m);
        let p = &mut delta.funcs[0];
        p.set_entries(1);
        p.set_block(BlockId(0), 1);
        p.set_edge(EdgeRef::new(BlockId(0), 0), 1);
        p.set_block(BlockId(1), 1);
        (delta, ModulePathProfile::with_capacity(1))
    }

    #[test]
    fn full_roundtrip_over_tcp() {
        let m = test_module();
        let (server, service) = start_server(&m);
        let (delta, paths) = one_delta(&m);

        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 1,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let mut client = AggClient::open(Arc::clone(&m), sink, 2, &hello).expect("open");
        for _ in 0..5 {
            client.push_delta(&delta, &paths).expect("push");
        }
        client.finish().expect("finish");
        let last_seq = client.last_seq();
        let mut sink = client.into_sink();
        assert_eq!(
            sink.hello_watermark(),
            Some(0),
            "fresh session resumes at 0"
        );
        let watermark = sink.read_ack().expect("done ack");
        assert_eq!(watermark, last_seq, "server acked everything we sent");

        let agg = service.get("tcp-test").expect("registered");
        let (edges, _) = agg.snapshot();
        assert_eq!(edges.funcs[0].entries(), 5);
        server.shutdown();
    }

    #[test]
    fn corrupt_frame_is_rejected_but_keeps_prior_merges() {
        let m = test_module();
        let (server, service) = start_server(&m);
        let (delta, paths) = one_delta(&m);
        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 2,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let mut client = AggClient::open(Arc::clone(&m), sink, 1, &hello).expect("open");
        client.push_delta(&delta, &paths).expect("push");
        let mut sink = client.into_sink();
        // Garbage after valid frames: the server must reject and
        // close, not panic and not stay silent.
        sink.send_frame(b"garbage-not-a-frame-garbage")
            .expect("send raw");
        match sink.read_ack() {
            Err(e) => assert!(
                e.contains("rejected") || e.contains("closed"),
                "typed refusal, got {e}"
            ),
            Ok(w) => panic!("expected reject, got ack {w}"),
        }
        let agg = service.get("tcp-test").expect("still registered");
        let (edges, _) = agg.snapshot();
        assert_eq!(edges.funcs[0].entries(), 1, "prior merge survived");
        server.shutdown();
    }

    #[test]
    fn unknown_bench_is_rejected_in_the_open() {
        let m = test_module();
        let (server, _service) = start_server(&m);
        let hello = Hello {
            bench: "nope".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 0,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let err = match AggClient::open(Arc::clone(&m), sink, 1, &hello) {
            Err(e) => e,
            Ok(_) => panic!("unknown bench was accepted"),
        };
        assert!(err.contains("unknown-bench"), "{err}");
        server.shutdown();
    }

    #[test]
    fn stalled_peer_gets_typed_timeout_reject() {
        let m = test_module();
        let (server, service) = start_server_with(
            &m,
            ServeOptions {
                read_timeout: Duration::from_millis(100),
                ..ServeOptions::default()
            },
        );
        let (delta, paths) = one_delta(&m);
        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 3,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let mut client = AggClient::open(Arc::clone(&m), sink, 1, &hello).expect("open");
        client.push_delta(&delta, &paths).expect("push");
        let mut sink = client.into_sink();
        // Send half a frame header, then stall. The server's read
        // deadline must fire and reject with the typed class — the
        // thread is never pinned.
        sink.send_frame(&ppp_ir::wire::FRAME_MAGIC[..2])
            .expect("stall bytes");
        match sink.read_ack() {
            Err(e) => assert!(e.contains("timed-out"), "typed timeout, got {e}"),
            Ok(w) => panic!("expected timed-out reject, got ack {w}"),
        }
        let agg = service.get("tcp-test").expect("registered");
        let (edges, _) = agg.snapshot();
        assert_eq!(edges.funcs[0].entries(), 1, "pre-stall merge survived");
        server.shutdown();
    }

    #[test]
    fn resilient_sink_survives_kill_and_restart_without_double_counting() {
        let m = test_module();
        let dir = scratch("kill-restart");
        let make_service = || {
            AggService::new_durable(
                AggConfig {
                    shards: 2,
                    queue_cap: 8,
                },
                DurOptions::new(&dir, 4),
            )
        };
        let spawn = |service: &Arc<AggService>| {
            Server::spawn(
                TcpListener::bind("127.0.0.1:0").expect("bind"),
                Arc::clone(service),
                test_resolver(&m),
                ServeOptions {
                    read_timeout: Duration::from_millis(200),
                    ..ServeOptions::default()
                },
            )
            .expect("spawn")
        };
        let service_a = make_service();
        let server_a = spawn(&service_a);
        let addr = Arc::new(Mutex::new(server_a.addr()));

        let (delta, paths) = one_delta(&m);
        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 7,
        };
        let sink = ResilientSink::new(
            Arc::clone(&addr),
            RetryPolicy {
                attempts: 10,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(50),
            },
            Duration::from_millis(500),
        );
        let mut client = AggClient::open(Arc::clone(&m), sink, 1, &hello).expect("open");
        for _ in 0..3 {
            client.push_delta(&delta, &paths).expect("push");
        }

        // Abrupt kill: no drain, no ack, no final checkpoint. State
        // survives only via checkpoint + WAL.
        server_a.kill();
        drop(service_a);

        // Restart on a fresh port over the same durability dir and
        // repoint the shared address.
        let service_b = make_service();
        let server_b = spawn(&service_b);
        *addr.lock().expect("addr lock") = server_b.addr();

        for _ in 0..3 {
            client
                .push_delta(&delta, &paths)
                .expect("push after restart");
        }
        client.finish().expect("finish");
        let sink = client.into_sink();
        let stats = sink.stats();
        assert!(stats.connects >= 2, "reconnected at least once: {stats:?}");
        assert_eq!(sink.acked(), 12, "all 12 seq frames acked");

        let agg = service_b.register("tcp-test", &m).expect("recovered");
        let (edges, _) = agg.snapshot();
        assert_eq!(
            edges.funcs[0].entries(),
            6,
            "6 deltas exactly once across the kill: {stats:?}"
        );
        server_b.shutdown();
    }

    #[test]
    fn graceful_shutdown_acks_in_flight_and_checkpoints() {
        let m = test_module();
        let dir = scratch("graceful");
        let service = AggService::new_durable(
            AggConfig {
                shards: 2,
                queue_cap: 8,
            },
            // checkpoint_every = 0: only explicit checkpoints, so the
            // file below can only come from the shutdown path.
            DurOptions::new(&dir, 0),
        );
        let server = Server::spawn(
            TcpListener::bind("127.0.0.1:0").expect("bind"),
            Arc::clone(&service),
            test_resolver(&m),
            ServeOptions::default(),
        )
        .expect("spawn");
        let (delta, paths) = one_delta(&m);
        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 9,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let mut client = AggClient::open(Arc::clone(&m), sink, 1, &hello).expect("open");
        for _ in 0..4 {
            client.push_delta(&delta, &paths).expect("push");
        }
        client.finish().expect("finish");
        client.into_sink().wait_ack().expect("done ack");
        server.shutdown();
        assert!(
            crate::wal::checkpoint_path(&dir, "tcp-test").exists(),
            "graceful shutdown wrote a checkpoint"
        );

        // A fresh durable service recovers the acked state.
        let service2 = AggService::new_durable(
            AggConfig {
                shards: 2,
                queue_cap: 8,
            },
            DurOptions::new(&dir, 0),
        );
        let agg = service2.register("tcp-test", &m).expect("recover");
        let (edges, _) = agg.snapshot();
        assert_eq!(edges.funcs[0].entries(), 4, "nothing acked was dropped");
    }

    #[test]
    fn stats_frame_serves_live_introspection_without_disturbing_ingest() {
        let m = test_module();
        let (server, service) = start_server(&m);
        let (delta, paths) = one_delta(&m);
        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 4,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let mut client = AggClient::open(Arc::clone(&m), sink, 1, &hello).expect("open");
        for _ in 0..3 {
            client.push_delta(&delta, &paths).expect("push");
        }

        // Scrape stats over a separate connection, mid-session.
        let doc = fetch_stats(server.addr(), Duration::from_secs(2)).expect("stats");
        let v = ppp_obs::json::parse(&doc).expect("stats JSON parses");
        assert_eq!(
            v.get("schema").and_then(ppp_obs::json::Json::as_str),
            Some(STATS_SCHEMA)
        );
        assert!(v
            .get("uptime_ms")
            .and_then(ppp_obs::json::Json::as_u64)
            .is_some());
        assert!(
            v.get("frames_accepted")
                .and_then(ppp_obs::json::Json::as_u64)
                .expect("frames_accepted")
                >= 6,
            "3 flushed delta pairs visible"
        );
        let benches = v
            .get("benches")
            .and_then(ppp_obs::json::Json::as_arr)
            .expect("benches");
        let bench = benches
            .iter()
            .find(|b| b.get("bench").and_then(ppp_obs::json::Json::as_str) == Some("tcp-test"))
            .expect("tcp-test listed");
        assert_eq!(
            bench
                .get("queue_depths")
                .and_then(ppp_obs::json::Json::as_arr)
                .map(<[ppp_obs::json::Json]>::len),
            Some(2),
            "one depth per shard"
        );
        assert!(v.get("registry").is_some(), "metrics snapshot included");

        // Ingestion was not disturbed: the session finishes cleanly and
        // everything lands.
        client.finish().expect("finish");
        client.into_sink().wait_ack().expect("done ack");
        let agg = service.get("tcp-test").expect("registered");
        let (edges, _) = agg.snapshot();
        assert_eq!(edges.funcs[0].entries(), 3);
        server.shutdown();
    }

    #[test]
    fn admission_overload_is_a_typed_reject() {
        let m = test_module();
        let (server, _service) = start_server_with(
            &m,
            ServeOptions {
                max_conns: 1,
                ..ServeOptions::default()
            },
        );
        // Hold the only slot open with a live session.
        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 1,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let _held = AggClient::open(Arc::clone(&m), sink, 1, &hello).expect("open");

        let hello2 = Hello {
            worker: 2,
            ..hello.clone()
        };
        let sink2 = TcpSink::connect(server.addr()).expect("connect");
        let err = match AggClient::open(Arc::clone(&m), sink2, 1, &hello2) {
            Err(e) => e,
            Ok(_) => panic!("over-limit connection was accepted"),
        };
        assert!(err.contains("overloaded"), "{err}");
        server.shutdown();
    }
}
