//! Localhost TCP transport for the aggregation service.
//!
//! One thread per connection, std networking only. The protocol is the
//! frame stream of [`ppp_ir::wire`]: the first frame must be a `Hello`
//! naming a benchmark the server's resolver can produce a module for;
//! subsequent `EdgeDelta`/`PathDelta` frames are merged; on `Done` the
//! server replies `ok\n` so the client knows everything it sent was
//! merged before it reads a snapshot. Damaged frames close the
//! connection (the wire format has no resync point) — the counters the
//! shards already merged remain valid, the rest of that worker's stream
//! is lost, and the rejection is visible in
//! `ppp_agg_frames_rejected_total`.

use crate::service::{AggService, FrameSink, Hello};
use crate::shard::Aggregator;
use ppp_ir::wire::{
    decode_frame, Frame, FrameKind, WireError, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD,
};
use ppp_ir::Module;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Resolves the benchmark named by a `Hello` to its module. Returning
/// `None` refuses the connection.
pub type ModuleResolver = dyn Fn(&Hello) -> Option<Arc<Module>> + Send + Sync;

/// Server limits.
#[derive(Clone, Copy, Debug)]
pub struct ServeOptions {
    /// Connections beyond this are refused with `busy\n`.
    pub max_conns: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self { max_conns: 64 }
    }
}

/// A running TCP front-end over an [`AggService`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Starts accepting on `listener` (bind it first — `127.0.0.1:0`
    /// picks a free port). Returns immediately; connections are served
    /// on background threads until [`Server::shutdown`].
    pub fn spawn(
        listener: TcpListener,
        service: Arc<AggService>,
        resolver: Arc<ModuleResolver>,
        options: ServeOptions,
    ) -> std::io::Result<Server> {
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("agg-accept".to_owned())
                .spawn(move || accept_loop(&listener, &service, &resolver, options, &stop))?
        };
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, waits for in-flight connections to finish.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<AggService>,
    resolver: &Arc<ModuleResolver>,
    options: ServeOptions,
    stop: &Arc<AtomicBool>,
) {
    let active = Arc::new(AtomicUsize::new(0));
    let conns: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if active.load(Ordering::SeqCst) >= options.max_conns.max(1) {
            let _ = stream.write_all(b"busy\n");
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(service);
        let resolver = Arc::clone(resolver);
        let active = Arc::clone(&active);
        let handle = std::thread::Builder::new()
            .name("agg-conn".to_owned())
            .spawn(move || {
                // A failed connection must not take the server down;
                // outcomes are reported over the socket and in metrics.
                let _ = serve_connection(&mut stream, &service, &resolver);
                active.fetch_sub(1, Ordering::SeqCst);
            });
        if let Ok(h) = handle {
            conns.lock().expect("conns lock").push(h);
        }
        // Reap finished connection threads opportunistically.
        let mut g = conns.lock().expect("conns lock");
        g.retain(|h| !h.is_finished());
    }
    for h in conns.into_inner().expect("conns lock") {
        let _ = h.join();
    }
}

/// Reads exactly one frame from `r`. `Ok(None)` on clean EOF at a frame
/// boundary.
///
/// # Errors
///
/// Wire damage (bad magic/kind/CRC, truncation mid-frame) comes back as
/// [`WireError`] inside `Err(String)`; transport errors as their io
/// message.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Frame>, String> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut got = 0;
    while got < header.len() {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected: FRAME_HEADER_LEN,
                    available: got,
                }
                .to_string())
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    let (_, len, _) = ppp_ir::wire::decode_header(&header).map_err(|e| e.to_string())?;
    if len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Oversize { declared: len }.to_string());
    }
    let mut bytes = Vec::with_capacity(FRAME_HEADER_LEN + len);
    bytes.extend_from_slice(&header);
    bytes.resize(FRAME_HEADER_LEN + len, 0);
    let mut at = FRAME_HEADER_LEN;
    while at < bytes.len() {
        match r.read(&mut bytes[at..]) {
            Ok(0) => {
                return Err(WireError::Truncated {
                    expected: FRAME_HEADER_LEN + len,
                    available: at,
                }
                .to_string())
            }
            Ok(n) => at += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    let (frame, _) = decode_frame(&bytes).map_err(|e| e.to_string())?;
    Ok(Some(frame))
}

/// Serves one connection to completion: hello, deltas, done, ack.
///
/// # Errors
///
/// Returns a description of the first protocol violation or transport
/// failure; the caller just drops the connection.
fn serve_connection(
    stream: &mut TcpStream,
    service: &Arc<AggService>,
    resolver: &Arc<ModuleResolver>,
) -> Result<(), String> {
    let mut agg: Option<Arc<Aggregator>> = None;
    loop {
        let frame = match read_frame(stream) {
            Ok(Some(f)) => f,
            Ok(None) => return Ok(()), // clean EOF
            Err(e) => {
                let _ = stream.write_all(b"err frame\n");
                return Err(e);
            }
        };
        match frame.kind {
            FrameKind::Hello => {
                let hello = Hello::parse(&frame.payload)?;
                let module = resolver(&hello).ok_or_else(|| {
                    let _ = stream.write_all(b"err unknown-bench\n");
                    format!("unknown benchmark {:?}", hello.bench)
                })?;
                if module.functions.len() != hello.funcs {
                    let _ = stream.write_all(b"err shape\n");
                    return Err(format!(
                        "hello declares {} functions, server module has {}",
                        hello.funcs,
                        module.functions.len()
                    ));
                }
                let a = service.register(&hello.bench, &module)?;
                record_tcp_frame(&a, &frame);
                agg = Some(a);
            }
            FrameKind::EdgeDelta | FrameKind::PathDelta => {
                let Some(a) = &agg else {
                    let _ = stream.write_all(b"err no-hello\n");
                    return Err("delta before hello".to_owned());
                };
                // Re-encode? No: ingest via the already-decoded frame.
                a.ingest_frame(&frame).map_err(|e| {
                    let _ = stream.write_all(b"err payload\n");
                    e.to_string()
                })?;
                record_tcp_frame(a, &frame);
            }
            FrameKind::Done => {
                if let Some(a) = &agg {
                    record_tcp_frame(a, &frame);
                }
                stream.write_all(b"ok\n").map_err(|e| e.to_string())?;
            }
        }
    }
}

fn record_tcp_frame(agg: &Aggregator, frame: &Frame) {
    let obs = ppp_obs::global();
    let bench = agg.bench();
    obs.metrics().inc(
        "ppp_agg_frames_ingested_total",
        &[("bench", bench), ("kind", frame.kind.name())],
    );
    obs.metrics().inc_by(
        "ppp_agg_bytes_ingested_total",
        &[("bench", bench)],
        frame.payload.len() as u64,
    );
}

/// A [`FrameSink`] writing frames to a TCP connection.
pub struct TcpSink {
    stream: TcpStream,
}

impl TcpSink {
    /// Connects to an aggregation server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Self { stream })
    }

    /// Waits for the server's `ok\n` ack (sent after it merges a `Done`
    /// frame). Call after [`crate::AggClient::finish`].
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a non-ack reply.
    pub fn wait_ack(&mut self) -> Result<(), String> {
        let mut buf = [0u8; 16];
        let n = self.stream.read(&mut buf).map_err(|e| e.to_string())?;
        let reply = &buf[..n];
        if reply == b"ok\n" {
            Ok(())
        } else {
            Err(format!(
                "server replied {:?}",
                String::from_utf8_lossy(reply)
            ))
        }
    }
}

impl FrameSink for TcpSink {
    fn send_frame(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.stream.write_all(bytes).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::AggClient;
    use crate::shard::AggConfig;
    use ppp_ir::{BlockId, EdgeRef, FunctionBuilder, ModuleEdgeProfile, ModulePathProfile, Reg};

    fn test_module() -> Arc<Module> {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 1);
        let (t, e) = (b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        b.ret(None);
        b.switch_to(e);
        b.ret(None);
        m.add_function(b.finish());
        Arc::new(m)
    }

    fn start_server(m: &Arc<Module>) -> (Server, Arc<AggService>) {
        let service = AggService::new(AggConfig {
            shards: 2,
            queue_cap: 8,
        });
        let module = Arc::clone(m);
        let resolver: Arc<ModuleResolver> =
            Arc::new(move |h: &Hello| (h.bench == "tcp-test").then(|| Arc::clone(&module)));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let server = Server::spawn(
            listener,
            Arc::clone(&service),
            resolver,
            ServeOptions::default(),
        )
        .expect("spawn");
        (server, service)
    }

    #[test]
    fn full_roundtrip_over_tcp() {
        let m = test_module();
        let (server, service) = start_server(&m);

        let mut delta = ModuleEdgeProfile::zeroed(&m);
        let p = &mut delta.funcs[0];
        p.set_entries(1);
        p.set_block(BlockId(0), 1);
        p.set_edge(EdgeRef::new(BlockId(0), 0), 1);
        p.set_block(BlockId(1), 1);
        let paths = ModulePathProfile::with_capacity(1);

        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 1,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let mut client = AggClient::open(Arc::clone(&m), sink, 2, &hello).expect("open");
        for _ in 0..5 {
            client.push_delta(&delta, &paths).expect("push");
        }
        client.finish().expect("finish");
        client.into_sink().wait_ack().expect("ack");

        let agg = service.get("tcp-test").expect("registered");
        let (edges, _) = agg.snapshot();
        assert_eq!(edges.funcs[0].entries(), 5);
        server.shutdown();
    }

    #[test]
    fn corrupt_frame_drops_connection_but_keeps_prior_merges() {
        let m = test_module();
        let (server, service) = start_server(&m);

        let mut delta = ModuleEdgeProfile::zeroed(&m);
        delta.funcs[0].set_entries(0); // keep flow-trivial
        delta.funcs[0].set_block(BlockId(0), 0);
        let paths = ModulePathProfile::with_capacity(1);
        let hello = Hello {
            bench: "tcp-test".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 2,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let mut client = AggClient::open(Arc::clone(&m), sink, 1, &hello).expect("open");
        client.push_delta(&delta, &paths).expect("push");
        let mut sink = client.into_sink();
        // Garbage after valid frames: the server must refuse and close,
        // not panic.
        sink.send_frame(b"garbage-not-a-frame").expect("send raw");
        let mut buf = [0u8; 32];
        let n = sink.stream.read(&mut buf).unwrap_or(0);
        assert!(
            n == 0 || buf[..n].starts_with(b"err"),
            "server reported damage or closed"
        );
        assert!(service.get("tcp-test").is_some());
        server.shutdown();
    }

    #[test]
    fn unknown_bench_is_refused() {
        let m = test_module();
        let (server, _service) = start_server(&m);
        let hello = Hello {
            bench: "nope".to_owned(),
            funcs: 1,
            scale_bits: 0,
            worker: 0,
        };
        let sink = TcpSink::connect(server.addr()).expect("connect");
        let client = AggClient::open(Arc::clone(&m), sink, 1, &hello).expect("hello sends");
        let mut sink = client.into_sink();
        let mut buf = [0u8; 32];
        let n = sink.stream.read(&mut buf).unwrap_or(0);
        assert!(n == 0 || buf[..n].starts_with(b"err"));
        server.shutdown();
    }
}
