//! Benchmark specifications: the tunable knobs that give each synthetic
//! benchmark its personality.

/// Parameters controlling one generated benchmark.
///
/// The defaults produce a mid-sized, moderately branchy integer-style
/// program; the SPEC2000 personalities in [`crate::suite`] override them
/// per benchmark to imitate the path characteristics the paper reports in
/// Tables 1–2 (path counts, branches per path, loop trip counts,
/// predictability).
#[derive(Clone, Debug)]
pub struct BenchmarkSpec {
    /// Benchmark name (e.g. `"vpr"`).
    pub name: String,
    /// Master seed: fixes both the generated code and its input stream.
    pub seed: u64,
    /// Number of work functions (besides `main`).
    pub funcs: usize,
    /// Segments per function body (min, max).
    pub segments: (usize, usize),
    /// Maximum control-flow nesting depth.
    pub max_depth: u32,
    /// Probability a segment is a two-way `if`.
    pub if_prob: f64,
    /// Probability a segment is a multi-way `switch`.
    pub switch_prob: f64,
    /// Probability a segment is a loop.
    pub loop_prob: f64,
    /// Probability a segment is a call (to a later function).
    pub call_prob: f64,
    /// Fraction of conditions driven by the per-invocation *scenario*
    /// value rather than fresh randomness — this is what makes paths
    /// correlated and edge profiles poor predictors (§8.1).
    pub correlation: f64,
    /// Bias of uncorrelated branches (probability of the hot arm);
    /// 0.5 = unpredictable, 0.95 = strongly biased.
    pub bias: f64,
    /// Cardinality of the scenario value.
    pub scenario_ways: i64,
    /// Average loop trip count.
    pub avg_trip: i64,
    /// Probability a loop is a canonical counted loop (recognizable by
    /// the unroller's test-elided mode) rather than a while-style loop.
    pub counted_loop_prob: f64,
    /// Straight-line arithmetic instructions per basic segment.
    pub block_len: usize,
    /// Iterations of `main`'s driver loop (controls total work).
    pub outer_iters: i64,
    /// Number of "path explosion" functions: long diamond chains whose
    /// static path count exceeds the hashing threshold (these are what
    /// force PP/TPP into hash tables on crafty/parser-like benchmarks).
    pub explosive_funcs: usize,
    /// Diamonds chained inside each explosive function.
    pub explosive_diamonds: usize,
    /// Number of small leaf helper functions (5–20 statements, called
    /// from hot loop bodies). These are what profile-guided inlining
    /// actually inlines under the paper's 5% code-bloat budget.
    pub leaf_funcs: usize,
}

impl Default for BenchmarkSpec {
    fn default() -> Self {
        Self {
            name: "default".to_owned(),
            seed: 0xC60_2005,
            funcs: 6,
            segments: (3, 6),
            max_depth: 3,
            if_prob: 0.35,
            switch_prob: 0.08,
            loop_prob: 0.22,
            call_prob: 0.15,
            correlation: 0.5,
            bias: 0.8,
            scenario_ways: 32,
            avg_trip: 6,
            counted_loop_prob: 0.5,
            block_len: 3,
            outer_iters: 2_000,
            explosive_funcs: 0,
            explosive_diamonds: 13,
            leaf_funcs: 3,
        }
    }
}

impl BenchmarkSpec {
    /// Creates a spec with the given name and seed derived from it.
    pub fn named(name: &str) -> Self {
        let seed = name.bytes().fold(0xC60_2005u64, |h, b| {
            h.wrapping_mul(31).wrapping_add(u64::from(b))
        });
        Self {
            name: name.to_owned(),
            seed,
            ..Self::default()
        }
    }

    /// Scales the dynamic work (driver iterations) by `factor` — used to
    /// shrink benchmarks for unit tests or grow them for benchmarking.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.outer_iters = ((self.outer_iters as f64 * factor).round() as i64).max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_specs_have_stable_seeds() {
        let a = BenchmarkSpec::named("vpr");
        let b = BenchmarkSpec::named("vpr");
        let c = BenchmarkSpec::named("mcf");
        assert_eq!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
        assert_eq!(a.name, "vpr");
    }

    #[test]
    fn scaling_adjusts_iterations() {
        let s = BenchmarkSpec::default().scaled(0.5);
        assert_eq!(s.outer_iters, 1_000);
        let tiny = BenchmarkSpec::default().scaled(0.0);
        assert_eq!(tiny.outer_iters, 1);
    }
}
