//! Generator-side PRNG: a thin convenience layer over the in-tree
//! [`SplitMix64`].
//!
//! The workload generator used to draw from an external PRNG crate; this
//! adapter replaces it so the workspace builds with no registry access and
//! so *both* random streams in the system (codegen randomness here, the
//! VM's `Rand` intrinsic inside `ppp-vm`) are pinned to the same fully
//! specified algorithm. Every draw consumes exactly one `next_u64`, which
//! keeps generated programs stable under refactors that do not reorder
//! draw sites.

use ppp_vm::SplitMix64;

/// Seeded generator handed through the workload builders.
#[derive(Clone, Debug)]
pub struct GenRng {
    inner: SplitMix64,
}

impl GenRng {
    /// Creates a generator from the spec's master seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: SplitMix64::new(seed),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)` (53 mantissa bits of the raw draw).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p.clamp(0.0, 1.0)
    }

    /// Uniform index in `[0, bound)`; a zero bound yields 0.
    pub fn index(&mut self, bound: usize) -> usize {
        (self.inner.below(bound.min(i64::MAX as usize) as i64)) as usize
    }

    /// Uniform `usize` in `[lo, hi)`; empty ranges collapse to `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.index(hi.saturating_sub(lo))
    }

    /// Uniform `usize` in `[lo, hi]`; inverted ranges collapse to `lo`.
    pub fn usize_incl(&mut self, lo: usize, hi: usize) -> usize {
        self.usize_in(lo, hi.max(lo).saturating_add(1))
    }

    /// Uniform `i64` in `[lo, hi)`; empty ranges collapse to `lo`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.inner.below(hi.saturating_sub(lo))
    }

    /// Uniform `i64` in `[lo, hi]`; inverted ranges collapse to `lo`.
    pub fn i64_incl(&mut self, lo: i64, hi: i64) -> i64 {
        self.i64_in(lo, hi.max(lo).saturating_add(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = GenRng::new(99);
        let mut b = GenRng::new(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = GenRng::new(5);
        for _ in 0..500 {
            let v = r.usize_in(2, 5);
            assert!((2..5).contains(&v));
            let w = r.i64_incl(1, 3);
            assert!((1..=3).contains(&w));
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn degenerate_ranges_collapse() {
        let mut r = GenRng::new(5);
        assert_eq!(r.usize_in(4, 4), 4);
        assert_eq!(r.usize_in(4, 2), 4);
        assert_eq!(r.i64_in(7, 7), 7);
        assert_eq!(r.i64_incl(3, 1), 3);
        assert_eq!(r.index(0), 0);
    }

    #[test]
    fn chance_is_calibrated() {
        let mut r = GenRng::new(2024);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2600..3400).contains(&hits), "hits = {hits}");
    }
}
