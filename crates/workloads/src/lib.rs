//! # ppp-workloads: synthetic SPEC2000-style benchmarks
//!
//! The paper evaluates on SPEC2000 with ref inputs — neither of which can
//! ship with a reproduction. This crate substitutes a seeded program
//! generator whose knobs control exactly the properties the profilers
//! care about: branchiness, branch *correlation* (hidden per-invocation
//! scenarios that edge profiles cannot see), branch bias, loop style and
//! trip counts, call density, and per-routine static path counts
//! (including above-hash-threshold "explosive" routines).
//!
//! [`suite::spec2000_suite`] provides 18 personalities named after the
//! paper's benchmarks, tuned to their Table 1/Table 2 characteristics.
//!
//! ```
//! use ppp_workloads::{generate, BenchmarkSpec};
//! use ppp_vm::{run, RunOptions};
//!
//! let module = generate(&BenchmarkSpec::named("demo").scaled(0.05));
//! let result = run(&module, "main", &RunOptions::default())?;
//! assert_eq!(result.halt, ppp_vm::HaltReason::Finished);
//! # Ok::<(), ppp_vm::VmError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod gen;
pub mod prng;
pub mod spec;
pub mod suite;

pub use gen::generate;
pub use spec::BenchmarkSpec;
pub use suite::{spec2000_suite, BenchClass, SuiteEntry};
