//! The synthetic program generator.
//!
//! Produces deterministic, always-terminating modules whose *path*
//! behaviour is tunable: a per-invocation hidden **scenario** value drives
//! a configurable fraction of branch decisions, so several branches along
//! a path correlate — the regime where edge profiles mispredict hot paths
//! (§2, §8.1) — while the rest of the branches are independently random
//! with a configurable bias.
//!
//! Loops come in two flavours matching the paper's benchmarks: canonical
//! counted loops (recognizable by `ppp-opt`'s test-elided unroller, like
//! Fortran inner loops) and while-style loops with geometric trip counts
//! (like integer-code loops, which Scale "does not unroll"). *Explosive*
//! functions — long diamond chains with path counts above the hashing
//! threshold — model gcc/crafty-style routines that force PP and TPP into
//! hash tables.

use crate::prng::GenRng;
use crate::spec::BenchmarkSpec;
use ppp_ir::{BinOp, FuncId, Function, FunctionBuilder, Module, Reg};

/// Generates the benchmark module described by `spec`.
///
/// The module is already normalized (virtual entry, single exit) and
/// verifier-clean; its entry point is `main`.
pub fn generate(spec: &BenchmarkSpec) -> Module {
    let mut rng = GenRng::new(spec.seed);
    let n_work = spec.funcs.max(1);
    let n_expl = spec.explosive_funcs;
    let n_leaf = spec.leaf_funcs;
    // Ids: main = 0, work = 1..=n_work, explosive, then leaves.
    let work_ids: Vec<FuncId> = (1..=n_work).map(FuncId::new).collect();
    let expl_ids: Vec<FuncId> = (n_work + 1..=n_work + n_expl).map(FuncId::new).collect();
    let leaf_ids: Vec<FuncId> = (n_work + n_expl + 1..=n_work + n_expl + n_leaf)
        .map(FuncId::new)
        .collect();

    let mut module = Module::new();
    module.add_function(gen_main(spec, &mut rng, &work_ids, &expl_ids));
    for (i, &id) in work_ids.iter().enumerate() {
        // Work function i may call strictly later work functions and any
        // explosive function: the call graph is acyclic by construction.
        let callable: Vec<FuncId> = work_ids[i + 1..]
            .iter()
            .chain(expl_ids.iter())
            .copied()
            .collect();
        module.add_function(gen_work(spec, &mut rng, id, &callable, &leaf_ids));
    }
    for &id in &expl_ids {
        module.add_function(gen_explosive(spec, &mut rng, id));
    }
    for &id in &leaf_ids {
        module.add_function(gen_leaf(spec, &mut rng, id));
    }
    ppp_ir::transform::normalize_for_profiling(&mut module);
    module
}

/// A small pure helper: the inlining fodder real programs have. Short
/// arithmetic on the argument, at most one biased diamond, 5–20 IR
/// statements total.
fn gen_leaf(spec: &BenchmarkSpec, rng: &mut GenRng, id: FuncId) -> Function {
    let mut b = FunctionBuilder::new(format!("leaf_{}", id.index()), 1);
    let x = b.param(0);
    let acc = b.copy(x);
    for _ in 0..rng.usize_in(2, 5) {
        let k = b.constant(rng.i64_in(1, 500));
        let op = [BinOp::Add, BinOp::Xor, BinOp::Mul][rng.index(3)];
        b.binary_to(acc, op, acc, k);
    }
    if rng.chance(0.5) {
        let cut = b.constant((spec.bias.clamp(0.01, 0.99) * 1000.0) as i64);
        let thousand = b.constant(1000);
        let r = b.rand(thousand);
        let c = b.binary(BinOp::Lt, r, cut);
        let (t, j) = (b.new_block(), b.new_block());
        b.branch(c, t, j);
        b.switch_to(t);
        let k = b.constant(rng.i64_in(1, 99));
        b.binary_to(acc, BinOp::Add, acc, k);
        b.jump(j);
        b.switch_to(j);
    }
    b.ret(Some(acc));
    b.finish()
}

/// `main`: a counted driver loop dispatching over the work functions with
/// a skewed distribution (low-numbered functions are hot).
fn gen_main(
    spec: &BenchmarkSpec,
    rng: &mut GenRng,
    work_ids: &[FuncId],
    expl_ids: &[FuncId],
) -> Function {
    let mut b = FunctionBuilder::new("main", 0);
    let iters = b.constant(spec.outer_iters);
    let i = b.copy(iters);
    let (hdr, body, latch, exit) = (b.new_block(), b.new_block(), b.new_block(), b.new_block());
    b.jump(hdr);
    b.switch_to(hdr);
    b.branch(i, body, exit);

    // Skewed arm table: arm k calls work function ~log2(k); one arm goes
    // to an explosive function when present.
    let n_arms = 8usize;
    let mut arm_targets: Vec<FuncId> = (0..n_arms)
        .map(|k| {
            let idx = match k {
                0..=3 => 0,
                4 | 5 => 1,
                6 => 2,
                _ => 3,
            };
            work_ids[idx.min(work_ids.len() - 1)]
        })
        .collect();
    // Explosive routines are hot: real path-heavy routines (crafty's
    // Evaluate, parser's match loops) dominate run time, so give them a
    // quarter of the dispatch.
    if let Some(&e) = expl_ids.first() {
        arm_targets[n_arms - 1] = e;
        arm_targets[n_arms - 2] = e;
    }
    if expl_ids.len() > 1 {
        arm_targets[n_arms - 2] = expl_ids[1];
    }

    b.switch_to(body);
    let arms_c = b.constant(n_arms as i64);
    let t = b.rand(arms_c);
    let arg_bound = b.constant(64);
    let arm_blocks: Vec<_> = (0..n_arms).map(|_| b.new_block()).collect();
    b.switch(t, arm_blocks.clone(), arm_blocks[0]);
    for (k, &blk) in arm_blocks.iter().enumerate() {
        b.switch_to(blk);
        let arg = b.rand(arg_bound);
        let r = b.call(arm_targets[k], vec![arg]);
        b.emit(r);
        b.jump(latch);
    }
    b.switch_to(latch);
    let one = b.constant(1);
    b.binary_to(i, BinOp::Sub, i, one);
    b.jump(hdr);
    b.switch_to(exit);
    b.ret(None);
    let _ = rng;
    b.finish()
}

/// Shared state while generating one function body.
struct Ctx<'a> {
    spec: &'a BenchmarkSpec,
    b: FunctionBuilder,
    acc: Reg,
    scenario: Reg,
    /// Product of enclosing loop trip counts: bounds dynamic cost.
    mult: i64,
    callable: &'a [FuncId],
    leaves: &'a [FuncId],
}

const MAX_MULT: i64 = 400;

fn gen_work(
    spec: &BenchmarkSpec,
    rng: &mut GenRng,
    id: FuncId,
    callable: &[FuncId],
    leaves: &[FuncId],
) -> Function {
    let mut b = FunctionBuilder::new(format!("work_{}", id.index()), 1);
    let x = b.param(0);
    let acc = b.copy(x);
    let sw = b.constant(spec.scenario_ways.max(2));
    let scenario = b.rand(sw);
    let mut ctx = Ctx {
        spec,
        b,
        acc,
        scenario,
        mult: 1,
        callable,
        leaves,
    };
    let n = rng.usize_incl(spec.segments.0, spec.segments.1.max(spec.segments.0));
    gen_seq(&mut ctx, rng, n, 0);
    let Ctx { mut b, acc, .. } = ctx;
    b.emit(acc);
    b.ret(Some(acc));
    b.finish()
}

fn gen_seq(ctx: &mut Ctx<'_>, rng: &mut GenRng, n: usize, depth: u32) {
    for _ in 0..n {
        gen_segment(ctx, rng, depth);
    }
}

fn gen_segment(ctx: &mut Ctx<'_>, rng: &mut GenRng, depth: u32) {
    let spec = ctx.spec;
    let roll = rng.unit_f64();
    let deep = depth >= spec.max_depth;
    let loop_ok = !deep && ctx.mult.saturating_mul(spec.avg_trip.max(2)) <= MAX_MULT;
    // Calls to big work functions only outside deep loop nests (they
    // multiply total work); cheap leaf calls are fine inside hot loops —
    // that is exactly what makes them worth inlining.
    let call_ok = (!ctx.callable.is_empty() && ctx.mult <= 8)
        || (!ctx.leaves.is_empty() && ctx.mult <= MAX_MULT);

    if !deep && roll < spec.if_prob {
        gen_if(ctx, rng, depth);
    } else if !deep && roll < spec.if_prob + spec.switch_prob {
        gen_switch(ctx, rng);
    } else if loop_ok && roll < spec.if_prob + spec.switch_prob + spec.loop_prob {
        gen_loop(ctx, rng, depth);
    } else if call_ok && roll < spec.if_prob + spec.switch_prob + spec.loop_prob + spec.call_prob {
        gen_call(ctx, rng);
    } else {
        gen_straight(ctx, rng);
    }
}

/// A few arithmetic instructions mutating the accumulator; occasionally a
/// memory access or an emit (checksum observability).
fn gen_straight(ctx: &mut Ctx<'_>, rng: &mut GenRng) {
    let b = &mut ctx.b;
    for _ in 0..ctx.spec.block_len.max(1) {
        match rng.index(8) {
            0 => {
                let k = b.constant(rng.i64_in(1, 1000));
                b.binary_to(ctx.acc, BinOp::Add, ctx.acc, k);
            }
            1 => {
                let k = b.constant(rng.i64_in(3, 64));
                b.binary_to(ctx.acc, BinOp::Mul, ctx.acc, k);
            }
            2 => {
                let k = b.constant(rng.i64_in(1, 31));
                b.binary_to(ctx.acc, BinOp::Xor, ctx.acc, k);
            }
            3 => {
                b.binary_to(ctx.acc, BinOp::Add, ctx.acc, ctx.scenario);
            }
            4 => {
                // store then load through a masked address
                let mask = b.constant(0xFFF);
                let addr = b.binary(BinOp::And, ctx.acc, mask);
                b.store(addr, ctx.acc);
                let v = b.load(addr);
                b.binary_to(ctx.acc, BinOp::Add, ctx.acc, v);
            }
            5 => {
                let k = b.constant(rng.i64_in(1, 7));
                b.binary_to(ctx.acc, BinOp::Shr, ctx.acc, k);
                b.binary_to(ctx.acc, BinOp::Add, ctx.acc, ctx.scenario);
            }
            6 => {
                b.emit(ctx.acc);
            }
            _ => {
                let k = b.constant(rng.i64_in(2, 12));
                b.binary_to(ctx.acc, BinOp::Rem, ctx.acc, k);
                let base = b.constant(rng.i64_in(100, 10_000));
                b.binary_to(ctx.acc, BinOp::Add, ctx.acc, base);
            }
        }
    }
}

/// Emits a condition register: correlated conditions compare the scenario
/// against a threshold; independent ones draw fresh randomness at the
/// configured bias.
fn gen_cond(ctx: &mut Ctx<'_>, rng: &mut GenRng) -> Reg {
    let correlated = rng.chance(ctx.spec.correlation);
    // Draw the scenario threshold unconditionally so both arms consume
    // the same number of generator draws: specs that differ only in
    // `correlation` then produce structurally identical CFGs (the
    // correlation knob changes which *condition* is emitted, never the
    // downstream shape), which the correlation tests rely on.
    let ways = ctx.spec.scenario_ways.max(2);
    let threshold = rng.i64_in(1, ways);
    let b = &mut ctx.b;
    if correlated {
        let t = b.constant(threshold);
        b.binary(BinOp::Lt, ctx.scenario, t)
    } else {
        let thousand = b.constant(1000);
        let r = b.rand(thousand);
        let cut = b.constant((ctx.spec.bias.clamp(0.01, 0.99) * 1000.0) as i64);
        b.binary(BinOp::Lt, r, cut)
    }
}

fn gen_if(ctx: &mut Ctx<'_>, rng: &mut GenRng, depth: u32) {
    let c = gen_cond(ctx, rng);
    let (then_b, else_b, join) = (ctx.b.new_block(), ctx.b.new_block(), ctx.b.new_block());
    ctx.b.branch(c, then_b, else_b);
    ctx.b.switch_to(then_b);
    let n_then = rng.usize_incl(1, 2);
    gen_seq(ctx, rng, n_then, depth + 1);
    ctx.b.jump(join);
    ctx.b.switch_to(else_b);
    if rng.chance(0.7) {
        gen_seq(ctx, rng, 1, depth + 1);
    }
    ctx.b.jump(join);
    ctx.b.switch_to(join);
}

fn gen_switch(ctx: &mut Ctx<'_>, rng: &mut GenRng) {
    let ways = rng.usize_incl(3, 4);
    let correlated = rng.chance(ctx.spec.correlation);
    let b = &mut ctx.b;
    let w = b.constant(ways as i64);
    let disc = if correlated {
        b.binary(BinOp::Rem, ctx.scenario, w)
    } else {
        b.rand(w)
    };
    let arms: Vec<_> = (0..ways).map(|_| b.new_block()).collect();
    let join = b.new_block();
    b.switch(disc, arms.clone(), arms[0]);
    for (k, &arm) in arms.iter().enumerate() {
        ctx.b.switch_to(arm);
        let k_c = ctx.b.constant((k as i64 + 1) * 17);
        ctx.b.binary_to(ctx.acc, BinOp::Add, ctx.acc, k_c);
        ctx.b.jump(join);
    }
    ctx.b.switch_to(join);
}

fn gen_loop(ctx: &mut Ctx<'_>, rng: &mut GenRng, depth: u32) {
    let counted = rng.chance(ctx.spec.counted_loop_prob);
    let trip = ctx.spec.avg_trip.max(2);
    if counted {
        // Canonical counted loop: empty header testing the induction
        // register, straight-line body with exactly one decrement.
        let b = &mut ctx.b;
        let bound = b.constant(2 * trip);
        let i = b.rand(bound);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(i, body, exit);
        b.switch_to(body);
        let saved_mult = ctx.mult;
        ctx.mult = ctx.mult.saturating_mul(trip);
        gen_straight(ctx, rng);
        ctx.mult = saved_mult;
        let b = &mut ctx.b;
        let one = b.constant(1);
        b.binary_to(i, BinOp::Sub, i, one);
        b.jump(hdr);
        b.switch_to(exit);
    } else {
        // While-style loop: geometric trips, arbitrary body.
        let b = &mut ctx.b;
        let tr = b.constant(trip);
        let c = b.rand(tr);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(c, body, exit);
        b.switch_to(body);
        let saved_mult = ctx.mult;
        ctx.mult = ctx.mult.saturating_mul(trip);
        let n_body = rng.usize_incl(1, 2);
        gen_seq(ctx, rng, n_body, depth + 1);
        ctx.mult = saved_mult;
        let b = &mut ctx.b;
        let c2 = b.rand(tr);
        b.copy_to(c, c2);
        b.jump(hdr);
        b.switch_to(exit);
    }
}

fn gen_call(ctx: &mut Ctx<'_>, rng: &mut GenRng) {
    // Inside loops (or by a coin flip) call a cheap leaf helper; big work
    // functions are only called from shallow contexts.
    let deep = ctx.mult > 8 || ctx.callable.is_empty();
    let callee = if !ctx.leaves.is_empty() && (deep || rng.chance(0.6)) {
        ctx.leaves[rng.index(ctx.leaves.len())]
    } else {
        ctx.callable[rng.index(ctx.callable.len())]
    };
    let r = ctx.b.call(callee, vec![ctx.acc]);
    ctx.b.binary_to(ctx.acc, BinOp::Xor, ctx.acc, r);
}

/// A long diamond chain: `2^diamonds` static paths (hashing pressure for
/// PP/TPP), with mostly scenario-driven conditions so the *dynamic*
/// distinct-path count stays moderate.
fn gen_explosive(spec: &BenchmarkSpec, rng: &mut GenRng, id: FuncId) -> Function {
    let mut b = FunctionBuilder::new(format!("explosive_{}", id.index()), 1);
    let x = b.param(0);
    let acc = b.copy(x);
    let ways = spec.scenario_ways.max(2);
    let sw = b.constant(ways);
    let scenario = b.rand(sw);
    let bits = 63 - (ways as u64).leading_zeros() as i64; // log2
    for j in 0..spec.explosive_diamonds {
        // Realistic branch-bias spread. ~15% of diamonds have an arm
        // below TPP's 5% *local* threshold (prunable by everyone); ~45%
        // test moderately biased scenario thresholds (6–33% arms — only
        // PPP's escalating *global* criterion ever prunes these, §4.3);
        // the rest are correlated 50/50 scenario bits nobody can prune.
        // This is what leaves TPP hashing on the larger routines while
        // PPP's SAC drops them under the threshold, as in the paper's
        // integer benchmarks (Figure 11).
        let roll = rng.unit_f64();
        let cond = if roll < 0.15 {
            // Rare arm: scenario == ways-1 (probability 1/ways).
            let rare = b.constant(ways - 1);
            b.binary(BinOp::Eq, scenario, rare)
        } else if roll < 0.6 {
            let t = b.constant(rng.i64_incl(2, ways / 3));
            b.binary(BinOp::Lt, scenario, t)
        } else {
            let shift = b.constant(j as i64 % bits.max(1));
            let shifted = b.binary(BinOp::Shr, scenario, shift);
            let one = b.constant(1);
            b.binary(BinOp::And, shifted, one)
        };
        let (t, e, join) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(cond, t, e);
        b.switch_to(t);
        let k = b.constant((j as i64 + 1) * 31);
        b.binary_to(acc, BinOp::Add, acc, k);
        b.jump(join);
        b.switch_to(e);
        let k = b.constant((j as i64 + 1) * 13);
        b.binary_to(acc, BinOp::Xor, acc, k);
        b.jump(join);
        b.switch_to(join);
    }
    b.emit(acc);
    b.ret(Some(acc));
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::verify_module;
    use ppp_vm::{run, HaltReason, RunOptions};

    fn small_spec() -> BenchmarkSpec {
        BenchmarkSpec::named("testbench").scaled(0.1)
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = small_spec();
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a, b);
    }

    #[test]
    fn generated_modules_verify() {
        for name in ["alpha", "beta", "gamma", "delta"] {
            let m = generate(&BenchmarkSpec::named(name).scaled(0.05));
            assert_eq!(verify_module(&m), Ok(()), "{name} failed verification");
        }
    }

    #[test]
    fn generated_programs_terminate() {
        let m = generate(&small_spec());
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.halt, HaltReason::Finished);
        assert!(r.steps > 1000, "workload should do real work: {}", r.steps);
    }

    #[test]
    fn runs_are_reproducible() {
        let m = generate(&small_spec());
        let r1 = run(&m, "main", &RunOptions::default()).unwrap();
        let r2 = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r1.checksum, r2.checksum);
        assert_eq!(r1.steps, r2.steps);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&BenchmarkSpec::named("one").scaled(0.05));
        let b = generate(&BenchmarkSpec::named("two").scaled(0.05));
        assert_ne!(a, b);
    }

    #[test]
    fn explosive_functions_have_many_static_paths() {
        let mut spec = small_spec();
        spec.explosive_funcs = 1;
        spec.explosive_diamonds = 13;
        let m = generate(&spec);
        let name_match = m
            .functions
            .iter()
            .find(|f| f.name.starts_with("explosive"))
            .expect("explosive function generated");
        // 13 diamonds = 8192 paths, above the 4000 hashing threshold.
        let dag = ppp_core::Dag::build(name_match, None);
        let cold = vec![false; dag.edge_count()];
        let num = ppp_core::numbering::number_paths(
            &dag,
            &cold,
            ppp_core::numbering::NumberingOrder::BallLarus,
        );
        assert!(num.n_paths > 4000, "N = {}", num.n_paths);
    }

    #[test]
    fn correlation_limits_dynamic_paths() {
        // Full correlation: dynamic paths bounded by scenario cardinality
        // per routine shape; zero correlation: far more distinct paths.
        let mut hi = small_spec();
        hi.correlation = 1.0;
        hi.name = "hi".into();
        let mut lo = small_spec();
        lo.correlation = 0.0;
        lo.bias = 0.5;
        lo.name = "hi".into(); // same seed path: identical structure
        lo.seed = hi.seed;
        let mh = generate(&hi);
        let ml = generate(&lo);
        let rh = run(&mh, "main", &RunOptions::default().traced()).unwrap();
        let rl = run(&ml, "main", &RunOptions::default().traced()).unwrap();
        let dh = rh.path_profile.unwrap().distinct_paths();
        let dl = rl.path_profile.unwrap().distinct_paths();
        assert!(
            dl > dh,
            "uncorrelated runs should see more distinct paths: {dl} vs {dh}"
        );
    }
}
