//! The 18 SPEC2000 benchmark personalities (§7.2).
//!
//! Each entry tunes the generator toward the corresponding benchmark's
//! published path characteristics (Tables 1–2): integer codes are branchy
//! with correlated, hard-to-predict paths and low trip counts; floating
//! point codes are dominated by high-trip counted loops with few paths.
//! `crafty`/`parser`-class benchmarks include *explosive* routines whose
//! static path counts exceed the 4000-path hashing threshold, reproducing
//! the hash-table pressure the paper reports (Figure 11's striped bars;
//! crafty's 7% lost flow).
//!
//! Absolute magnitudes are scaled down (millions rather than billions of
//! dynamic paths) so the whole suite regenerates in seconds; percentages
//! and cross-profiler comparisons are the reproduction target.

use crate::spec::BenchmarkSpec;

/// Whether a benchmark belongs to SPECint or SPECfp.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BenchClass {
    /// C integer benchmark.
    Int,
    /// Fortran/C floating-point benchmark.
    Fp,
}

/// A named suite entry.
#[derive(Clone, Debug)]
pub struct SuiteEntry {
    /// The benchmark spec.
    pub spec: BenchmarkSpec,
    /// INT or FP.
    pub class: BenchClass,
}

fn int(name: &str, f: impl FnOnce(&mut BenchmarkSpec)) -> SuiteEntry {
    let mut spec = BenchmarkSpec::named(name);
    // Integer baseline: branchy, correlated, shallow loops.
    spec.if_prob = 0.45;
    spec.switch_prob = 0.08;
    spec.loop_prob = 0.18;
    spec.call_prob = 0.18;
    spec.correlation = 0.55;
    spec.bias = 0.8;
    spec.avg_trip = 5;
    spec.counted_loop_prob = 0.3;
    spec.outer_iters = 1500;
    f(&mut spec);
    SuiteEntry {
        spec,
        class: BenchClass::Int,
    }
}

fn fp(name: &str, f: impl FnOnce(&mut BenchmarkSpec)) -> SuiteEntry {
    let mut spec = BenchmarkSpec::named(name);
    // FP baseline: loopy, high-trip counted loops, few predictable
    // branches, long straight bodies.
    spec.if_prob = 0.12;
    spec.switch_prob = 0.02;
    spec.loop_prob = 0.45;
    spec.call_prob = 0.1;
    spec.correlation = 0.3;
    spec.bias = 0.93;
    spec.avg_trip = 80;
    spec.counted_loop_prob = 0.85;
    spec.block_len = 5;
    spec.segments = (3, 5);
    spec.funcs = 8;
    spec.outer_iters = 200;
    f(&mut spec);
    SuiteEntry {
        spec,
        class: BenchClass::Fp,
    }
}

/// Builds the full 18-benchmark suite in the paper's Table 1 order.
pub fn spec2000_suite() -> Vec<SuiteEntry> {
    vec![
        // --- SPECint ----------------------------------------------------
        int("vpr", |s| {
            s.funcs = 7;
            s.correlation = 0.5;
            s.explosive_funcs = 1;
            s.explosive_diamonds = 12;
        }),
        int("mcf", |s| {
            // Few, simple paths; very predictable.
            s.funcs = 4;
            s.segments = (2, 4);
            s.if_prob = 0.3;
            s.correlation = 0.3;
            s.bias = 0.92;
            s.loop_prob = 0.3;
            s.avg_trip = 8;
        }),
        int("crafty", |s| {
            // The path monster: explosive routines, poor predictability.
            s.funcs = 8;
            s.segments = (4, 7);
            s.correlation = 0.7;
            s.bias = 0.6;
            s.scenario_ways = 48;
            s.explosive_funcs = 2;
            s.explosive_diamonds = 14;
        }),
        int("parser", |s| {
            s.funcs = 9;
            s.segments = (4, 7);
            s.correlation = 0.65;
            s.bias = 0.65;
            s.scenario_ways = 40;
            s.explosive_funcs = 2;
            s.explosive_diamonds = 13;
            s.outer_iters = 1800;
        }),
        int("perlbmk", |s| {
            s.funcs = 8;
            s.switch_prob = 0.2; // interpreter dispatch
            s.correlation = 0.6;
            s.scenario_ways = 32;
            s.explosive_funcs = 1;
            s.explosive_diamonds = 12;
        }),
        int("gap", |s| {
            s.funcs = 8;
            s.correlation = 0.55;
            s.explosive_funcs = 1;
            s.explosive_diamonds = 13;
        }),
        int("bzip2", |s| {
            s.funcs = 5;
            s.loop_prob = 0.3;
            s.avg_trip = 10;
            s.counted_loop_prob = 0.6;
            s.correlation = 0.45;
        }),
        int("twolf", |s| {
            s.funcs = 7;
            s.correlation = 0.75;
            s.bias = 0.7;
            s.scenario_ways = 24;
            s.explosive_funcs = 1;
            s.explosive_diamonds = 12;
        }),
        // --- SPECfp -----------------------------------------------------
        fp("wupwise", |s| {
            s.funcs = 5;
            s.correlation = 0.6;
            s.if_prob = 0.2;
        }),
        fp("swim", |s| {
            // Almost pure counted loops: ~1 branch per path.
            s.funcs = 7;
            s.if_prob = 0.03;
            s.loop_prob = 0.6;
            s.avg_trip = 100;
            s.counted_loop_prob = 0.97;
            s.block_len = 8;
        }),
        fp("mgrid", |s| {
            s.funcs = 7;
            s.if_prob = 0.05;
            s.loop_prob = 0.55;
            s.avg_trip = 96;
            s.counted_loop_prob = 0.95;
            s.block_len = 6;
        }),
        fp("applu", |s| {
            s.funcs = 7;
            s.if_prob = 0.1;
            s.avg_trip = 80;
        }),
        fp("mesa", |s| {
            // The FP benchmark with integer-ish branching (it is C).
            s.funcs = 6;
            s.if_prob = 0.3;
            s.correlation = 0.55;
            s.counted_loop_prob = 0.6;
            s.explosive_funcs = 1;
            s.explosive_diamonds = 12;
        }),
        fp("art", |s| {
            s.funcs = 6;
            s.if_prob = 0.2;
            s.correlation = 0.5;
            s.avg_trip = 88;
        }),
        fp("equake", |s| {
            s.funcs = 6;
            s.if_prob = 0.15;
            s.avg_trip = 80;
        }),
        fp("ammp", |s| {
            s.funcs = 5;
            s.if_prob = 0.18;
            s.correlation = 0.45;
            s.avg_trip = 72;
        }),
        fp("sixtrack", |s| {
            s.funcs = 5;
            s.if_prob = 0.12;
            s.avg_trip = 92;
            s.block_len = 9;
        }),
        fp("apsi", |s| {
            s.funcs = 5;
            s.if_prob = 0.18;
            s.avg_trip = 88;
            s.counted_loop_prob = 0.9;
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::verify_module;

    #[test]
    fn suite_has_eighteen_named_benchmarks() {
        let suite = spec2000_suite();
        assert_eq!(suite.len(), 18);
        let names: Vec<&str> = suite.iter().map(|e| e.spec.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "vpr", "mcf", "crafty", "parser", "perlbmk", "gap", "bzip2", "twolf", "wupwise",
                "swim", "mgrid", "applu", "mesa", "art", "equake", "ammp", "sixtrack", "apsi",
            ]
        );
        assert_eq!(
            suite.iter().filter(|e| e.class == BenchClass::Int).count(),
            8
        );
        assert_eq!(
            suite.iter().filter(|e| e.class == BenchClass::Fp).count(),
            10
        );
    }

    #[test]
    fn every_benchmark_generates_and_verifies() {
        for entry in spec2000_suite() {
            let m = crate::gen::generate(&entry.spec.clone().scaled(0.02));
            assert_eq!(
                verify_module(&m),
                Ok(()),
                "{} failed verification",
                entry.spec.name
            );
        }
    }

    #[test]
    fn classes_have_distinct_personalities() {
        let suite = spec2000_suite();
        let swim = &suite.iter().find(|e| e.spec.name == "swim").unwrap().spec;
        let crafty = &suite.iter().find(|e| e.spec.name == "crafty").unwrap().spec;
        assert!(swim.counted_loop_prob > crafty.counted_loop_prob);
        assert!(crafty.if_prob > swim.if_prob);
        assert!(crafty.explosive_funcs > 0);
        assert_eq!(swim.explosive_funcs, 0);
    }
}
