//! Worked examples from the paper's figures, encoded as tests.
//!
//! These pin the implementation to the paper's own numbers: Figure 1's
//! path numbering, Figure 3's cold-path poisoning, Figure 4's obvious
//! paths, Figure 5's pushing-past-cold-edges, Figure 7's branch-flow
//! motivation, and Figure 8's definite-flow/coverage computation.

use ppp_core::dag::Dag;
use ppp_core::flow::{definite_flow, FlowMetric};
use ppp_core::numbering::{decode_path, number_paths, NumberingOrder};
use ppp_core::obvious::all_paths_obvious;
use ppp_ir::{
    BlockId, EdgeRef, FuncEdgeProfile, FuncId, Function, FunctionBuilder, Module, PathKey, Reg,
};
use ppp_vm::{run, RunOptions};

/// Figure 1's routine (§3.1): A -> B | C; B, C -> D; D -> E | F; E -> F;
/// F -> A (back edge) | G (exit). The paper numbers its DAG's 8 paths.
/// With our explicit virtual-entry block the DAG has 16 (each of the 8
/// block sequences occurs both as a fresh-entry path and as a
/// post-back-edge path, which the ground-truth tracer also distinguishes).
fn figure1() -> Function {
    let mut b = FunctionBuilder::new("fig1", 2);
    let a = b.new_block();
    let bb = b.new_block();
    let cc = b.new_block();
    let dd = b.new_block();
    let ee = b.new_block();
    let ff = b.new_block();
    let gg = b.new_block();
    b.jump(a);
    b.switch_to(a);
    b.branch(Reg(0), bb, cc);
    b.switch_to(bb);
    b.jump(dd);
    b.switch_to(cc);
    b.jump(dd);
    b.switch_to(dd);
    b.branch(Reg(1), ee, ff);
    b.switch_to(ee);
    b.jump(ff);
    b.switch_to(ff);
    b.branch(Reg(0), a, gg);
    b.switch_to(gg);
    b.ret(None);
    b.finish()
}

#[test]
fn figure1_numbering_assigns_unique_path_numbers() {
    let f = figure1();
    let dag = Dag::build(&f, None);
    let cold = vec![false; dag.edge_count()];
    let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
    assert_eq!(num.n_paths, 16);
    let mut seen = std::collections::HashSet::new();
    for p in 0..num.n_paths {
        let edges = decode_path(&dag, &num, &cold, p).expect("valid number");
        let key = dag.path_key(&edges);
        assert!(seen.insert(key), "path number {p} decoded to a duplicate");
    }
}

/// Figure 3 (§3.2): the same routine with one cold arm. After cold-edge
/// removal the 8 fresh-entry paths halve, and the cold executions must
/// land outside the hot index range.
#[test]
fn figure3_cold_edge_removal_and_free_poisoning() {
    use ppp_core::events::{event_counting, TreeWeights};
    use ppp_core::plan::simulate;
    use ppp_core::poison::{apply_poisoning, PoisonMode};
    use ppp_core::push::{place_and_push, PushConfig};

    let f = figure1();
    let dag = Dag::build(&f, None);
    let mut cold = vec![false; dag.edge_count()];
    // A -> C is cold (the paper's greyed arm).
    let ac = dag.real_edge(EdgeRef::new(BlockId(1), 1)).unwrap();
    cold[ac.index()] = true;
    let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
    assert_eq!(num.n_paths, 8);

    let inc = event_counting(&dag, &cold, &num, TreeWeights::Static);
    let mut ops = place_and_push(
        &dag,
        &cold,
        &inc,
        &num,
        PushConfig {
            ignore_cold: true,
            merge_set_count: true,
        },
    );
    let outcome = apply_poisoning(&dag, &cold, &mut ops, num.n_paths, PoisonMode::Free);
    // The paper's example maps 4 cold paths into [N, 2N-1]; our bound is
    // [N, 3N-1] (§4.6).
    assert!(outcome.max_counter_index < 3 * num.n_paths);

    // A cold execution (A -> C -> D -> E -> F -> G) counts >= N or not at
    // all.
    let cold_path = [
        dag.real_edge(EdgeRef::new(BlockId(0), 0)).unwrap(),
        ac,
        dag.real_edge(EdgeRef::new(BlockId(3), 0)).unwrap(),
        dag.real_edge(EdgeRef::new(BlockId(4), 0)).unwrap(),
        dag.real_edge(EdgeRef::new(BlockId(5), 0)).unwrap(),
        dag.real_edge(EdgeRef::new(BlockId(6), 1)).unwrap(),
    ];
    let lists: Vec<&[ppp_core::plan::PlanOp]> = cold_path
        .iter()
        .map(|e| ops[e.index()].as_slice())
        .collect();
    for idx in simulate(&lists, 7777) {
        assert!(
            idx >= num.n_paths as i64,
            "cold execution counted hot index {idx}"
        );
    }
}

/// Figure 4 (§3.2): a routine where every path has a defining edge.
#[test]
fn figure4_all_paths_obvious() {
    let mut b = FunctionBuilder::new("fig4", 1);
    let a = b.new_block();
    let bb = b.new_block();
    let cc = b.new_block();
    let dd = b.new_block();
    let ee = b.new_block();
    // A -> B | C; B -> D; C -> D | E; D -> exit; E -> exit — three paths,
    // each with a private edge (A->B is on AB D only... construct as in
    // the figure: all paths obvious).
    b.jump(a);
    b.switch_to(a);
    b.branch(Reg(0), bb, cc);
    b.switch_to(bb);
    b.jump(ee);
    b.switch_to(cc);
    b.branch(Reg(0), dd, ee);
    b.switch_to(dd);
    b.jump(ee);
    b.switch_to(ee);
    b.ret(None);
    let f = b.finish();
    let dag = Dag::build(&f, None);
    let cold = vec![false; dag.edge_count()];
    let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
    assert_eq!(num.n_paths, 3);
    assert_eq!(all_paths_obvious(&dag, &cold, &num), Some(true));
}

/// Figure 7 (§5.1): branch flow is invariant under inlining where unit
/// flow is not. Routine X calls Y; the X path has 2 branches and freq 10,
/// the Y path 1 branch and freq 10.
#[test]
fn figure7_branch_flow_is_inlining_invariant() {
    // Separate: X contributes flow 20, Y contributes 10 => 30.
    let sep_x = FlowMetric::Branch.flow(10, 2);
    let sep_y = FlowMetric::Branch.flow(10, 1);
    // Inlined: one path with 3 branches and freq 10 => 30.
    let inlined = FlowMetric::Branch.flow(10, 3);
    assert_eq!(sep_x + sep_y, inlined);

    // Unit flow: 10 + 10 != 10 — the paper's non-intuitive behaviour.
    let unit_sep = FlowMetric::Unit.flow(10, 2) + FlowMetric::Unit.flow(10, 1);
    let unit_inlined = FlowMetric::Unit.flow(10, 3);
    assert_ne!(unit_sep, unit_inlined);
}

/// Figure 8 (§5.2): the definite-flow worked example. Total branch flow
/// 160; definite flows 60, 20, 0, 0; edge-profile coverage 50%.
#[test]
fn figure8_definite_flow_and_coverage() {
    let mut b = FunctionBuilder::new("fig8", 1);
    let a = b.new_block();
    let bb = b.new_block();
    let cc = b.new_block();
    let dd = b.new_block();
    let ee = b.new_block();
    let ff = b.new_block();
    let gg = b.new_block();
    b.jump(a);
    b.switch_to(a);
    b.branch(Reg(0), bb, cc);
    b.switch_to(bb);
    b.jump(dd);
    b.switch_to(cc);
    b.jump(dd);
    b.switch_to(dd);
    b.branch(Reg(0), ee, ff);
    b.switch_to(ee);
    b.jump(gg);
    b.switch_to(ff);
    b.jump(gg);
    b.switch_to(gg);
    b.ret(None);
    let f = b.finish();
    let mut p = FuncEdgeProfile::zeroed(&f);
    p.set_entries(80);
    let e = |from: u32, s: usize| EdgeRef::new(BlockId(from), s);
    for (edge, freq) in [
        (e(0, 0), 80),
        (e(1, 0), 50),
        (e(1, 1), 30),
        (e(2, 0), 50),
        (e(3, 0), 30),
        (e(4, 0), 60),
        (e(4, 1), 20),
        (e(5, 0), 60),
        (e(6, 0), 20),
    ] {
        p.set_edge(edge, freq);
    }
    let dag = Dag::build(&f, Some(&p));
    assert_eq!(dag.total_branch_flow(), 160);
    let df = definite_flow(&dag);
    assert_eq!(df.entry_map(&dag).total_flow(FlowMetric::Branch), 80);
}

/// End-to-end: the Figure 1 routine, actually executed, instrumented with
/// all three profilers; PP's measured profile must equal the tracer's.
#[test]
fn figure1_executed_and_measured() {
    let mut m = Module::new();
    let mut mb = FunctionBuilder::new("main", 0);
    let hundred = mb.constant(100);
    let i = mb.copy(hundred);
    let (hdr, body, done) = (mb.new_block(), mb.new_block(), mb.new_block());
    mb.jump(hdr);
    mb.switch_to(hdr);
    mb.branch(i, body, done);
    mb.switch_to(body);
    let three = mb.constant(3);
    let c1 = mb.rand(three);
    let two = mb.constant(2);
    let c2 = mb.rand(two);
    mb.call_void(FuncId(1), vec![c1, c2]);
    let one = mb.constant(1);
    mb.binary_to(i, ppp_ir::BinOp::Sub, i, one);
    mb.jump(hdr);
    mb.switch_to(done);
    mb.ret(None);
    m.add_function(mb.finish());
    // A terminating variant of Figure 1: F decrements r0 before testing
    // it, so the loop runs at most r0 times.
    let mut fb = FunctionBuilder::new("fig1", 2);
    let a = fb.new_block();
    let bb = fb.new_block();
    let cc = fb.new_block();
    let dd = fb.new_block();
    let ee = fb.new_block();
    let ff = fb.new_block();
    let gg = fb.new_block();
    fb.jump(a);
    fb.switch_to(a);
    fb.branch(Reg(0), bb, cc);
    fb.switch_to(bb);
    fb.jump(dd);
    fb.switch_to(cc);
    fb.jump(dd);
    fb.switch_to(dd);
    fb.branch(Reg(1), ee, ff);
    fb.switch_to(ee);
    fb.jump(ff);
    fb.switch_to(ff);
    let one = fb.constant(1);
    let zero = fb.constant(0);
    let dec = fb.binary(ppp_ir::BinOp::Sub, Reg(0), one);
    let clamped = fb.binary(ppp_ir::BinOp::Max, dec, zero);
    fb.copy_to(Reg(0), clamped);
    fb.branch(Reg(0), a, gg);
    fb.switch_to(gg);
    fb.ret(None);
    m.add_function(fb.finish());
    ppp_core::normalize_module(&mut m);

    let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
    let truth = traced.path_profile.unwrap();
    let edges = traced.edge_profile.unwrap();

    for config in [
        ppp_core::ProfilerConfig::pp(),
        ppp_core::ProfilerConfig::tpp(),
        ppp_core::ProfilerConfig::ppp(),
    ] {
        let plan = ppp_core::instrument_module(&m, Some(&edges), &config);
        let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.checksum, traced.checksum);
        let measured = ppp_core::measured_paths(&plan, &m, &r.store);
        // Measured paths must be genuine paths with correct branch counts.
        for (fid, key, stats) in measured.iter() {
            if let Some(actual) = truth.func(fid).paths.get(key) {
                assert_eq!(stats.branches, actual.branches);
            }
        }
        if matches!(config.kind, ppp_core::ProfilerKind::Pp) {
            assert_eq!(measured.total_unit_flow(), truth.total_unit_flow());
        }
    }
}

/// The PathKey identity used throughout: spot-check a decoded path's
/// blocks against its key.
#[test]
fn decoded_paths_have_consistent_keys() {
    let f = figure1();
    let dag = Dag::build(&f, None);
    let cold = vec![false; dag.edge_count()];
    let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
    for p in 0..num.n_paths {
        let edges = decode_path(&dag, &num, &cold, p).unwrap();
        let key: PathKey = dag.path_key(&edges);
        let blocks = key.blocks(&f);
        assert_eq!(blocks[0], key.start);
        assert!(key.branch_count(&f) <= key.edges.len() as u32);
    }
}
