//! Corner-case tests of the instrumentation pipeline: the self-adjusting
//! criterion (§4.3), low-coverage routine skipping (§4.1), hash-table
//! fallback and losses (§7.4), and obvious-routine skipping (§3.2).

use ppp_core::{
    instrument_module, measured_paths, normalize_module, ProfilerConfig, ProfilerKind, SkipReason,
};
use ppp_ir::{BinOp, FuncId, FunctionBuilder, Module, Reg};
use ppp_vm::{run, RunOptions};

/// Builds `main` calling `work(scenario-driven diamonds)` with `diamonds`
/// sequential two-way splits, each either biased or scenario-driven.
fn diamond_chain_module(diamonds: usize, iters: i64, biased: bool) -> Module {
    let mut m = Module::new();
    let mut mb = FunctionBuilder::new("main", 0);
    let n = mb.constant(iters);
    let i = mb.copy(n);
    let (hdr, body, exit) = (mb.new_block(), mb.new_block(), mb.new_block());
    mb.jump(hdr);
    mb.switch_to(hdr);
    mb.branch(i, body, exit);
    mb.switch_to(body);
    let bound = mb.constant(64);
    let arg = mb.rand(bound);
    mb.call_void(FuncId(1), vec![arg]);
    let one = mb.constant(1);
    mb.binary_to(i, BinOp::Sub, i, one);
    mb.jump(hdr);
    mb.switch_to(exit);
    mb.ret(None);
    m.add_function(mb.finish());

    let mut fb = FunctionBuilder::new("work", 1);
    let acc = fb.copy(Reg(0));
    let ways = fb.constant(32);
    let scenario = fb.rand(ways);
    for j in 0..diamonds {
        let cond = if biased && j % 3 == 0 {
            // ~3% arm: scenario == 31 (prunable by the 5% local criterion).
            let k = fb.constant(31);
            fb.binary(BinOp::Eq, scenario, k)
        } else {
            // 50/50 scenario bit.
            let sh = fb.constant(j as i64 % 5);
            let t = fb.binary(BinOp::Shr, scenario, sh);
            let one = fb.constant(1);
            fb.binary(BinOp::And, t, one)
        };
        let (a, b, join) = (fb.new_block(), fb.new_block(), fb.new_block());
        fb.branch(cond, a, b);
        fb.switch_to(a);
        let k = fb.constant(j as i64 + 1);
        fb.binary_to(acc, BinOp::Add, acc, k);
        fb.jump(join);
        fb.switch_to(b);
        let k = fb.constant(2 * j as i64 + 1);
        fb.binary_to(acc, BinOp::Xor, acc, k);
        fb.jump(join);
        fb.switch_to(join);
    }
    fb.emit(acc);
    fb.ret(Some(acc));
    m.add_function(fb.finish());
    normalize_module(&mut m);
    m
}

fn edges_of(m: &Module) -> ppp_ir::ModuleEdgeProfile {
    run(m, "main", &RunOptions::default().traced())
        .unwrap()
        .edge_profile
        .unwrap()
}

/// 13 biased diamonds: 8192 static paths. PP must hash; TPP's local
/// criterion prunes the ~3% arms to an array; PPP too.
#[test]
fn hash_threshold_drives_table_choice() {
    let m = diamond_chain_module(13, 300, true);
    let edges = edges_of(&m);
    let work = m.function_by_name("work").unwrap();

    let pp = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
    assert!(pp.funcs[work.index()].uses_hash, "PP must hash 8192 paths");
    assert_eq!(pp.funcs[work.index()].n_paths, 8192);

    let tpp = instrument_module(&m, Some(&edges), &ProfilerConfig::tpp());
    let tf = &tpp.funcs[work.index()];
    assert!(tf.instrumented);
    assert!(
        !tf.uses_hash,
        "TPP's cold removal must reach an array (N = {})",
        tf.n_paths
    );
    assert!(tf.n_paths <= 4000);

    let ppp = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
    assert!(!ppp.funcs[work.index()].uses_hash);
}

/// 13 *unbiased* (50/50 scenario-bit) diamonds: nothing is locally cold,
/// so TPP must keep hashing; PPP's SAC escalates the global criterion but
/// must never zero the routine out — worst case it also hashes.
#[test]
fn unprunable_routines_hash_rather_than_vanish() {
    let m = diamond_chain_module(13, 300, false);
    let edges = edges_of(&m);
    let work = m.function_by_name("work").unwrap();

    let tpp = instrument_module(&m, Some(&edges), &ProfilerConfig::tpp());
    assert!(
        tpp.funcs[work.index()].uses_hash,
        "TPP cannot prune 50/50 bits"
    );

    let ppp = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
    let pf = &ppp.funcs[work.index()];
    assert!(pf.instrumented, "SAC must not destroy the routine");
    assert!(pf.n_paths > 0);
    // Either SAC found something to prune or it fell back to hashing.
    assert!(pf.uses_hash || pf.n_paths <= 4000);
    // And the instrumented module still measures real paths.
    let r = run(&ppp.module, "main", &RunOptions::default()).unwrap();
    let measured = measured_paths(&ppp, &m, &r.store);
    assert!(measured.total_unit_flow() > 0);
}

/// Hash tables lose paths once distinct hot paths exceed slots × probes;
/// the lost counter must account for every execution.
#[test]
fn hash_losses_are_counted_not_dropped() {
    let m = diamond_chain_module(13, 2000, false);
    let edges = edges_of(&m);
    let truth = run(&m, "main", &RunOptions::default().traced())
        .unwrap()
        .path_profile
        .unwrap();
    let tpp = instrument_module(&m, Some(&edges), &ProfilerConfig::tpp());
    let r = run(&tpp.module, "main", &RunOptions::default()).unwrap();
    let measured = measured_paths(&tpp, &m, &r.store);
    // Work paths are hashed; with 32 scenarios x some bits the distinct
    // count is modest, so losses may be zero — but measured + lost must
    // never exceed the truth, and decoded paths must be genuine.
    for (fid, key, stats) in measured.iter() {
        let actual = truth.func(fid).paths.get(key);
        assert!(actual.is_some(), "decoded path {key:?} must exist");
        assert!(stats.freq <= actual.unwrap().freq + r.store.total_lost());
    }
}

/// A routine whose edge profile covers it well is skipped by PPP's LC
/// criterion but still instrumented by TPP.
#[test]
fn high_coverage_routines_skipped_by_lc_only() {
    // One heavily biased diamond (97/3) plus a straight tail: definite
    // flow covers nearly everything.
    let mut m = Module::new();
    let mut mb = FunctionBuilder::new("main", 0);
    let n = mb.constant(500);
    let i = mb.copy(n);
    let (hdr, body, exit) = (mb.new_block(), mb.new_block(), mb.new_block());
    mb.jump(hdr);
    mb.switch_to(hdr);
    mb.branch(i, body, exit);
    mb.switch_to(body);
    mb.call_void(FuncId(1), vec![i]);
    let one = mb.constant(1);
    mb.binary_to(i, BinOp::Sub, i, one);
    mb.jump(hdr);
    mb.switch_to(exit);
    mb.ret(None);
    m.add_function(mb.finish());

    let mut fb = FunctionBuilder::new("biased", 1);
    let thousand = fb.constant(1000);
    let r = fb.rand(thousand);
    let cut = fb.constant(970);
    let c = fb.binary(BinOp::Lt, r, cut);
    let (a, b, j, k) = (
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
        fb.new_block(),
    );
    fb.branch(c, a, b);
    fb.switch_to(a);
    fb.jump(j);
    fb.switch_to(b);
    fb.jump(j);
    fb.switch_to(j);
    // Second biased diamond, same direction bias.
    let r2 = fb.rand(thousand);
    let c2 = fb.binary(BinOp::Lt, r2, cut);
    let (x, y) = (fb.new_block(), fb.new_block());
    fb.branch(c2, x, y);
    fb.switch_to(x);
    fb.jump(k);
    fb.switch_to(y);
    fb.jump(k);
    fb.switch_to(k);
    fb.emit(r2);
    fb.ret(None);
    m.add_function(fb.finish());
    normalize_module(&mut m);

    let edges = edges_of(&m);
    let fid = m.function_by_name("biased").unwrap();

    let ppp = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
    let fp = &ppp.funcs[fid.index()];
    assert!(
        matches!(fp.skip_reason, Some(SkipReason::HighCoverage(_))) || fp.lc_coverage < 0.75,
        "a 97/3-biased routine should be LC-skipped (coverage {:.2})",
        fp.lc_coverage
    );
    if let Some(SkipReason::HighCoverage(c)) = fp.skip_reason {
        assert!(c >= 0.75);
        assert!(!fp.instrumented);
        // TPP has no LC: it instruments (or finds it all-obvious).
        let tpp = instrument_module(&m, Some(&edges), &ProfilerConfig::tpp());
        let tf = &tpp.funcs[fid.index()];
        assert!(
            tf.instrumented || tf.skip_reason == Some(SkipReason::AllObvious),
            "TPP must not LC-skip: {:?}",
            tf.skip_reason
        );
    }
    assert_eq!(ppp.config.kind, ProfilerKind::Ppp);
}

/// 70 sequential diamonds: 2^70 static paths saturate the 64-bit path
/// counters. Instrumentation must stay well-defined (hash table, clamped
/// values) and never panic or corrupt execution — the paper's "path
/// truncation" regime (§7.4).
#[test]
fn saturated_path_counts_do_not_panic() {
    let m = diamond_chain_module(70, 50, false);
    let edges = edges_of(&m);
    let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
    for config in [
        ProfilerConfig::pp(),
        ProfilerConfig::tpp(),
        ProfilerConfig::ppp(),
    ] {
        let plan = instrument_module(&m, Some(&edges), &config);
        let work = m.function_by_name("work").unwrap();
        let fp = &plan.funcs[work.index()];
        if fp.instrumented {
            assert!(
                fp.uses_hash,
                "{}: saturated routine must hash",
                config.label()
            );
        }
        let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.checksum, traced.checksum, "{}", config.label());
        // Decoding must not panic either (most counts are lost/unmapped).
        let _ = measured_paths(&plan, &m, &r.store);
    }
}

/// Straight-line routines (one path) are all-obvious for guided
/// profilers and get a single constant count under PP.
#[test]
fn single_path_routines() {
    let mut m = Module::new();
    let mut mb = FunctionBuilder::new("main", 0);
    let v = mb.call(FuncId(1), vec![]);
    mb.emit(v);
    mb.ret(None);
    m.add_function(mb.finish());
    let mut fb = FunctionBuilder::new("straight", 0);
    let c = fb.constant(5);
    let (next, last) = (fb.new_block(), fb.new_block());
    fb.jump(next);
    fb.switch_to(next);
    fb.jump(last);
    fb.switch_to(last);
    fb.ret(Some(c));
    m.add_function(fb.finish());
    normalize_module(&mut m);
    let edges = edges_of(&m);

    let ppp = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
    let sid = m.function_by_name("straight").unwrap();
    // Either skipped as obvious/high-coverage, or instrumented trivially.
    let fp = &ppp.funcs[sid.index()];
    assert!(
        !fp.instrumented,
        "single-path routine must not be instrumented by PPP: {:?}",
        fp.skip_reason
    );

    let pp = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
    assert!(pp.funcs[sid.index()].instrumented);
    let r = run(&pp.module, "main", &RunOptions::default()).unwrap();
    let measured = measured_paths(&pp, &m, &r.store);
    assert_eq!(measured.func(sid).total_unit_flow(), 1);
}
