//! Quantitative check of §4.5's intent: smart path numbering and
//! profile-driven event counting place *fewer dynamic increments on hot
//! edges* than the static-heuristic versions.

use ppp_core::dag::{Dag, DagEdgeId};
use ppp_core::events::{event_counting, TreeWeights};
use ppp_core::numbering::{number_paths, NumberingOrder};
use ppp_ir::{FuncId, FunctionBuilder, Module, Reg};
use ppp_vm::{run, RunOptions};

/// A function whose hot/cold arms contradict the static heuristics: the
/// *second* arm of each branch is the hot one (static assumes 50/50 and
/// prefers small-NumPaths ordering), inside a loop the heuristics weigh
/// generically.
fn build() -> Module {
    let mut m = Module::new();
    let mut mb = FunctionBuilder::new("main", 0);
    let n = mb.constant(400);
    let i = mb.copy(n);
    let (hdr, body, exit) = (mb.new_block(), mb.new_block(), mb.new_block());
    mb.jump(hdr);
    mb.switch_to(hdr);
    mb.branch(i, body, exit);
    mb.switch_to(body);
    mb.call_void(FuncId(1), vec![i]);
    let one = mb.constant(1);
    mb.binary_to(i, ppp_ir::BinOp::Sub, i, one);
    mb.jump(hdr);
    mb.switch_to(exit);
    mb.ret(None);
    m.add_function(mb.finish());

    let mut fb = FunctionBuilder::new("skewed", 1);
    let thousand = fb.constant(1000);
    let ninety = fb.constant(900);
    for _ in 0..4 {
        let r = fb.rand(thousand);
        // cond true 10% of the time: the *else* arm is hot.
        let c = fb.binary(ppp_ir::BinOp::Lt, ninety, r);
        let (t, e, j) = (fb.new_block(), fb.new_block(), fb.new_block());
        fb.branch(c, t, e);
        fb.switch_to(t);
        fb.jump(j);
        fb.switch_to(e);
        fb.jump(j);
        fb.switch_to(j);
    }
    let z = fb.param(0);
    fb.emit(z);
    fb.ret(Some(z));
    m.add_function(fb.finish());
    ppp_core::normalize_module(&mut m);
    m
}

/// Dynamic increments executed = Σ over edges with inc != 0 of edge freq.
fn dynamic_increments(dag: &Dag, inc: &[i64]) -> u64 {
    (0..dag.edge_count() as u32)
        .map(DagEdgeId)
        .filter(|e| inc[e.index()] != 0)
        .map(|e| dag.edge(e).freq)
        .sum()
}

#[test]
fn profile_driven_event_counting_moves_increments_off_hot_edges() {
    let m = build();
    let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();
    let fid = m.function_by_name("skewed").unwrap();
    let dag = Dag::build(m.function(fid), Some(edges.func(fid)));
    let cold = vec![false; dag.edge_count()];

    // Static posture: Ball-Larus order + heuristic spanning tree.
    let num_static = number_paths(&dag, &cold, NumberingOrder::BallLarus);
    let inc_static = event_counting(&dag, &cold, &num_static, TreeWeights::Static);
    let cost_static = dynamic_increments(&dag, &inc_static);

    // SPN posture: frequency order + measured spanning tree (§4.5).
    let num_spn = number_paths(&dag, &cold, NumberingOrder::SmartDecreasingFreq);
    let inc_spn = event_counting(&dag, &cold, &num_spn, TreeWeights::Measured);
    let cost_spn = dynamic_increments(&dag, &inc_spn);

    assert!(
        cost_spn <= cost_static,
        "SPN must not execute more increments: spn={cost_spn} static={cost_static}"
    );
    // On this adversarially-skewed routine it should be strictly better.
    assert!(
        cost_spn < cost_static,
        "SPN should strictly win here: spn={cost_spn} static={cost_static}"
    );

    // And SPP's inverted order (§2) is the worst of the three.
    let num_spp = number_paths(&dag, &cold, NumberingOrder::SppIncreasingFreq);
    let inc_spp = event_counting(&dag, &cold, &num_spp, TreeWeights::Measured);
    let cost_spp = dynamic_increments(&dag, &inc_spp);
    assert!(
        cost_spp >= cost_spn,
        "SPP numbering loads hot paths: spp={cost_spp} spn={cost_spn}"
    );
    let _ = Reg(0);
}
