//! Randomized invariants over generated CFGs.
//!
//! The generator produces arbitrary single-exit functions (random forward
//! jumps/branches/switches plus occasional retreating edges, i.e. loops —
//! possibly irreducible), then checks the invariants the whole profiling
//! stack rests on:
//!
//! 1. path numbering is a bijection `paths ↔ [0, N)`;
//! 2. event counting preserves every path's number;
//! 3. after placement, pushing, and poisoning, every counted path
//!    executes **exactly one** count, at its own number, from any initial
//!    register value;
//! 4. cold executions never land in the hot index range under TPP-style
//!    pushing, and never exceed the declared maximum index under
//!    PPP-style pushing;
//! 5. the checked-poisoning mode keeps cold executions negative.
//!
//! Deterministic seed-loop version of what used to be a property test:
//! every case derives from a SplitMix64 stream seeded with the case
//! index, so failures reproduce exactly.

use ppp_core::dag::{Dag, DagEdgeId};
use ppp_core::events::{event_counting, TreeWeights};
use ppp_core::numbering::{decode_path, number_paths, NumberingOrder};
use ppp_core::plan::{simulate, PlanOp};
use ppp_core::poison::{apply_poisoning, PoisonMode};
use ppp_core::push::{place_and_push, PushConfig};
use ppp_ir::{Block, BlockId, Function, Reg, Terminator};
use ppp_vm::SplitMix64;

/// Compact spec for one generated block's terminator.
#[derive(Clone, Debug)]
enum TermSpec {
    Jump(u8),
    Branch(u8, u8),
    Switch(u8, u8, u8),
    /// Branch with one retreating target (a loop).
    Loop(u8, u8),
}

fn byte(rng: &mut SplitMix64) -> u8 {
    rng.next_u64() as u8
}

/// Draws one terminator spec with the same 4:4:1:2 weighting the old
/// property-test strategy used.
fn term_spec(rng: &mut SplitMix64) -> TermSpec {
    match rng.below(11) {
        0..=3 => TermSpec::Jump(byte(rng)),
        4..=7 => TermSpec::Branch(byte(rng), byte(rng)),
        8 => TermSpec::Switch(byte(rng), byte(rng), byte(rng)),
        _ => TermSpec::Loop(byte(rng), byte(rng)),
    }
}

/// Draws `lo..hi` terminator specs.
fn term_specs(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<TermSpec> {
    let n = lo + rng.below((hi - lo) as i64) as usize;
    (0..n).map(|_| term_spec(rng)).collect()
}

/// Builds a structurally valid single-exit function from the spec: block
/// `i`'s forward targets map into `i+1..=last`, retreating targets into
/// `1..=i` (never the entry), and the last block returns.
fn build_function(specs: &[TermSpec]) -> Function {
    let n = specs.len() + 2; // entry + body blocks + exit
    let mut f = Function::new("gen", 1);
    f.reg_count = 1;
    f.blocks.clear();
    let fwd = |i: usize, pick: u8| -> BlockId {
        let lo = i + 1;
        let hi = n - 1;
        BlockId::new(lo + (pick as usize) % (hi - lo + 1))
    };
    let back = |i: usize, pick: u8| -> BlockId {
        // Retreating target in 1..=i (bodies only; never the entry).
        BlockId::new(1 + (pick as usize) % i.max(1))
    };
    for i in 0..n - 1 {
        let term = if i == 0 {
            // Entry always jumps forward so it keeps zero predecessors.
            Terminator::Jump { target: fwd(0, 0) }
        } else {
            match specs[i - 1].clone() {
                TermSpec::Jump(a) => Terminator::Jump { target: fwd(i, a) },
                TermSpec::Branch(a, b) => Terminator::Branch {
                    cond: Reg(0),
                    then_target: fwd(i, a),
                    else_target: fwd(i, b),
                },
                TermSpec::Switch(a, b, c) => Terminator::Switch {
                    disc: Reg(0),
                    targets: vec![fwd(i, a), fwd(i, b)],
                    default: fwd(i, c),
                },
                TermSpec::Loop(a, b) => Terminator::Branch {
                    cond: Reg(0),
                    then_target: back(i, a),
                    else_target: fwd(i, b),
                },
            }
        };
        f.blocks.push(Block::new(term));
    }
    f.blocks
        .push(Block::new(Terminator::Return { value: None }));
    f
}

/// Enumerates every DAG path (through cold edges too), up to a cap.
fn all_dag_paths(dag: &Dag, cap: usize) -> Vec<Vec<DagEdgeId>> {
    let mut out = Vec::new();
    let mut stack = vec![(dag.entry, Vec::new())];
    while let Some((v, path)) = stack.pop() {
        if out.len() >= cap {
            break;
        }
        if v == dag.exit {
            out.push(path);
            continue;
        }
        for &e in dag.out_edges(v) {
            let mut p = path.clone();
            p.push(e);
            stack.push((dag.edge(e).to, p));
        }
    }
    out
}

const PATH_CAP: usize = 512;
const CASES: u64 = 96;

#[test]
fn numbering_is_a_bijection() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA1_0000 + case);
        let specs = term_specs(&mut rng, 1, 9);
        let f = build_function(&specs);
        let dag = Dag::build(&f, None);
        let cold = vec![false; dag.edge_count()];
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        if num.n_paths > PATH_CAP as u64 {
            continue;
        }
        let mut seen = std::collections::HashSet::new();
        for p in 0..num.n_paths {
            let path = decode_path(&dag, &num, &cold, p).expect("decodable");
            let sum: i64 = path.iter().map(|&e| num.val[e.index()]).sum();
            assert_eq!(sum as u64, p, "case {case}");
            assert!(seen.insert(path), "case {case}: duplicate path for {p}");
        }
    }
}

#[test]
fn event_counting_preserves_numbers() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA2_0000 + case);
        let specs = term_specs(&mut rng, 1, 9);
        let smart = rng.below(2) == 0;
        let freq_seed = rng.next_u64();
        let f = build_function(&specs);
        let mut dag = Dag::build(&f, None);
        // Synthetic frequencies.
        let mut x = freq_seed | 1;
        for i in 0..dag.edge_count() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            dag.set_edge_freq(DagEdgeId(i as u32), x % 1000);
        }
        let cold = vec![false; dag.edge_count()];
        let order = if smart {
            NumberingOrder::SmartDecreasingFreq
        } else {
            NumberingOrder::BallLarus
        };
        let num = number_paths(&dag, &cold, order);
        if num.n_paths > PATH_CAP as u64 {
            continue;
        }
        let weights = if smart {
            TreeWeights::Measured
        } else {
            TreeWeights::Static
        };
        let inc = event_counting(&dag, &cold, &num, weights);
        for p in 0..num.n_paths {
            let path = decode_path(&dag, &num, &cold, p).expect("decodable");
            let sum: i64 = path.iter().map(|&e| inc[e.index()]).sum();
            assert_eq!(sum as u64, p, "case {case}");
        }
    }
}

#[test]
fn full_pipeline_counts_every_path_once() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA3_0000 + case);
        let specs = term_specs(&mut rng, 1, 8);
        let cold_seed = rng.next_u64();
        let ignore_cold = rng.below(2) == 0;
        let r_in = rng.next_u64() as i64;
        let f = build_function(&specs);
        let dag = Dag::build(&f, None);
        // Random cold mask (~20% of edges).
        let mut x = cold_seed | 1;
        let cold: Vec<bool> = (0..dag.edge_count())
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                x.is_multiple_of(5)
            })
            .collect();
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        if num.n_paths == 0 || num.n_paths > PATH_CAP as u64 {
            continue;
        }
        let inc = event_counting(&dag, &cold, &num, TreeWeights::Static);
        let mut ops = place_and_push(
            &dag,
            &cold,
            &inc,
            &num,
            PushConfig {
                ignore_cold,
                merge_set_count: true,
            },
        );
        let outcome = apply_poisoning(&dag, &cold, &mut ops, num.n_paths, PoisonMode::Free);

        // (3) every counted path counts exactly its own number.
        for p in 0..num.n_paths {
            let path = decode_path(&dag, &num, &cold, p).expect("decodable");
            let lists: Vec<&[PlanOp]> = path.iter().map(|&e| ops[e.index()].as_slice()).collect();
            let counted = simulate(&lists, r_in);
            assert_eq!(counted, vec![p as i64], "case {case}: path {p} miscounted");
        }

        // (4) arbitrary executions (including cold ones) stay in bounds.
        // A cold execution may tally the cold region more than once (it
        // meets the poisoned-merge count and then a downstream counting
        // edge — real TPP double-bumps its cold counter the same way),
        // but at most one count may ever land in the hot range, and every
        // index stays inside the declared table.
        for path in all_dag_paths(&dag, PATH_CAP) {
            let crosses_cold = path.iter().any(|e| cold[e.index()]);
            let lists: Vec<&[PlanOp]> = path.iter().map(|&e| ops[e.index()].as_slice()).collect();
            let counted = simulate(&lists, r_in);
            if !crosses_cold {
                assert!(
                    counted.len() <= 1,
                    "case {case}: multiple counts on a counted path"
                );
            }
            let mut hot_counts = 0usize;
            for c in counted {
                assert!(c >= 0, "case {case}");
                assert!(
                    c as u64 <= outcome.max_counter_index,
                    "case {case}: index {c} exceeds table bound {}",
                    outcome.max_counter_index
                );
                if (c as u64) < num.n_paths {
                    hot_counts += 1;
                }
                if crosses_cold && !ignore_cold {
                    // TPP-style pushing never lets cold executions count
                    // hot numbers.
                    assert!(
                        c as u64 >= num.n_paths,
                        "case {case}: cold execution counted hot index {c}"
                    );
                }
                if !crosses_cold {
                    assert!((c as u64) < num.n_paths, "case {case}");
                }
            }
            // PPP's push-past-cold can let one cold execution be adopted
            // by *several* counted-path families in sequence (it crosses
            // one family's pushed init, counts, then crosses another's):
            // each hot count is an overcount the coverage penalty (§6.2)
            // subtracts in aggregate. Only executions that never touch a
            // cold edge — real counted paths — are limited to one count.
            if !(ignore_cold && crosses_cold) {
                assert!(
                    hot_counts <= 1,
                    "case {case}: multiple hot counts on one execution"
                );
            }
        }
    }
}

#[test]
fn checked_poisoning_keeps_cold_negative() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA4_0000 + case);
        let specs = term_specs(&mut rng, 1, 8);
        let cold_seed = rng.next_u64();
        let f = build_function(&specs);
        let dag = Dag::build(&f, None);
        let mut x = cold_seed | 1;
        let cold: Vec<bool> = (0..dag.edge_count())
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(99);
                x.is_multiple_of(4)
            })
            .collect();
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        if num.n_paths == 0 || num.n_paths > PATH_CAP as u64 {
            continue;
        }
        let inc = event_counting(&dag, &cold, &num, TreeWeights::Static);
        let mut ops = place_and_push(
            &dag,
            &cold,
            &inc,
            &num,
            PushConfig {
                ignore_cold: false,
                merge_set_count: false,
            },
        );
        apply_poisoning(&dag, &cold, &mut ops, num.n_paths, PoisonMode::Checked);
        for path in all_dag_paths(&dag, PATH_CAP) {
            let crosses_cold = path.iter().any(|e| cold[e.index()]);
            let lists: Vec<&[PlanOp]> = path.iter().map(|&e| ops[e.index()].as_slice()).collect();
            for c in simulate(&lists, 0) {
                if crosses_cold {
                    assert!(
                        c < 0,
                        "case {case}: checked poison must stay negative, got {c}"
                    );
                } else {
                    assert!((0..num.n_paths as i64).contains(&c), "case {case}");
                }
            }
        }
    }
}

#[test]
fn pushing_never_increases_dynamic_cost() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0xA5_0000 + case);
        let specs = term_specs(&mut rng, 1, 8);
        let f = build_function(&specs);
        let dag = Dag::build(&f, None);
        let cold = vec![false; dag.edge_count()];
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        if num.n_paths == 0 || num.n_paths > PATH_CAP as u64 {
            continue;
        }
        let inc = event_counting(&dag, &cold, &num, TreeWeights::Static);
        let ops = place_and_push(
            &dag,
            &cold,
            &inc,
            &num,
            PushConfig {
                ignore_cold: false,
                merge_set_count: true,
            },
        );
        // Baseline (no pushing): init + per-edge increments + final count
        // = at most 2 + #nonzero-inc-edges ops per path.
        for p in 0..num.n_paths {
            let path = decode_path(&dag, &num, &cold, p).expect("decodable");
            let pushed: usize = path.iter().map(|&e| ops[e.index()].len()).sum();
            let baseline = 2 + path.iter().filter(|&&e| inc[e.index()] != 0).count();
            assert!(
                pushed <= baseline,
                "case {case}: pushing made path {p} cost {pushed} > baseline {baseline}"
            );
        }
    }
}
