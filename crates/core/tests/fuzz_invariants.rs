//! Adversarial invariant fuzzing: every profiler configuration (including
//! mutated thresholds that force tiny hash tables, aggressive cold
//! marking, SAC escalation, and eager loop disconnection) must preserve
//! semantics, produce valid IR, keep array tables lossless, and satisfy
//! the per-path counting invariants on generated workloads.

use ppp_core::dag::{Dag, DagEdgeId};
use ppp_core::instrument::{instrument_module, measured_paths, normalize_module};
use ppp_core::plan::{simulate, PlanOp};
use ppp_core::{ProfilerConfig, ProfilerKind, Technique};
use ppp_ir::{verify_module, Module};
use ppp_vm::{run, RunOptions};
use ppp_workloads::{generate, BenchmarkSpec};

fn all_configs() -> Vec<ProfilerConfig> {
    let mut v = vec![
        ProfilerConfig::pp(),
        ProfilerConfig::tpp(),
        ProfilerConfig::ppp(),
        ProfilerConfig::ppp_baseline(),
    ];
    for t in Technique::ALL {
        v.push(ProfilerConfig::ppp_without(t));
        if let Some(c) = ProfilerConfig::one_at_a_time(t) {
            v.push(c);
        }
    }
    // Mutated thresholds: aggressive cold marking, tiny hash threshold
    // (forces SAC escalation + hash tables), eager loop disconnection.
    let n = v.len();
    for i in 0..n {
        let mut c = v[i];
        c.params.cold_local_ratio = 0.35;
        c.params.cold_global_ratio = 0.02;
        c.params.obvious_loop_trip = 2.0;
        c.params.lc_coverage = 0.999;
        c.params.hash_threshold = 12;
        c.params.hash_slots = 7;
        c.params.hash_probes = 2;
        v.push(c);
        let mut c2 = v[i];
        c2.params.cold_local_ratio = 0.6;
        c2.params.cold_global_ratio = 0.2;
        c2.params.sac_multiplier = 1.05;
        c2.params.obvious_loop_trip = 1.0;
        v.push(c2);
    }
    v
}

/// Enumerate all DAG paths (including through cold edges), capped.
fn all_paths(dag: &Dag, cap: usize) -> Option<Vec<Vec<DagEdgeId>>> {
    let mut out = Vec::new();
    let mut stack = vec![(dag.entry, Vec::new())];
    while let Some((v, path)) = stack.pop() {
        if v == dag.exit {
            out.push(path);
            if out.len() > cap {
                return None;
            }
            continue;
        }
        for &e in dag.out_edges(v) {
            let mut p = path.clone();
            p.push(e);
            stack.push((dag.edge(e).to, p));
        }
    }
    Some(out)
}

fn check_module(spec: &BenchmarkSpec) {
    let m: Module = generate(spec);
    check_prepared(&spec.name, &m);
}

fn check_prepared(name: &str, m: &Module) {
    let spec_name = name;
    let m = m.clone();
    let truth = run(&m, "main", &RunOptions::default().traced()).unwrap();
    assert_eq!(
        truth.halt,
        ppp_vm::HaltReason::Finished,
        "{spec_name}: baseline did not finish"
    );
    let edges = truth.edge_profile.as_ref().unwrap();
    let truth_paths = truth.path_profile.as_ref().unwrap();

    for config in all_configs() {
        let plan = instrument_module(&m, Some(edges), &config);
        let label = config.label();
        assert_eq!(
            verify_module(&plan.module),
            Ok(()),
            "{} {}: IR invalid",
            spec_name,
            label
        );
        // ppp-lint: a fresh plan must lint clean — no soundness or
        // conformance errors, no dataflow warnings (info is advisory).
        let report = ppp_lint::lint_plan(&plan);
        assert!(
            report.is_clean(),
            "{} {}: lint reported problems:\n{}",
            spec_name,
            label,
            report
        );

        let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
        assert_eq!(
            r.halt,
            ppp_vm::HaltReason::Finished,
            "{spec_name} {label}: instrumented run did not finish"
        );
        assert_eq!(
            r.checksum, truth.checksum,
            "{} {}: instrumentation changed semantics",
            spec_name, label
        );

        // No counts may fall off an array table.
        for (ti, decl) in plan.module.tables.iter().enumerate() {
            if !decl.kind.is_hash() {
                let t = r.store.table(ppp_ir::TableId(ti as u32));
                assert_eq!(
                    t.lost(),
                    0,
                    "{} {}: array table {} of func {:?} lost counts",
                    spec_name,
                    label,
                    ti,
                    decl.func
                );
            }
        }

        let push = config.kind == ProfilerKind::Ppp && config.toggles.push_past_cold;

        // Static per-path op-list simulation.
        for fp in &plan.funcs {
            if !fp.instrumented {
                continue;
            }
            let Some(paths) = all_paths(&fp.dag, 4000) else {
                continue;
            };
            let n = fp.n_paths as i64;
            let num = fp.numbering.as_ref().unwrap();
            for path in &paths {
                if path.is_empty() {
                    continue; // single-block routine: counted in block body
                }
                let crosses_cold = path.iter().any(|e| fp.cold[e.index()]);
                let lists: Vec<&[PlanOp]> = path
                    .iter()
                    .map(|&e| fp.edge_ops[e.index()].as_slice())
                    .collect();
                for r_in in [0i64, 987_654_321, -7, i64::MIN / 4 + 3] {
                    let counted = simulate(&lists, r_in);
                    if !crosses_cold {
                        let p: i64 = path.iter().map(|&e| num.val[e.index()]).sum();
                        assert_eq!(
                            counted,
                            vec![p],
                            "{} {} func {:?}: hot path {:?} must count exactly its number {} (r_in={})",
                            spec_name, label, fp.func, path, p, r_in
                        );
                        assert!(
                            (0..n).contains(&p),
                            "{} {} func {:?}: hot number {} out of [0,{})",
                            spec_name,
                            label,
                            fp.func,
                            p,
                            n
                        );
                    } else {
                        for &c in &counted {
                            if (0..n).contains(&c) {
                                assert!(
                                    push,
                                    "{} {} func {:?}: cold path {:?} counted hot index {} without push-past-cold (r_in={})",
                                    spec_name, label, fp.func, path, c, r_in
                                );
                            } else if c < 0 {
                                assert!(
                                    fp.checked,
                                    "{} {} func {:?}: negative index {} in unchecked mode (r_in={})",
                                    spec_name, label, fp.func, c, r_in
                                );
                            }
                        }
                    }
                }
            }
        }

        // Runtime exactness: without push-past-cold, every measured hot
        // path of an array-table function must match ground truth exactly.
        if !push {
            let measured = measured_paths(&plan, &m, &r.store);
            for fp in &plan.funcs {
                if !fp.instrumented || fp.uses_hash {
                    continue;
                }
                // Completeness: every executed cold-free path must have
                // been measured at its exact frequency.
                if let Some(paths) = all_paths(&fp.dag, 4000) {
                    let mf = measured.func(fp.func);
                    let tf = truth_paths.func(fp.func);
                    for path in &paths {
                        if path.is_empty() || path.iter().any(|e| fp.cold[e.index()]) {
                            continue;
                        }
                        let key = fp.dag.path_key(path);
                        let truth_freq = tf.paths.get(&key).map_or(0, |s| s.freq);
                        let meas_freq = mf.paths.get(&key).map_or(0, |s| s.freq);
                        assert_eq!(
                            meas_freq, truth_freq,
                            "{} {} func {:?}: hot path {:?} measured {} != executed {}",
                            spec_name, label, fp.func, key, meas_freq, truth_freq
                        );
                    }
                }
                let mf = measured.func(fp.func);
                let tf = truth_paths.func(fp.func);
                for (key, stats) in &mf.paths {
                    let actual = tf.paths.get(key).unwrap_or_else(|| {
                        panic!(
                            "{} {} func {:?}: measured path {:?} (freq {}) not in ground truth",
                            spec_name, label, fp.func, key, stats.freq
                        )
                    });
                    assert_eq!(
                        stats.freq, actual.freq,
                        "{} {} func {:?}: path {:?} measured {} != actual {}",
                        spec_name, label, fp.func, key, stats.freq, actual.freq
                    );
                }
            }
        }
    }
}

#[test]
fn degenerate_cfgs() {
    use ppp_ir::{BinOp, FuncId, FunctionBuilder};
    let mut m = Module::new();

    // main: loop 300 times, call each weird function with a random arg.
    let n_funcs = 6u32;
    let mut mb = FunctionBuilder::new("main", 0);
    let iters = mb.constant(300);
    let i = mb.copy(iters);
    let (hdr, body, exit) = (mb.new_block(), mb.new_block(), mb.new_block());
    mb.jump(hdr);
    mb.switch_to(hdr);
    mb.branch(i, body, exit);
    mb.switch_to(body);
    let bound = mb.constant(17);
    for f in 1..=n_funcs {
        let a = mb.rand(bound);
        let r = mb.call(FuncId(f), vec![a]);
        mb.emit(r);
    }
    let one = mb.constant(1);
    mb.binary_to(i, BinOp::Sub, i, one);
    mb.jump(hdr);
    mb.switch_to(exit);
    mb.ret(None);
    m.add_function(mb.finish());

    // 1: irreducible: entry -> A | B; A <-> B; both exit when counter dies.
    {
        let mut b = FunctionBuilder::new("irreducible", 1);
        let x = b.param(0);
        let acc = b.copy(x);
        let two = b.constant(2);
        let par = b.binary(BinOp::Rem, x, two);
        let one0 = b.constant(1);
        let c = b.binary(BinOp::Add, x, one0);
        let (aa, bb, xx) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(par, aa, bb);
        b.switch_to(aa);
        let k = b.constant(3);
        b.binary_to(acc, BinOp::Add, acc, k);
        let one = b.constant(1);
        b.binary_to(c, BinOp::Sub, c, one);
        b.branch(c, bb, xx);
        b.switch_to(bb);
        let k2 = b.constant(7);
        b.binary_to(acc, BinOp::Xor, acc, k2);
        let one2 = b.constant(1);
        b.binary_to(c, BinOp::Sub, c, one2);
        b.branch(c, aa, xx);
        b.switch_to(xx);
        b.emit(acc);
        b.ret(Some(acc));
        m.add_function(b.finish());
    }
    // 2: self-loop latch.
    {
        let mut b = FunctionBuilder::new("selfloop", 1);
        let x = b.param(0);
        let one0 = b.constant(1);
        let c = b.binary(BinOp::Add, x, one0);
        let (l, e) = (b.new_block(), b.new_block());
        b.jump(l);
        b.switch_to(l);
        let one = b.constant(1);
        b.binary_to(c, BinOp::Sub, c, one);
        b.branch(c, l, e);
        b.switch_to(e);
        b.emit(c);
        b.ret(Some(c));
        m.add_function(b.finish());
    }
    // 3: parallel edges: branch with both targets equal; switch with
    // duplicate arms and default equal to an arm.
    {
        let mut b = FunctionBuilder::new("parallel", 1);
        let x = b.param(0);
        let (j, k, e) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(x, j, j);
        b.switch_to(j);
        let three = b.constant(3);
        let d = b.binary(BinOp::Rem, x, three);
        b.switch(d, vec![k, k, e], k);
        b.switch_to(k);
        b.emit(x);
        b.jump(e);
        b.switch_to(e);
        b.ret(Some(x));
        m.add_function(b.finish());
    }
    // 4: two parallel back edges from one latch: branch(c, H, H) cannot
    // terminate, so use branch(cond, H, H2) where H2 is the same header via
    // a second block, plus a genuine two-latch loop.
    {
        let mut b = FunctionBuilder::new("multiback", 1);
        let x = b.param(0);
        let c = b.copy(x);
        let (h, body, l1, l2, e) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.jump(h);
        b.switch_to(h);
        b.branch(c, body, e);
        b.switch_to(body);
        let one = b.constant(1);
        b.binary_to(c, BinOp::Sub, c, one);
        let two = b.constant(2);
        let p = b.binary(BinOp::Rem, c, two);
        b.branch(p, l1, l2);
        b.switch_to(l1);
        b.jump(h);
        b.switch_to(l2);
        b.jump(h);
        b.switch_to(e);
        b.emit(c);
        b.ret(Some(c));
        m.add_function(b.finish());
    }
    // 5: unreachable block + branch latch whose both arms are back edges
    // (header and header): terminates via the header test.
    {
        let mut b = FunctionBuilder::new("bothback", 1);
        let x = b.param(0);
        let c = b.copy(x);
        let (h, body, e) = (b.new_block(), b.new_block(), b.new_block());
        let orphan = b.new_block();
        b.jump(h);
        b.switch_to(h);
        b.branch(c, body, e);
        b.switch_to(body);
        let one = b.constant(1);
        b.binary_to(c, BinOp::Sub, c, one);
        let two = b.constant(2);
        let p = b.binary(BinOp::Rem, c, two);
        b.branch(p, h, h); // two parallel back edges
        b.switch_to(orphan);
        b.ret(None);
        b.switch_to(e);
        b.emit(c);
        b.ret(Some(c));
        m.add_function(b.finish());
    }

    // 6: self-recursive with internal branching.
    {
        let mut b = FunctionBuilder::new("recur", 1);
        let x = b.param(0);
        let acc = b.copy(x);
        let (base, step, t, e, j) = (
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
            b.new_block(),
        );
        b.branch(x, step, base);
        b.switch_to(step);
        let two = b.constant(2);
        let p = b.binary(BinOp::Rem, x, two);
        b.branch(p, t, e);
        b.switch_to(t);
        let k = b.constant(5);
        b.binary_to(acc, BinOp::Add, acc, k);
        b.jump(j);
        b.switch_to(e);
        let k = b.constant(9);
        b.binary_to(acc, BinOp::Xor, acc, k);
        b.jump(j);
        b.switch_to(j);
        let one = b.constant(1);
        let xm1 = b.binary(BinOp::Sub, x, one);
        let r = b.call(FuncId(6), vec![xm1]);
        b.binary_to(acc, BinOp::Add, acc, r);
        b.emit(acc);
        b.ret(Some(acc));
        b.switch_to(base);
        let one1 = b.constant(1);
        b.ret(Some(one1));
        m.add_function(b.finish());
    }

    normalize_module(&mut m);
    assert_eq!(verify_module(&m), Ok(()));
    check_prepared("degenerate", &m);
}

#[test]
fn fuzz_many_specs() {
    let mut specs = Vec::new();
    for i in 0..40usize {
        let name = format!("fz{i}");
        let mut s = BenchmarkSpec::named(&name).scaled(0.05);
        s.correlation = [0.0, 0.3, 0.6, 0.9, 1.0][i % 5];
        s.bias = [0.5, 0.8, 0.95, 0.99][i % 4];
        s.avg_trip = [2, 6, 15, 40][(i / 4) % 4];
        s.counted_loop_prob = [0.0, 0.5, 1.0, 0.3][(i / 3) % 4];
        s.max_depth = 2 + (i as u32 % 4);
        s.loop_prob = [0.1, 0.3, 0.45][i % 3];
        s.switch_prob = [0.05, 0.2][i % 2];
        s.scenario_ways = [2, 8, 32][i % 3];
        s.explosive_funcs = i % 3;
        s.explosive_diamonds = 6 + i % 6;
        s.funcs = 3 + i % 5;
        specs.push(s);
    }
    for s in &specs {
        check_module(s);
        eprintln!("spec {} ok", s.name);
    }
}
