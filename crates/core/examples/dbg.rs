use ppp_core::instrument::{instrument_module, normalize_module};
use ppp_core::ProfilerConfig;
use ppp_ir::{verify_module, BinOp, FuncId, FunctionBuilder, Module};
use ppp_vm::{run, HaltReason, RunOptions};

fn main() {
    let mut m = Module::new();
    let mut mb = FunctionBuilder::new("main", 0);
    let n = mb.constant(200);
    let i = mb.copy(n);
    let (hdr, body, exit) = (mb.new_block(), mb.new_block(), mb.new_block());
    mb.jump(hdr);
    mb.switch_to(hdr);
    mb.branch(i, body, exit);
    mb.switch_to(body);
    let b1000 = mb.constant(1000);
    let a = mb.rand(b1000);
    let r = mb.call(FuncId(1), vec![a]);
    mb.emit(r);
    let one = mb.constant(1);
    mb.binary_to(i, BinOp::Sub, i, one);
    mb.jump(hdr);
    mb.switch_to(exit);
    mb.ret(None);
    m.add_function(mb.finish());

    // A rare branch first (cold under the 5% local criterion), then 64
    // diamonds (2^64+ paths downstream saturate NumPaths).
    let mut b = FunctionBuilder::new("explode", 1);
    let x = b.param(0);
    let acc = b.copy(x);
    let cut = b.constant(990);
    let rare = b.binary(BinOp::Lt, cut, x); // ~1% taken
    let (rt, join0) = (b.new_block(), b.new_block());
    b.branch(rare, rt, join0);
    b.switch_to(rt);
    let k = b.constant(777);
    b.binary_to(acc, BinOp::Add, acc, k);
    b.jump(join0);
    b.switch_to(join0);
    for j in 0..66i64 {
        let shift = b.constant(j % 9);
        let sh = b.binary(BinOp::Shr, x, shift);
        let one = b.constant(1);
        let bit = b.binary(BinOp::And, sh, one);
        let (t, e, join) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(bit, t, e);
        b.switch_to(t);
        let k = b.constant(j * 31 + 1);
        b.binary_to(acc, BinOp::Add, acc, k);
        b.jump(join);
        b.switch_to(e);
        let k = b.constant(j * 13 + 5);
        b.binary_to(acc, BinOp::Xor, acc, k);
        b.jump(join);
        b.switch_to(join);
    }
    b.emit(acc);
    b.ret(Some(acc));
    m.add_function(b.finish());

    normalize_module(&mut m);
    assert_eq!(verify_module(&m), Ok(()));
    let truth = run(&m, "main", &RunOptions::default().traced()).unwrap();
    assert_eq!(truth.halt, HaltReason::Finished);
    let edges = truth.edge_profile.as_ref().unwrap();
    for config in [ProfilerConfig::tpp(), ProfilerConfig::ppp()] {
        let plan = instrument_module(&m, Some(edges), &config);
        let fp = &plan.funcs[1];
        println!(
            "{}: n_paths={} cold_edges={} checked={}",
            config.label(),
            fp.n_paths,
            fp.cold.iter().filter(|&&c| c).count(),
            fp.checked
        );
        let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
        println!(
            "  halt={:?} checksum ok={}",
            r.halt,
            r.checksum == truth.checksum
        );
    }
    println!("done");
}
