//! Constructing estimated path profiles (§5).
//!
//! A profiling method's *estimated path profile* is what an optimizer
//! would actually consume:
//!
//! - **edge profiling**: no paths are measured; the whole profile is
//!   reconstructed from the edge profile — potential flow for accuracy
//!   (it predicts hot paths better, §6.1), definite flow for coverage;
//! - **PP/TPP/PPP**: measured counts for the instrumented paths
//!   `P_instr`, decoded back to concrete paths, plus definite-flow
//!   estimates for everything uninstrumented (`P_uninstr`). When a plan
//!   instruments nothing at all, potential flow substitutes so accuracy
//!   matches plain edge profiling (§6.1).

use crate::dag::Dag;
use crate::flow::{definite_flow, potential_flow, reconstruct, FlowKind, FlowMetric};
use crate::instrument::{measured_paths, ModulePlan};
use ppp_ir::{FuncId, Module, ModuleEdgeProfile, PathKey};
use std::collections::HashMap;

/// One estimated path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EstimatedPath {
    /// Estimated execution frequency.
    pub freq: u64,
    /// Branch count (from the path's shape).
    pub branches: u32,
    /// Whether the estimate comes from instrumentation (vs. flow
    /// reconstruction).
    pub measured: bool,
}

impl EstimatedPath {
    /// Estimated flow under `metric`.
    pub fn flow(&self, metric: FlowMetric) -> u64 {
        metric.flow(self.freq, self.branches)
    }
}

/// An estimated path profile for a whole module.
#[derive(Clone, Debug, Default)]
pub struct EstimatedProfile {
    /// Per-function estimates, indexed by [`FuncId`].
    pub funcs: Vec<HashMap<PathKey, EstimatedPath>>,
}

impl EstimatedProfile {
    /// Iterates `(func, key, estimate)` over all paths.
    pub fn iter(&self) -> impl Iterator<Item = (FuncId, &PathKey, EstimatedPath)> {
        self.funcs
            .iter()
            .enumerate()
            .flat_map(|(i, m)| m.iter().map(move |(k, &e)| (FuncId::new(i), k, e)))
    }

    /// Number of estimated paths.
    pub fn len(&self) -> usize {
        self.funcs.iter().map(HashMap::len).sum()
    }

    /// Returns `true` when no paths are estimated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Reconstruction limits.
#[derive(Clone, Copy, Debug)]
pub struct EstimateOptions {
    /// Flow cutoff for potential-flow reconstruction (it can enumerate
    /// exponentially many paths without one); definite flow uses 0.
    pub potential_cutoff: u64,
    /// Per-function cap on reconstructed paths.
    pub max_paths_per_func: usize,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        Self {
            potential_cutoff: 0,
            max_paths_per_func: 50_000,
        }
    }
}

/// Estimates the whole program from the edge profile alone, using the
/// given flow kind (potential for accuracy, definite for coverage).
pub fn edge_profile_estimate(
    module: &Module,
    edges: &ModuleEdgeProfile,
    kind: FlowKind,
    metric: FlowMetric,
    opts: &EstimateOptions,
) -> EstimatedProfile {
    let mut out = EstimatedProfile {
        funcs: vec![HashMap::new(); module.functions.len()],
    };
    for fid in module.func_ids() {
        let f = module.function(fid);
        let dag = Dag::build(f, Some(edges.func(fid)));
        reconstruct_into(&dag, kind, metric, opts, &mut out.funcs[fid.index()]);
    }
    out
}

fn reconstruct_into(
    dag: &Dag,
    kind: FlowKind,
    metric: FlowMetric,
    opts: &EstimateOptions,
    out: &mut HashMap<PathKey, EstimatedPath>,
) {
    let analysis = match kind {
        FlowKind::Definite => definite_flow(dag),
        FlowKind::Potential => potential_flow(dag),
    };
    let cutoff = match kind {
        FlowKind::Definite => 0,
        FlowKind::Potential => opts.potential_cutoff,
    };
    for p in reconstruct(
        dag,
        &analysis,
        kind,
        metric,
        cutoff,
        opts.max_paths_per_func,
    ) {
        let key = dag.path_key(&p.edges);
        out.entry(key).or_insert(EstimatedPath {
            freq: p.freq,
            branches: p.branches,
            measured: false,
        });
    }
}

/// Builds a profiler's estimated path profile (§5): measured paths from
/// the runtime counters, plus flow-reconstructed estimates for
/// uninstrumented paths and routines.
pub fn profiler_estimate(
    original: &Module,
    plan: &ModulePlan,
    edges: &ModuleEdgeProfile,
    store: &ppp_vm::ProfileStore,
    metric: FlowMetric,
    opts: &EstimateOptions,
) -> EstimatedProfile {
    let mut out = EstimatedProfile {
        funcs: vec![HashMap::new(); original.functions.len()],
    };

    // Measured paths first: they take precedence over reconstructions.
    let measured = measured_paths(plan, original, store);
    for (fid, key, stats) in measured.iter() {
        out.funcs[fid.index()].insert(
            key.clone(),
            EstimatedPath {
                freq: stats.freq,
                branches: stats.branches,
                measured: true,
            },
        );
    }

    // Uninstrumented estimation: when nothing at all was instrumented the
    // paper falls back to potential flow (§6.1); otherwise definite flow
    // (§5) fills P_uninstr.
    let kind = if plan.instrumented_count() == 0 {
        FlowKind::Potential
    } else {
        FlowKind::Definite
    };
    for fp in &plan.funcs {
        let fid = fp.func;
        let dag = if fp.dag.entries() > 0 || plan.config.kind == crate::profiler::ProfilerKind::Pp {
            &fp.dag
        } else {
            continue; // never ran: nothing to estimate
        };
        let mut rec: HashMap<PathKey, EstimatedPath> = HashMap::new();
        reconstruct_into(dag, kind, metric, opts, &mut rec);
        let slot = &mut out.funcs[fid.index()];
        for (k, v) in rec {
            slot.entry(k).or_insert(v);
        }
    }
    // Re-attach the edge profile for symmetry of the signature (the DAGs
    // already carry the frequencies).
    let _ = edges;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{instrument_module, normalize_module};
    use crate::profiler::ProfilerConfig;
    use ppp_ir::{BinOp, FunctionBuilder};
    use ppp_vm::{run, RunOptions};

    fn workload() -> Module {
        let mut m = Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let n = mb.constant(300);
        mb.call_void(FuncId(1), vec![n]);
        mb.ret(None);
        m.add_function(mb.finish());

        // A loop whose two branches are driven by one hidden value: the
        // path profile correlates, the edge profile cannot see it.
        let mut fb = FunctionBuilder::new("work", 1);
        let i = fb.param(0);
        let hdr = fb.new_block();
        let body = fb.new_block();
        let l1 = fb.new_block();
        let r1 = fb.new_block();
        let mid = fb.new_block();
        let l2 = fb.new_block();
        let r2 = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.jump(hdr);
        fb.switch_to(hdr);
        fb.branch(i, body, exit);
        fb.switch_to(body);
        let two = fb.constant(2);
        let s = fb.rand(two);
        fb.branch(s, l1, r1);
        fb.switch_to(l1);
        fb.jump(mid);
        fb.switch_to(r1);
        fb.jump(mid);
        fb.switch_to(mid);
        fb.branch(s, l2, r2); // perfectly correlated with the first branch
        fb.switch_to(l2);
        fb.jump(latch);
        fb.switch_to(r2);
        fb.jump(latch);
        fb.switch_to(latch);
        let one = fb.constant(1);
        fb.binary_to(i, BinOp::Sub, i, one);
        fb.jump(hdr);
        fb.switch_to(exit);
        fb.ret(None);
        m.add_function(fb.finish());
        normalize_module(&mut m);
        m
    }

    #[test]
    fn edge_estimate_produces_paths_for_both_kinds() {
        let m = workload();
        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let edges = r.edge_profile.unwrap();
        let opts = EstimateOptions::default();
        let pot = edge_profile_estimate(&m, &edges, FlowKind::Potential, FlowMetric::Branch, &opts);
        let def = edge_profile_estimate(&m, &edges, FlowKind::Definite, FlowMetric::Branch, &opts);
        assert!(!pot.is_empty());
        // Potential flow enumerates at least as many paths as definite.
        assert!(pot.len() >= def.len());
    }

    #[test]
    fn edge_estimate_cannot_distinguish_correlated_paths() {
        // With 50/50 correlated branches, the true hot paths are LL and RR,
        // but potential flow rates all four combinations equally.
        let m = workload();
        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let truth = r.path_profile.unwrap();
        let edges = r.edge_profile.unwrap();
        let est = edge_profile_estimate(
            &m,
            &edges,
            FlowKind::Potential,
            FlowMetric::Branch,
            &EstimateOptions::default(),
        );
        // Ground truth: only 2 of the 4 iteration paths execute.
        // Iteration paths start at the loop header (b1); the function-entry
        // path starts at b0 and is excluded.
        let work = FuncId(1);
        let hdr = ppp_ir::BlockId(1);
        let iteration_paths_truth = truth
            .func(work)
            .paths
            .keys()
            .filter(|k| k.start == hdr && k.edges.len() >= 5)
            .count();
        assert_eq!(iteration_paths_truth, 2, "correlation: only LL and RR run");
        let iteration_paths_est = est.funcs[work.index()]
            .keys()
            .filter(|k| k.start == hdr && k.edges.len() >= 5)
            .count();
        assert!(
            iteration_paths_est >= 4,
            "edge profile sees all four combinations"
        );
    }

    #[test]
    fn profiler_estimate_marks_measured_paths() {
        let m = workload();
        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let edges = r.edge_profile.unwrap();
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
        let ir = run(&plan.module, "main", &RunOptions::default()).unwrap();
        let est = profiler_estimate(
            &m,
            &plan,
            &edges,
            &ir.store,
            FlowMetric::Branch,
            &EstimateOptions::default(),
        );
        assert!(est.iter().any(|(_, _, e)| e.measured));
        // Measured hot iteration paths should dominate the estimate.
        let work = FuncId(1);
        let hot: Vec<_> = est.funcs[work.index()]
            .iter()
            .filter(|(_, e)| e.measured && e.freq > 50)
            .collect();
        assert!(!hot.is_empty(), "hot correlated paths must be measured");
    }
}
