//! Flow metrics and edge-profile flow estimation (§5 and the appendix).
//!
//! *Flow* measures the amount of execution on paths. Prior work used
//! **unit flow** (`F(p) = freq(p)`), which weights a one-branch path the
//! same as a ten-branch path; the paper introduces **branch flow**
//! (`F(p) = freq(p) × branches(p)`) which is invariant under inlining
//! (Fig. 7) and makes a routine's total flow computable directly from its
//! edge profile: it is the sum of branch-edge frequencies.
//!
//! [`definite_flow`] and [`potential_flow`] implement the appendix
//! algorithms (Figs. 14–15): dynamic programs over the DAG computing, per
//! node, a multiset of `(frequency, branch-count) → path-count` values.
//! Definite flow is the execution an edge profile *guarantees* each path;
//! potential flow is the most it *allows*. [`reconstruct`] recovers the
//! concrete hot paths from either (Fig. 16, including the paper's fix).

mod compute;
mod reconstruct;

pub use compute::{definite_flow, edge_map, potential_flow, FlowAnalysis};
pub use reconstruct::{reconstruct, FlowKind, ReconstructedPath};

use std::collections::BTreeMap;

/// How path flow is measured (§5.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowMetric {
    /// `F(p) = freq(p)`: all paths weigh the same (prior work).
    Unit,
    /// `F(p) = freq(p) × branches(p)`: the paper's metric.
    Branch,
}

impl FlowMetric {
    /// Flow of a path with the given frequency and branch count.
    pub fn flow(self, freq: u64, branches: u32) -> u64 {
        match self {
            FlowMetric::Unit => freq,
            FlowMetric::Branch => freq.saturating_mul(u64::from(branches)),
        }
    }
}

/// A multiset of flow values: `(frequency, branches) → number of paths`.
///
/// This is the `[(f, b) ↦ Δ]` structure of the appendix; [`FlowMap::join`]
/// is the `⊎` operator.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FlowMap {
    entries: BTreeMap<(u64, u32), u64>,
}

impl FlowMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a map with one entry.
    pub fn singleton(freq: u64, branches: u32, count: u64) -> Self {
        let mut m = Self::new();
        m.add(freq, branches, count);
        m
    }

    /// Adds `count` paths with the given signature (`⊎` with a singleton).
    pub fn add(&mut self, freq: u64, branches: u32, count: u64) {
        if count == 0 {
            return;
        }
        *self.entries.entry((freq, branches)).or_insert(0) += count;
    }

    /// Merges another map into this one (the `⊎` operator).
    pub fn join(&mut self, other: &FlowMap) {
        for (&(f, b), &d) in &other.entries {
            self.add(f, b, d);
        }
    }

    /// Looks up the path count for a signature.
    pub fn get(&self, freq: u64, branches: u32) -> u64 {
        self.entries.get(&(freq, branches)).copied().unwrap_or(0)
    }

    /// Iterates `(freq, branches, count)` in ascending signature order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u32, u64)> + '_ {
        self.entries.iter().map(|(&(f, b), &d)| (f, b, d))
    }

    /// Total flow under `metric`: `Σ Δ · F(f, b)`.
    pub fn total_flow(&self, metric: FlowMetric) -> u64 {
        self.iter()
            .map(|(f, b, d)| metric.flow(f, b).saturating_mul(d))
            .sum()
    }

    /// Total number of paths recorded (`Σ Δ`).
    pub fn total_paths(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Returns `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl FromIterator<(u64, u32, u64)> for FlowMap {
    fn from_iter<I: IntoIterator<Item = (u64, u32, u64)>>(iter: I) -> Self {
        let mut m = FlowMap::new();
        for (f, b, d) in iter {
            m.add(f, b, d);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_flow_values() {
        assert_eq!(FlowMetric::Unit.flow(10, 3), 10);
        assert_eq!(FlowMetric::Branch.flow(10, 3), 30);
        assert_eq!(FlowMetric::Branch.flow(10, 0), 0);
    }

    #[test]
    fn map_add_and_join() {
        let mut a = FlowMap::singleton(5, 2, 1);
        a.add(5, 2, 2);
        let b = FlowMap::singleton(7, 1, 4);
        a.join(&b);
        assert_eq!(a.get(5, 2), 3);
        assert_eq!(a.get(7, 1), 4);
        assert_eq!(a.get(9, 9), 0);
        assert_eq!(a.total_paths(), 7);
        assert_eq!(a.total_flow(FlowMetric::Branch), 5 * 2 * 3 + 7 * 4);
        assert_eq!(a.total_flow(FlowMetric::Unit), 5 * 3 + 7 * 4);
    }

    #[test]
    fn zero_counts_ignored() {
        let mut a = FlowMap::new();
        a.add(1, 1, 0);
        assert!(a.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let m: FlowMap = [(1, 1, 1), (2, 2, 2), (1, 1, 1)].into_iter().collect();
        assert_eq!(m.get(1, 1), 2);
        assert_eq!(m.get(2, 2), 2);
    }
}
