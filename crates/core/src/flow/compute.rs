//! Definite and potential flow (appendix Figs. 14–15).
//!
//! Both are reverse-topological dynamic programs over the profiling DAG.
//! For each node `v`, `M[v]` is the multiset of per-path values `(f, b)`:
//!
//! - **definite** (Fig. 14): `f` is the execution frequency the edge
//!   profile *guarantees* the path — crossing edge `e` can "leak" at most
//!   `f_s = freq(tgt(e)) − freq(e)` executions to sibling edges, so the
//!   guarantee shrinks by `f_s` per merge;
//! - **potential** (Fig. 15): `f` is the most execution the profile
//!   *allows* the path — capped by `min(f, freq(e))` at every edge.
//!
//! `b` counts branch edges (for the branch-flow metric) and increments
//! whenever the traversed edge is a branch.

use crate::dag::{Dag, DagEdgeId};
use crate::flow::FlowMap;

/// Result of a definite- or potential-flow computation.
#[derive(Clone, Debug)]
pub struct FlowAnalysis {
    /// `M[v]` per block index.
    node: Vec<FlowMap>,
    /// Whether this is definite (vs. potential) flow.
    pub definite: bool,
}

impl FlowAnalysis {
    /// The flow map at `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    pub fn at(&self, b: ppp_ir::BlockId) -> &FlowMap {
        &self.node[b.index()]
    }

    /// The routine-level flow map (`M[ENTRY]`).
    pub fn entry_map<'a>(&'a self, dag: &Dag) -> &'a FlowMap {
        self.at(dag.entry)
    }
}

fn run(dag: &Dag, definite: bool) -> FlowAnalysis {
    let n_blocks = dag
        .topo()
        .iter()
        .map(|b| b.index() + 1)
        .max()
        .unwrap_or(0)
        .max(dag.exit.index().max(dag.entry.index()) + 1);
    let mut node: Vec<FlowMap> = vec![FlowMap::new(); n_blocks];
    let total = dag.total_path_freq();
    node[dag.exit.index()] = FlowMap::singleton(total, 0, 1);

    for &v in dag.topo().iter().rev() {
        if v == dag.exit {
            continue;
        }
        let mut mv = FlowMap::new();
        for &eid in dag.out_edges(v) {
            let e = dag.edge(eid);
            let tgt_map = &node[e.to.index()];
            let shift = u32::from(e.is_branch);
            if definite {
                // f_s: flow that may bypass e into its siblings at tgt.
                let f_s = dag.node_freq(e.to).saturating_sub(e.freq);
                for (f, b, d) in tgt_map.iter() {
                    if f > f_s {
                        mv.add(f - f_s, b + shift, d);
                    }
                }
            } else {
                for (f, b, d) in tgt_map.iter() {
                    mv.add(f.min(e.freq), b + shift, d);
                }
            }
        }
        node[v.index()] = mv;
    }
    FlowAnalysis { node, definite }
}

/// Computes definite flow (Fig. 14).
pub fn definite_flow(dag: &Dag) -> FlowAnalysis {
    run(dag, true)
}

/// Computes potential flow (Fig. 15).
pub fn potential_flow(dag: &Dag) -> FlowAnalysis {
    run(dag, false)
}

/// Edge-level map `M[e]`, derived on demand (the reconstruction walks
/// node maps directly, but tests and the paper's presentation use these).
pub fn edge_map(dag: &Dag, analysis: &FlowAnalysis, eid: DagEdgeId) -> FlowMap {
    let e = dag.edge(eid);
    let tgt = analysis.at(e.to);
    let mut out = FlowMap::new();
    if analysis.definite {
        let f_s = dag.node_freq(e.to).saturating_sub(e.freq);
        for (f, b, d) in tgt.iter() {
            if f > f_s {
                out.add(f - f_s, b, d);
            }
        }
    } else {
        for (f, b, d) in tgt.iter() {
            out.add(f.min(e.freq), b, d);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowMetric;
    use ppp_ir::{BlockId, EdgeRef, FuncEdgeProfile, Function, FunctionBuilder, Reg};

    /// The Figure 8 routine: A -> B(50) | C(30); B, C -> D; D -> E(60) |
    /// F(20); E, F -> G(exit). Paths ABDEG, ACDEG, ABDFG, ACDFG.
    /// (Block ids: entry=0 jumps to A=1, B=2, C=3, D=4, E=5, F=6, G=7.)
    fn figure8() -> (Function, FuncEdgeProfile) {
        let mut b = FunctionBuilder::new("fig8", 1);
        let a = b.new_block();
        let bb = b.new_block();
        let cc = b.new_block();
        let dd = b.new_block();
        let ee = b.new_block();
        let ff = b.new_block();
        let gg = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), bb, cc);
        b.switch_to(bb);
        b.jump(dd);
        b.switch_to(cc);
        b.jump(dd);
        b.switch_to(dd);
        b.branch(Reg(0), ee, ff);
        b.switch_to(ee);
        b.jump(gg);
        b.switch_to(ff);
        b.jump(gg);
        b.switch_to(gg);
        b.ret(None);
        let f = b.finish();
        let mut p = FuncEdgeProfile::zeroed(&f);
        p.set_entries(80);
        let e = |from: u32, s: usize| EdgeRef::new(BlockId(from), s);
        p.set_edge(e(0, 0), 80);
        p.set_edge(e(1, 0), 50); // A -> B
        p.set_edge(e(1, 1), 30); // A -> C
        p.set_edge(e(2, 0), 50);
        p.set_edge(e(3, 0), 30);
        p.set_edge(e(4, 0), 60); // D -> E
        p.set_edge(e(4, 1), 20); // D -> F
        p.set_edge(e(5, 0), 60);
        p.set_edge(e(6, 0), 20);
        (f, p)
    }

    #[test]
    fn figure8_definite_flow_matches_paper() {
        let (f, p) = figure8();
        let dag = crate::dag::Dag::build(&f, Some(&p));
        // Total actual branch flow: 50 + 30 + 60 + 20 = 160 (§5.2).
        assert_eq!(dag.total_branch_flow(), 160);
        let df = definite_flow(&dag);
        let entry = df.entry_map(&dag);
        // Paper: definite flows are 60 (ABDEG), 20 (ACDEG), 0, 0 in
        // branch-flow terms; in (f, b) form that is (30, 2) and (10, 2).
        assert_eq!(entry.get(30, 2), 1);
        assert_eq!(entry.get(10, 2), 1);
        assert_eq!(entry.total_flow(FlowMetric::Branch), 80);
        // Coverage of the edge profile: 80 / 160 = 50% (§6.2).
        let coverage = entry.total_flow(FlowMetric::Branch) as f64 / dag.total_branch_flow() as f64;
        assert!((coverage - 0.5).abs() < 1e-12);
    }

    #[test]
    fn figure8_potential_flow_caps_by_edges() {
        let (f, p) = figure8();
        let dag = crate::dag::Dag::build(&f, Some(&p));
        let pf = potential_flow(&dag);
        let entry = pf.entry_map(&dag);
        // Potential flows: ABDEG min(50,60)=50, ACDEG min(30,60)=30,
        // ABDFG min(50,20)=20, ACDFG min(30,20)=20; all with 2 branches.
        assert_eq!(entry.get(50, 2), 1);
        assert_eq!(entry.get(30, 2), 1);
        assert_eq!(entry.get(20, 2), 2);
        assert_eq!(entry.total_paths(), 4);
        // Potential flow over-promises: total exceeds actual flow.
        assert!(entry.total_flow(FlowMetric::Branch) >= 160);
    }

    #[test]
    fn straight_line_routine_is_fully_definite() {
        let mut b = FunctionBuilder::new("straight", 0);
        let x = b.new_block();
        b.jump(x);
        b.switch_to(x);
        b.ret(None);
        let f = b.finish();
        let mut p = FuncEdgeProfile::zeroed(&f);
        p.set_entries(42);
        p.set_edge(EdgeRef::new(BlockId(0), 0), 42);
        let dag = crate::dag::Dag::build(&f, Some(&p));
        let df = definite_flow(&dag);
        let entry = df.entry_map(&dag);
        assert_eq!(entry.get(42, 0), 1);
        // No branches: zero branch flow, but full unit flow.
        assert_eq!(entry.total_flow(FlowMetric::Branch), 0);
        assert_eq!(entry.total_flow(FlowMetric::Unit), 42);
    }

    #[test]
    fn fully_biased_branch_is_fully_definite() {
        let (f, mut p) = figure8();
        // Make the profile deterministic: A always -> B, D always -> E.
        let e = |from: u32, s: usize| EdgeRef::new(BlockId(from), s);
        p.set_edge(e(1, 0), 80);
        p.set_edge(e(1, 1), 0);
        p.set_edge(e(2, 0), 80);
        p.set_edge(e(3, 0), 0);
        p.set_edge(e(4, 0), 80);
        p.set_edge(e(4, 1), 0);
        p.set_edge(e(5, 0), 80);
        p.set_edge(e(6, 0), 0);
        let dag = crate::dag::Dag::build(&f, Some(&p));
        let df = definite_flow(&dag);
        let entry = df.entry_map(&dag);
        assert_eq!(entry.get(80, 2), 1);
        assert_eq!(
            entry.total_flow(FlowMetric::Branch),
            dag.total_branch_flow()
        );
    }

    #[test]
    fn edge_maps_match_paper_intermediates() {
        let (f, p) = figure8();
        let dag = crate::dag::Dag::build(&f, Some(&p));
        let df = definite_flow(&dag);
        // M_D[A->B] = {(30, 1)}: D's (60,1) survives the merge at B... via
        // B: f_s = freq(B) - freq(A->B) = 0, so M[A->B] = M[B] = {(30,1)}.
        let ab = dag
            .real_edge(EdgeRef::new(BlockId(1), 0))
            .expect("A->B exists");
        let m = edge_map(&dag, &df, ab);
        assert_eq!(m.get(30, 1), 1);
        assert_eq!(m.total_paths(), 1);
    }
}
