//! Hot-path selection from definite/potential flow profiles (Fig. 16).
//!
//! Given the node-level flow multisets, this walks the DAG from `ENTRY`
//! re-deriving which concrete edges can carry each `(f, b)` signature,
//! debiting multiplicities as paths are enumerated — the appendix
//! algorithm, including the `used`-set fix the authors confirmed with
//! Ball. The potential-flow variant applies the two changes described in
//! the appendix: the child frequency is taken from the child map (not
//! `f + f_s`), and the match condition relaxes to `g ≥ f` when the edge
//! frequency caps the flow.

use crate::dag::{Dag, DagEdgeId};
use crate::flow::{FlowAnalysis, FlowMetric};

/// Which flow profile paths are reconstructed from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FlowKind {
    /// Definite flow (guaranteed execution).
    Definite,
    /// Potential flow (allowed execution).
    Potential,
}

/// One reconstructed path with its estimated flow.
#[derive(Clone, Debug)]
pub struct ReconstructedPath {
    /// DAG edges from `ENTRY` to `EXIT`.
    pub edges: Vec<DagEdgeId>,
    /// Estimated path frequency (`f'` in Fig. 16).
    pub freq: u64,
    /// Branch count of the path.
    pub branches: u32,
}

impl ReconstructedPath {
    /// Estimated flow under `metric`.
    pub fn flow(&self, metric: FlowMetric) -> u64 {
        metric.flow(self.freq, self.branches)
    }
}

/// Reconstructs paths whose estimated flow exceeds `cutoff` under
/// `metric`, up to `max_paths` results (a safety valve; the paper had no
/// cap, and ran out of memory on gcc for it).
pub fn reconstruct(
    dag: &Dag,
    analysis: &FlowAnalysis,
    kind: FlowKind,
    metric: FlowMetric,
    cutoff: u64,
    max_paths: usize,
) -> Vec<ReconstructedPath> {
    debug_assert_eq!(
        analysis.definite,
        kind == FlowKind::Definite,
        "analysis kind must match reconstruction kind"
    );
    let mut rec = Reconstructor {
        dag,
        analysis,
        kind,
        out: Vec::new(),
        max_paths,
    };
    // Entry signatures above the cutoff, hottest first.
    let mut seeds: Vec<(u64, u32, u64)> = analysis
        .entry_map(dag)
        .iter()
        .filter(|&(f, b, _)| metric.flow(f, b) > cutoff)
        .collect();
    seeds.sort_by_key(|&(f, b, _)| std::cmp::Reverse(metric.flow(f, b)));
    for (f, b, delta) in seeds {
        if rec.out.len() >= rec.max_paths {
            break;
        }
        rec.enumerate(dag.entry, &mut Vec::new(), f, b, f, delta);
    }
    rec.out
}

struct Reconstructor<'a> {
    dag: &'a Dag,
    analysis: &'a FlowAnalysis,
    kind: FlowKind,
    out: Vec<ReconstructedPath>,
    max_paths: usize,
}

impl Reconstructor<'_> {
    /// Fig. 16's `enumerate`, iterative over candidates at each node.
    fn enumerate(
        &mut self,
        v: ppp_ir::BlockId,
        prefix: &mut Vec<DagEdgeId>,
        f: u64,
        b: u32,
        f_orig: u64,
        delta: u64,
    ) {
        if self.out.len() >= self.max_paths {
            return;
        }
        if v == self.dag.exit {
            let branches = prefix
                .iter()
                .filter(|&&e| self.dag.edge(e).is_branch)
                .count() as u32;
            self.out.push(ReconstructedPath {
                edges: prefix.clone(),
                freq: f_orig,
                branches,
            });
            return;
        }
        let mut remaining = delta;
        // Candidate continuations: edge e and a child signature (f_t, c)
        // in M[tgt(e)] whose edge-level image matches (f, b).
        for &eid in self.dag.out_edges(v) {
            if remaining == 0 {
                break;
            }
            let e = self.dag.edge(eid);
            let c = b.checked_sub(u32::from(e.is_branch));
            let Some(c) = c else { continue };
            // `analysis` is a shared reference field: copying it out keeps
            // the borrow independent of `&mut self` below.
            let analysis = self.analysis;
            let tgt_map = analysis.at(e.to);
            match self.kind {
                FlowKind::Definite => {
                    // Fig. 16: child frequency is f + f_s.
                    let f_s = self.dag.node_freq(e.to).saturating_sub(e.freq);
                    let f_t = f + f_s;
                    let avail = tgt_map.get(f_t, c);
                    if avail == 0 {
                        continue;
                    }
                    let debit = remaining.min(avail);
                    prefix.push(eid);
                    self.enumerate(e.to, prefix, f_t, c, f_orig, debit);
                    prefix.pop();
                    remaining -= debit;
                }
                FlowKind::Potential => {
                    // Appendix changes: child entries (f_t, c) with
                    // min(f_t, freq(e)) == f; when f == freq(e) that is
                    // every f_t >= f.
                    let candidates: Vec<(u64, u64)> = tgt_map
                        .iter()
                        .filter(|&(f_t, cc, _)| cc == c && f_t.min(e.freq) == f)
                        .map(|(f_t, _, d)| (f_t, d))
                        .collect();
                    for (f_t, avail) in candidates {
                        if remaining == 0 {
                            break;
                        }
                        let debit = remaining.min(avail);
                        prefix.push(eid);
                        self.enumerate(e.to, prefix, f_t, c, f_orig, debit);
                        prefix.pop();
                        remaining -= debit;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::flow::{definite_flow, potential_flow};
    use ppp_ir::{BlockId, EdgeRef, FuncEdgeProfile, Function, FunctionBuilder, Reg};

    fn figure8() -> (Function, FuncEdgeProfile) {
        let mut b = FunctionBuilder::new("fig8", 1);
        let a = b.new_block();
        let bb = b.new_block();
        let cc = b.new_block();
        let dd = b.new_block();
        let ee = b.new_block();
        let ff = b.new_block();
        let gg = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), bb, cc);
        b.switch_to(bb);
        b.jump(dd);
        b.switch_to(cc);
        b.jump(dd);
        b.switch_to(dd);
        b.branch(Reg(0), ee, ff);
        b.switch_to(ee);
        b.jump(gg);
        b.switch_to(ff);
        b.jump(gg);
        b.switch_to(gg);
        b.ret(None);
        let f = b.finish();
        let mut p = FuncEdgeProfile::zeroed(&f);
        p.set_entries(80);
        let e = |from: u32, s: usize| EdgeRef::new(BlockId(from), s);
        p.set_edge(e(0, 0), 80);
        p.set_edge(e(1, 0), 50);
        p.set_edge(e(1, 1), 30);
        p.set_edge(e(2, 0), 50);
        p.set_edge(e(3, 0), 30);
        p.set_edge(e(4, 0), 60);
        p.set_edge(e(4, 1), 20);
        p.set_edge(e(5, 0), 60);
        p.set_edge(e(6, 0), 20);
        (f, p)
    }

    fn blocks_of(dag: &Dag, path: &ReconstructedPath) -> Vec<u32> {
        let mut v = vec![dag.entry.0];
        for &e in &path.edges {
            v.push(dag.edge(e).to.0);
        }
        v
    }

    #[test]
    fn definite_reconstruction_finds_the_guaranteed_paths() {
        let (f, p) = figure8();
        let dag = Dag::build(&f, Some(&p));
        let df = definite_flow(&dag);
        let paths = reconstruct(&dag, &df, FlowKind::Definite, FlowMetric::Branch, 0, 100);
        assert_eq!(paths.len(), 2);
        // Hottest first: ABDEG with definite freq 30 (flow 60).
        assert_eq!(paths[0].freq, 30);
        assert_eq!(paths[0].branches, 2);
        assert_eq!(blocks_of(&dag, &paths[0]), vec![0, 1, 2, 4, 5, 7]);
        // Then ACDEG with definite freq 10 (flow 20).
        assert_eq!(paths[1].freq, 10);
        assert_eq!(blocks_of(&dag, &paths[1]), vec![0, 1, 3, 4, 5, 7]);
    }

    #[test]
    fn potential_reconstruction_finds_all_four_paths() {
        let (f, p) = figure8();
        let dag = Dag::build(&f, Some(&p));
        let pf = potential_flow(&dag);
        let mut paths = reconstruct(&dag, &pf, FlowKind::Potential, FlowMetric::Branch, 0, 100);
        assert_eq!(paths.len(), 4);
        paths.sort_by_key(|p| std::cmp::Reverse(p.freq));
        // ABDEG: min(50,60) = 50; ACDEG: 30; ABDFG & ACDFG: 20.
        assert_eq!(paths[0].freq, 50);
        assert_eq!(blocks_of(&dag, &paths[0]), vec![0, 1, 2, 4, 5, 7]);
        assert_eq!(paths[1].freq, 30);
        assert_eq!(paths[2].freq, 20);
        assert_eq!(paths[3].freq, 20);
    }

    #[test]
    fn cutoff_filters_cold_paths() {
        let (f, p) = figure8();
        let dag = Dag::build(&f, Some(&p));
        let df = definite_flow(&dag);
        // Cutoff 30 branch flow keeps only ABDEG (flow 60).
        let paths = reconstruct(&dag, &df, FlowKind::Definite, FlowMetric::Branch, 30, 100);
        assert_eq!(paths.len(), 1);
        assert_eq!(paths[0].freq, 30);
    }

    #[test]
    fn max_paths_caps_enumeration() {
        let (f, p) = figure8();
        let dag = Dag::build(&f, Some(&p));
        let pf = potential_flow(&dag);
        let paths = reconstruct(&dag, &pf, FlowKind::Potential, FlowMetric::Branch, 0, 2);
        assert_eq!(paths.len(), 2);
    }

    #[test]
    fn reconstructed_edges_map_to_path_keys() {
        let (f, p) = figure8();
        let dag = Dag::build(&f, Some(&p));
        let df = definite_flow(&dag);
        let paths = reconstruct(&dag, &df, FlowKind::Definite, FlowMetric::Branch, 0, 100);
        let key = dag.path_key(&paths[0].edges);
        assert_eq!(key.start, BlockId(0));
        assert_eq!(key.branch_count(&f), 2);
        assert_eq!(key.edges.len(), 5);
    }

    /// On a routine with a loop, signatures flow through the dummy edges
    /// like any others.
    #[test]
    fn reconstruction_handles_loops() {
        let mut b = FunctionBuilder::new("loopy", 1);
        let hdr = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(Reg(0), body, exit);
        b.switch_to(body);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let mut p = FuncEdgeProfile::zeroed(&f);
        p.set_entries(10);
        p.set_edge(EdgeRef::new(BlockId(0), 0), 10);
        p.set_edge(EdgeRef::new(BlockId(1), 0), 990); // hdr -> body
        p.set_edge(EdgeRef::new(BlockId(1), 1), 10); // hdr -> exit
        p.set_edge(EdgeRef::new(BlockId(2), 0), 990); // back edge
        let dag = Dag::build(&f, Some(&p));
        let df = definite_flow(&dag);
        let paths = reconstruct(&dag, &df, FlowKind::Definite, FlowMetric::Branch, 0, 100);
        // The dominant iteration path hdr -> body -> (back) is guaranteed
        // at least 980 executions: of 1000 paths, at most 10+10 avoid it.
        let iter_path = paths
            .iter()
            .find(|p| blocks_of(&dag, p) == vec![0, 1, 2, 3])
            .expect("iteration path reconstructed");
        assert!(iter_path.freq >= 980, "freq = {}", iter_path.freq);
    }
}
