//! Code-sampling path profiling (§2's comparison class).
//!
//! Frameworks like Arnold–Ryder's duplicate the code: a cheap *checking*
//! version runs most of the time, and a counter diverts execution into the
//! *instrumented* version once every `rate` arrivals, so profiling cost is
//! paid only on sampled activations. The paper's point (§2): sampling
//! lowers overhead *at the cost of extending the time it takes to collect
//! a given number of samples*, while PPP lowers the cost of the
//! instrumentation itself — the approaches are orthogonal, and PPP's
//! overhead is comparable to sampling frameworks alone.
//!
//! [`sampled_module`] builds, from any instrumentation plan, a module in
//! which every instrumented function carries both versions and a
//! per-function invocation counter (kept in a reserved region of the VM's
//! global memory) that diverts every `rate`-th call into the instrumented
//! copy.

use crate::instrument::ModulePlan;
use ppp_ir::{BinOp, Block, BlockId, Function, Inst, Module, Terminator};

/// Base address of the reserved sample-counter region in VM memory (one
/// cell per function). Generated workloads mask their data addresses well
/// below this; document the reservation when combining with other code.
pub const SAMPLE_COUNTER_BASE: i64 = 0xF000;

/// Functions with fewer static instrumentation instructions than this are
/// left always-instrumented: the dispatch check would cost more per
/// invocation than the instrumentation it skips (sampling frameworks
/// duplicate code selectively for the same reason).
pub const MIN_PROF_INSTS_TO_SAMPLE: usize = 8;

/// Builds the sampled variant: every `rate`-th invocation of an
/// instrumented function runs its instrumented copy; the rest run the
/// original (checking) copy. `rate = 1` behaves like the plan itself
/// (plus the check).
///
/// # Panics
///
/// Panics if `rate` is zero.
pub fn sampled_module(plan: &ModulePlan, original: &Module, rate: i64) -> Module {
    assert!(rate >= 1, "sampling rate must be at least 1");
    let mut out = plan.module.clone(); // keeps table declarations
    for fp in &plan.funcs {
        if !fp.instrumented {
            continue;
        }
        let instrumented = plan.module.function(fp.func);
        if instrumented.prof_inst_count() < MIN_PROF_INSTS_TO_SAMPLE {
            continue; // cheaper to keep always-on than to dispatch
        }
        let checking = original.function(fp.func);
        let combined = combine_versions(checking, instrumented, fp.func.index(), rate);
        *out.function_mut(fp.func) = combined;
    }
    out
}

/// Lays out: dispatcher entry block, then the checking copy, then the
/// instrumented copy.
fn combine_versions(
    checking: &Function,
    instrumented: &Function,
    func_index: usize,
    rate: i64,
) -> Function {
    let mut f = Function::new(checking.name.clone(), checking.param_count);
    f.reg_count = checking.reg_count.max(instrumented.reg_count);
    f.blocks.clear();

    let check_base = 1u32; // block 0 is the dispatcher
    let instr_base = check_base + checking.blocks.len() as u32;

    // Dispatcher: cnt = mem[BASE+idx] - 1; if cnt <= 0 { mem[..] = rate;
    // goto instrumented } else { mem[..] = cnt; goto checking }.
    let addr = f.new_reg();
    let cnt = f.new_reg();
    let one = f.new_reg();
    let dec = f.new_reg();
    let zero = f.new_reg();
    let cond = f.new_reg();
    let reset = f.new_reg();
    let mut dispatcher = Block::new(Terminator::Return { value: None });
    dispatcher.insts.extend([
        Inst::Const {
            dst: addr,
            value: SAMPLE_COUNTER_BASE + func_index as i64,
        },
        Inst::Load { dst: cnt, addr },
        Inst::Const { dst: one, value: 1 },
        Inst::Binary {
            dst: dec,
            op: BinOp::Sub,
            lhs: cnt,
            rhs: one,
        },
        Inst::Const {
            dst: zero,
            value: 0,
        },
        Inst::Binary {
            dst: cond,
            op: BinOp::Le,
            lhs: dec,
            rhs: zero,
        },
        // Optimistically store the reset value; the checking arm
        // overwrites it with the decremented counter.
        Inst::Const {
            dst: reset,
            value: rate,
        },
    ]);
    // Two tiny arms set the counter then jump into the right copy.
    let take_sample = instr_base + instrumented.blocks.len() as u32; // appended later
    let skip_sample = take_sample + 1;
    dispatcher.term = Terminator::Branch {
        cond,
        then_target: BlockId(take_sample),
        else_target: BlockId(skip_sample),
    };
    f.blocks.push(dispatcher);

    let offset_copy = |f: &mut Function, src: &Function, base: u32| {
        for b in &src.blocks {
            let mut b = b.clone();
            let n = b.term.successor_count();
            for s in 0..n {
                let t = b.term.successor(s).expect("in-range");
                b.term.set_successor(s, BlockId(t.0 + base));
            }
            f.blocks.push(b);
        }
    };
    offset_copy(&mut f, checking, check_base);
    offset_copy(&mut f, instrumented, instr_base);

    // Arm blocks (placed after both copies, ids computed above).
    let mut take = Block::new(Terminator::Jump {
        target: BlockId(instr_base + instrumented.entry.0),
    });
    take.insts.push(Inst::Store { addr, src: reset });
    f.blocks.push(take);
    let mut skip = Block::new(Terminator::Jump {
        target: BlockId(check_base + checking.entry.0),
    });
    skip.insts.push(Inst::Store { addr, src: dec });
    f.blocks.push(skip);

    f.entry = BlockId(0);
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{instrument_module, measured_paths, normalize_module};
    use crate::profiler::ProfilerConfig;
    use ppp_ir::verify_module;
    use ppp_vm::{run, RunOptions};
    use ppp_workloads::{generate, BenchmarkSpec};

    fn setup() -> (Module, ppp_ir::ModuleEdgeProfile, u64, u64) {
        let mut m = generate(&BenchmarkSpec::named("sampling-test").scaled(0.1));
        normalize_module(&mut m);
        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        (m, r.edge_profile.unwrap(), r.checksum, r.cost)
    }

    #[test]
    fn sampled_module_verifies_and_preserves_semantics() {
        let (m, edges, checksum, _) = setup();
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
        for rate in [1, 7, 50] {
            let sampled = sampled_module(&plan, &m, rate);
            assert_eq!(verify_module(&sampled), Ok(()), "rate {rate}");
            let r = run(&sampled, "main", &RunOptions::default()).unwrap();
            assert_eq!(r.checksum, checksum, "rate {rate} changed semantics");
        }
    }

    #[test]
    fn higher_rates_cost_less_and_collect_fewer_samples() {
        let (m, edges, _, baseline) = setup();
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
        let full = run(&plan.module, "main", &RunOptions::default()).unwrap();

        let mut last_cost = u64::MAX;
        let mut last_samples = u64::MAX;
        for rate in [2, 10, 50] {
            let sampled = sampled_module(&plan, &m, rate);
            let r = run(&sampled, "main", &RunOptions::default()).unwrap();
            let samples = measured_paths(&plan, &m, &r.store).total_unit_flow();
            // At low rates the dispatch check can cost more than it saves
            // (the framework's fixed price); by rate 10 sampling must win.
            if rate >= 10 {
                assert!(
                    r.cost < full.cost,
                    "sampling must beat always-on at rate {rate}"
                );
            }
            assert!(r.cost >= baseline, "instrumentation cannot be free");
            assert!(
                r.cost <= last_cost && samples <= last_samples,
                "rate {rate}: cost/samples must fall monotonically"
            );
            assert!(samples > 0, "some samples must be collected at rate {rate}");
            last_cost = r.cost;
            last_samples = samples;
        }
    }

    #[test]
    fn rate_one_still_counts_every_invocation() {
        let (m, edges, _, _) = setup();
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
        let always = run(&plan.module, "main", &RunOptions::default()).unwrap();
        let sampled = sampled_module(&plan, &m, 1);
        let r = run(&sampled, "main", &RunOptions::default()).unwrap();
        let full = measured_paths(&plan, &m, &always.store).total_unit_flow();
        let got = measured_paths(&plan, &m, &r.store).total_unit_flow();
        assert_eq!(got, full, "rate 1 must sample every invocation");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_rate_rejected() {
        let (m, edges, _, _) = setup();
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
        let _ = sampled_module(&plan, &m, 0);
    }

    /// The §2 claim: PPP's always-on overhead is comparable to sampled
    /// PP at a realistic rate, while collecting every path.
    #[test]
    fn ppp_competitive_with_sampled_pp() {
        let (m, edges, _, baseline) = setup();
        let pp = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
        let ppp = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
        let ppp_run = run(&ppp.module, "main", &RunOptions::default()).unwrap();
        let sampled = sampled_module(&pp, &m, 10);
        let sampled_run = run(&sampled, "main", &RunOptions::default()).unwrap();
        let ppp_oh = ppp_run.overhead_vs(baseline).expect("live baseline");
        let sampled_oh = sampled_run.overhead_vs(baseline).expect("live baseline");
        // PPP collects ~10x the data; its overhead should be in the same
        // ballpark (within a few percentage points) as 1-in-10 sampling.
        assert!(
            ppp_oh <= sampled_oh + 0.10,
            "PPP ({ppp_oh:.3}) should be comparable to sampled PP ({sampled_oh:.3})"
        );
    }
}
