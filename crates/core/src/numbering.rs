//! Path numbering: Ball–Larus (Fig. 2) and PPP's smart variant (Fig. 6).
//!
//! Both algorithms walk blocks in reverse topological order and assign each
//! edge `Val(e) = NumPaths(v)` accumulated so far, so the sum of `Val`
//! along any `ENTRY → EXIT` DAG path is a unique number in `[0, N)`. They
//! differ only in the order a block's outgoing edges are visited:
//!
//! - **Ball–Larus** (Fig. 2): increasing `NumPaths(target)`, which keeps
//!   edge increments small;
//! - **Smart path numbering** (Fig. 6, §4.5): *decreasing execution
//!   frequency*, which assigns `Val = 0` — i.e. no increment — to each
//!   block's hottest outgoing edge.
//!
//! Cold (excluded) edges take no part in numbering; paths through them are
//! not counted (§3.2) and are handled by poisoning.

use crate::dag::{Dag, DagEdgeId};

/// Edge-visit order for numbering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NumberingOrder {
    /// Fig. 2: increasing `NumPaths(target)` (PP and TPP).
    BallLarus,
    /// Fig. 6: decreasing measured edge frequency (PPP's SPN, §4.5).
    SmartDecreasingFreq,
    /// *Increasing* frequency: the hottest edge is visited last and so
    /// receives the largest `Val`. This is the numbering posture of
    /// selective path profiling (SPP), which "assigns high path numbers
    /// to profiled paths" — the paper's §2 contrast: with this order the
    /// hottest paths carry the most increments instead of none.
    SppIncreasingFreq,
}

/// The result of numbering a (possibly pruned) DAG.
#[derive(Clone, Debug)]
pub struct Numbering {
    /// `Val(e)` per DAG edge; `0` for cold edges and edges off all
    /// counted paths.
    pub val: Vec<i64>,
    /// Paths from each node to `EXIT` avoiding cold edges (`NumPaths` in
    /// Fig. 2). Saturating: [`u64::MAX`] means "too many".
    pub paths_from: Vec<u64>,
    /// Paths from `ENTRY` to each node avoiding cold edges.
    pub paths_to: Vec<u64>,
    /// Total countable paths `N = NumPaths(ENTRY)`.
    pub n_paths: u64,
}

impl Numbering {
    /// Returns `true` if edge `e` lies on at least one counted
    /// (`ENTRY → EXIT`, cold-free) path.
    pub fn on_counted_path(&self, dag: &Dag, e: DagEdgeId, cold: &[bool]) -> bool {
        if cold[e.index()] {
            return false;
        }
        let edge = dag.edge(e);
        self.paths_to[edge.from.index()] > 0 && self.paths_from[edge.to.index()] > 0
    }

    /// Number of counted paths passing through edge `e`
    /// (`paths_to(src) × paths_from(tgt)`, saturating).
    pub fn paths_through(&self, dag: &Dag, e: DagEdgeId, cold: &[bool]) -> u64 {
        if cold[e.index()] {
            return 0;
        }
        let edge = dag.edge(e);
        self.paths_to[edge.from.index()].saturating_mul(self.paths_from[edge.to.index()])
    }
}

/// Numbers the DAG's cold-free paths.
///
/// `cold[e]` excludes edge `e` (its `Val` stays `0` and no path through it
/// is counted).
pub fn number_paths(dag: &Dag, cold: &[bool], order: NumberingOrder) -> Numbering {
    assert_eq!(
        cold.len(),
        dag.edge_count(),
        "cold mask must cover all edges"
    );
    let n_blocks = dag
        .topo()
        .iter()
        .map(|b| b.index() + 1)
        .max()
        .unwrap_or(0)
        .max(dag.exit.index() + 1);
    let mut paths_from = vec![0u64; n_blocks];
    let mut val = vec![0i64; dag.edge_count()];

    // Reverse topological: exit first.
    for &v in dag.topo().iter().rev() {
        if v == dag.exit {
            paths_from[v.index()] = 1;
            continue;
        }
        let mut out: Vec<DagEdgeId> = dag
            .out_edges(v)
            .iter()
            .copied()
            .filter(|&e| !cold[e.index()])
            .collect();
        match order {
            NumberingOrder::BallLarus => {
                out.sort_by_key(|&e| (paths_from[dag.edge(e).to.index()], e));
            }
            NumberingOrder::SmartDecreasingFreq => {
                out.sort_by_key(|&e| (std::cmp::Reverse(dag.edge(e).freq), e));
            }
            NumberingOrder::SppIncreasingFreq => {
                out.sort_by_key(|&e| (dag.edge(e).freq, e));
            }
        }
        let mut np: u64 = 0;
        for e in out {
            let tgt = dag.edge(e).to;
            val[e.index()] = i64::try_from(np.min(i64::MAX as u64)).expect("clamped");
            np = np.saturating_add(paths_from[tgt.index()]);
        }
        paths_from[v.index()] = np;
    }

    // Forward pass: paths from ENTRY to each node.
    let mut paths_to = vec![0u64; n_blocks];
    paths_to[dag.entry.index()] = 1;
    for &v in dag.topo() {
        let pt = paths_to[v.index()];
        if pt == 0 {
            continue;
        }
        for &e in dag.out_edges(v) {
            if cold[e.index()] {
                continue;
            }
            let tgt = dag.edge(e).to;
            paths_to[tgt.index()] = paths_to[tgt.index()].saturating_add(pt);
        }
    }

    // Zero the Val of edges that are on no counted path, so they never
    // receive increments.
    for (i, v) in val.iter_mut().enumerate() {
        let edge = dag.edge(DagEdgeId(i as u32));
        if cold[i] || paths_to[edge.from.index()] == 0 || paths_from[edge.to.index()] == 0 {
            *v = 0;
        }
    }

    let n_paths = paths_from[dag.entry.index()];
    Numbering {
        val,
        paths_from,
        paths_to,
        n_paths,
    }
}

/// Decodes path number `p` back to its DAG edge sequence.
///
/// Returns `None` if `p` is not a valid path number (e.g. a poisoned
/// index).
pub fn decode_path(
    dag: &Dag,
    numbering: &Numbering,
    cold: &[bool],
    p: u64,
) -> Option<Vec<DagEdgeId>> {
    if p >= numbering.n_paths {
        return None;
    }
    let mut remaining = p;
    let mut node = dag.entry;
    let mut out = Vec::new();
    // Bounded walk: a simple path visits each node at most once.
    for _ in 0..=dag.topo().len() {
        if node == dag.exit {
            return Some(out);
        }
        // Choose the edge whose interval [Val(e), Val(e)+paths_from(tgt))
        // contains `remaining`: the edge with the largest Val <= remaining.
        let mut best: Option<(DagEdgeId, i64)> = None;
        for &e in dag.out_edges(node) {
            if cold[e.index()] {
                continue;
            }
            let edge = dag.edge(e);
            if numbering.paths_from[edge.to.index()] == 0 {
                continue;
            }
            let v = numbering.val[e.index()];
            if v as u64 <= remaining && best.is_none_or(|(_, bv)| v > bv) {
                best = Some((e, v));
            }
        }
        let (e, v) = best?;
        remaining -= v as u64;
        node = dag.edge(e).to;
        out.push(e);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use ppp_ir::{BlockId as B, Function, FunctionBuilder, Reg};

    /// The Figure 1 routine: A -> B|C; B -> D; C -> D; D -> E|F; E -> F;
    /// F is a loop latch back to A... Figure 1 has a back edge F -> A and
    /// exit G. We encode: A(0) branches to B(1), C(2); both to D(3);
    /// D branches to E(4), F(5); E -> F; F branches back to A (back edge)
    /// or to G(6) = exit.
    fn figure1() -> Function {
        let mut b = FunctionBuilder::new("fig1", 2);
        let entry = b.new_block(); // A = b1 (keep b0 as virtual entry)
        let bb = b.new_block();
        let cc = b.new_block();
        let dd = b.new_block();
        let ee = b.new_block();
        let ff = b.new_block();
        let gg = b.new_block();
        b.jump(entry);
        b.switch_to(entry);
        b.branch(Reg(0), bb, cc);
        b.switch_to(bb);
        b.jump(dd);
        b.switch_to(cc);
        b.jump(dd);
        b.switch_to(dd);
        b.branch(Reg(1), ee, ff);
        b.switch_to(ee);
        b.jump(ff);
        b.switch_to(ff);
        b.branch(Reg(0), entry, gg); // back edge to A, exit to G
        b.switch_to(gg);
        b.ret(None);
        b.finish()
    }

    fn no_cold(dag: &Dag) -> Vec<bool> {
        vec![false; dag.edge_count()]
    }

    #[test]
    fn figure1_has_expected_path_count() {
        // 2 (A-split) * 2 (D-split) = 4 paths from A to the F-split, times
        // 2 ways to end (back edge or G)... ENTRY adds the dummy path start
        // at A only (back edge targets A which is also the path start).
        // Counting: paths start at ENTRY(b0) or via entry-dummy to A; both
        // reach A immediately, so N = (ways A..F) * (F->G or F->EXIT dummy)
        // = 4 * 2 = 8 per path start; starts share node A, so N = 8 + 8?
        // The DAG: b0 -> A (real) and b0 -> A (entry dummy) are parallel
        // edges, so N doubles: both represent distinct path *starts* but
        // identical block sequences. The paper's Figure 1 reports 8 paths
        // for the equivalent structure; our extra factor 2 comes from the
        // virtual entry also reaching A. Verify the invariant rather than
        // the literal count: every number decodes to a unique path.
        let f = figure1();
        let dag = Dag::build(&f, None);
        let cold = no_cold(&dag);
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        assert_eq!(num.n_paths, 16);
        // Path number uniqueness: decode every p and re-sum the vals.
        for p in 0..num.n_paths {
            let path = decode_path(&dag, &num, &cold, p).expect("valid path");
            let sum: i64 = path.iter().map(|&e| num.val[e.index()]).sum();
            assert_eq!(sum as u64, p, "path numbers must round-trip");
        }
        assert_eq!(decode_path(&dag, &num, &cold, num.n_paths), None);
    }

    #[test]
    fn vals_are_zero_on_some_spanning_structure() {
        let f = figure1();
        let dag = Dag::build(&f, None);
        let cold = no_cold(&dag);
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        // At least one outgoing edge of every branching node has Val 0.
        for &v in dag.topo() {
            let outs = dag.out_edges(v);
            if outs.len() >= 2 {
                assert!(outs.iter().any(|&e| num.val[e.index()] == 0));
            }
        }
    }

    #[test]
    fn smart_numbering_zeroes_hottest_edge() {
        let f = figure1();
        let mut dag = Dag::build(&f, None);
        let cold = no_cold(&dag);
        // Make one of A's outgoing edges much hotter, in a way that
        // disagrees with the Ball-Larus order.
        let a_out: Vec<DagEdgeId> = dag.out_edges(B(1)).to_vec();
        assert_eq!(a_out.len(), 2);
        // Give the *second* (higher NumPaths order) edge the higher freq.
        let hot = a_out[1];
        dag.set_edge_freq(hot, 1000);
        dag.set_edge_freq(a_out[0], 1);
        let num = number_paths(&dag, &cold, NumberingOrder::SmartDecreasingFreq);
        assert_eq!(num.val[hot.index()], 0, "hottest edge gets Val 0");
        assert_ne!(num.val[a_out[0].index()], 0);
        // Uniqueness still holds.
        for p in 0..num.n_paths {
            let path = decode_path(&dag, &num, &cold, p).expect("valid");
            let sum: i64 = path.iter().map(|&e| num.val[e.index()]).sum();
            assert_eq!(sum as u64, p);
        }
    }

    #[test]
    fn cold_edges_prune_paths() {
        let f = figure1();
        let dag = Dag::build(&f, None);
        let mut cold = no_cold(&dag);
        // Freeze A -> C (the real edge from block 1 to block 2).
        let ac = (0..dag.edge_count())
            .map(|i| DagEdgeId(i as u32))
            .find(|&e| dag.edge(e).from == B(1) && dag.edge(e).to == B(2))
            .unwrap();
        cold[ac.index()] = true;
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        assert_eq!(num.n_paths, 8); // halved
        assert_eq!(num.val[ac.index()], 0);
        assert_eq!(num.paths_through(&dag, ac, &cold), 0);
        // Decoded paths never use the cold edge.
        for p in 0..num.n_paths {
            let path = decode_path(&dag, &num, &cold, p).expect("valid");
            assert!(!path.contains(&ac));
        }
    }

    #[test]
    fn spp_order_loads_the_hottest_edge() {
        let f = figure1();
        let mut dag = Dag::build(&f, None);
        let a_out: Vec<DagEdgeId> = dag.out_edges(B(1)).to_vec();
        let hot = a_out[1];
        dag.set_edge_freq(hot, 1000);
        dag.set_edge_freq(a_out[0], 1);
        let cold = no_cold(&dag);
        let num = number_paths(&dag, &cold, NumberingOrder::SppIncreasingFreq);
        // SPP's posture: the hottest outgoing edge gets the LARGEST value
        // (it is visited last), so hot paths carry increments.
        assert!(num.val[hot.index()] > 0, "hottest edge must carry a value");
        assert_eq!(num.val[a_out[0].index()], 0);
        // Numbering is still a bijection.
        for p in 0..num.n_paths {
            let path = decode_path(&dag, &num, &cold, p).expect("valid");
            let sum: i64 = path.iter().map(|&e| num.val[e.index()]).sum();
            assert_eq!(sum as u64, p);
        }
    }

    #[test]
    fn paths_through_counts_match_totals() {
        let f = figure1();
        let dag = Dag::build(&f, None);
        let cold = no_cold(&dag);
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        // Paths through all of EXIT's in-edges sum to N.
        let total: u64 = dag
            .in_edges(dag.exit)
            .iter()
            .map(|&e| num.paths_through(&dag, e, &cold))
            .sum();
        assert_eq!(total, num.n_paths);
    }
}
