//! CFG → DAG conversion for path profiling (§3.1).
//!
//! Ball–Larus profiling removes every back edge `latch → header` and adds
//! two dummy edges: `ENTRY → header` and `latch → EXIT`. Acyclic paths in
//! the resulting DAG correspond one-to-one with the dynamic paths the
//! profiler counts: a path entering via an `ENTRY → header` dummy is an
//! iteration path started by the back edge, and a path leaving via a
//! `latch → EXIT` dummy ends with that back edge taken.
//!
//! The [`Dag`] keeps, per edge, the *measured* frequency (from an edge
//! profile, when available), a *predicted weight* (static heuristics, used
//! by PP's numbering and event counting), and whether the edge is a
//! *branch* in the paper's §5.1 sense — dummy exit edges inherit the
//! branchiness of the back edge they stand for, so branch-flow accounting
//! agrees exactly with the VM's ground-truth tracer.

use ppp_ir::{analyze_loops, BlockId, Cfg, EdgeRef, FuncEdgeProfile, Function};

/// Index of an edge within a [`Dag`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DagEdgeId(pub u32);

impl DagEdgeId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a DAG edge stands for in the original CFG.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DagEdgeKind {
    /// An original (non-back) CFG edge.
    Real(EdgeRef),
    /// Dummy `ENTRY → header` edge standing for the start of an iteration
    /// path after back edge `back` is taken.
    EntryDummy {
        /// The back edge this dummy stands for.
        back: EdgeRef,
    },
    /// Dummy `latch → EXIT` edge standing for the end of a path at back
    /// edge `back`.
    ExitDummy {
        /// The back edge this dummy stands for.
        back: EdgeRef,
    },
}

impl DagEdgeKind {
    /// Returns the CFG back edge for dummy edges.
    pub fn back_edge(self) -> Option<EdgeRef> {
        match self {
            DagEdgeKind::Real(_) => None,
            DagEdgeKind::EntryDummy { back } | DagEdgeKind::ExitDummy { back } => Some(back),
        }
    }
}

/// One DAG edge.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DagEdge {
    /// Source DAG node (a CFG block; `ENTRY` is the function entry block).
    pub from: BlockId,
    /// Target DAG node (`EXIT` is the unique return block).
    pub to: BlockId,
    /// CFG meaning of this edge.
    pub kind: DagEdgeKind,
    /// `true` if the corresponding CFG edge leaves a block with at least
    /// two successors (§5.1); entry dummies are never branches.
    pub is_branch: bool,
    /// Measured execution frequency (0 without a profile).
    pub freq: u64,
    /// Predicted frequency from static heuristics (loops ×10, even branch
    /// splits) — what PP's spanning tree and numbering order use (§4.5).
    pub weight: f64,
}

/// The profiling DAG of one function.
#[derive(Clone, Debug)]
pub struct Dag {
    /// Function entry block (the DAG's `ENTRY`).
    pub entry: BlockId,
    /// Unique return block (the DAG's `EXIT`).
    pub exit: BlockId,
    edges: Vec<DagEdge>,
    out: Vec<Vec<DagEdgeId>>,
    inn: Vec<Vec<DagEdgeId>>,
    topo: Vec<BlockId>,
    node_freq: Vec<u64>,
    entries: u64,
}

impl Dag {
    /// Builds the profiling DAG of `f`, attaching frequencies from
    /// `profile` when given.
    ///
    /// # Panics
    ///
    /// Panics if `f` does not have exactly one `return` block or if its
    /// entry block has predecessors — run
    /// [`single_exit`](ppp_ir::transform::single_exit) and
    /// [`ensure_virtual_entry`](ppp_ir::transform::ensure_virtual_entry)
    /// first.
    pub fn build(f: &Function, profile: Option<&FuncEdgeProfile>) -> Self {
        let returns = f.return_blocks();
        assert_eq!(
            returns.len(),
            1,
            "function {} must be single-exit for DAG conversion",
            f.name
        );
        let exit = returns[0];
        let cfg = Cfg::new(f);
        assert!(
            cfg.preds(f.entry).is_empty(),
            "function {} entry must have no predecessors",
            f.name
        );

        let n = f.blocks.len();
        let weights = static_weights(f);
        let mut edges: Vec<DagEdge> = Vec::new();
        let mut out: Vec<Vec<DagEdgeId>> = vec![Vec::new(); n];
        let mut inn: Vec<Vec<DagEdgeId>> = vec![Vec::new(); n];

        let push = |edges: &mut Vec<DagEdge>,
                    out: &mut Vec<Vec<DagEdgeId>>,
                    inn: &mut Vec<Vec<DagEdgeId>>,
                    e: DagEdge| {
            let id = DagEdgeId(edges.len() as u32);
            out[e.from.index()].push(id);
            inn[e.to.index()].push(id);
            edges.push(e);
        };

        for (b, block) in f.iter_blocks() {
            if !cfg.is_reachable(b) {
                continue;
            }
            let succs = block.term.successor_count();
            for s in 0..succs {
                let tgt = block.term.successor(s).expect("in-range successor");
                let e = EdgeRef::new(b, s);
                let freq = profile.map_or(0, |p| p.edge(e));
                let weight = weights.edge(f, e);
                let is_branch = succs >= 2;
                if cfg.is_retreating(b, tgt) {
                    // Break the back edge into two dummies (§3.1).
                    push(
                        &mut edges,
                        &mut out,
                        &mut inn,
                        DagEdge {
                            from: f.entry,
                            to: tgt,
                            kind: DagEdgeKind::EntryDummy { back: e },
                            is_branch: false,
                            freq,
                            weight,
                        },
                    );
                    push(
                        &mut edges,
                        &mut out,
                        &mut inn,
                        DagEdge {
                            from: b,
                            to: exit,
                            kind: DagEdgeKind::ExitDummy { back: e },
                            is_branch,
                            freq,
                            weight,
                        },
                    );
                } else {
                    push(
                        &mut edges,
                        &mut out,
                        &mut inn,
                        DagEdge {
                            from: b,
                            to: tgt,
                            kind: DagEdgeKind::Real(e),
                            is_branch,
                            freq,
                            weight,
                        },
                    );
                }
            }
        }

        let topo = topo_order(f.entry, n, &edges, &out);

        let entries = profile.map_or(0, |p| p.entries());
        let mut node_freq = vec![0u64; n];
        node_freq[f.entry.index()] = entries;
        for &b in &topo {
            if b != f.entry {
                node_freq[b.index()] = inn[b.index()].iter().map(|&i| edges[i.index()].freq).sum();
            }
        }

        Self {
            entry: f.entry,
            exit,
            edges,
            out,
            inn,
            topo,
            node_freq,
            entries,
        }
    }

    /// All edges, indexed by [`DagEdgeId`].
    pub fn edges(&self) -> &[DagEdge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn edge(&self, id: DagEdgeId) -> &DagEdge {
        &self.edges[id.index()]
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing edges of `b`.
    pub fn out_edges(&self, b: BlockId) -> &[DagEdgeId] {
        &self.out[b.index()]
    }

    /// Incoming edges of `b`.
    pub fn in_edges(&self, b: BlockId) -> &[DagEdgeId] {
        &self.inn[b.index()]
    }

    /// Topological order over nodes reachable from `ENTRY` (entry first;
    /// `EXIT` last when it is reachable).
    pub fn topo(&self) -> &[BlockId] {
        &self.topo
    }

    /// Measured frequency of node `b` (sum of incoming DAG edge
    /// frequencies; `ENTRY` uses the function's entry count).
    pub fn node_freq(&self, b: BlockId) -> u64 {
        self.node_freq[b.index()]
    }

    /// Number of function invocations in the attached profile.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Total path executions: the measured frequency of `EXIT`
    /// (returns plus back-edge path endings). This is the `F` seeding the
    /// definite/potential flow algorithms (Figs. 14–15).
    pub fn total_path_freq(&self) -> u64 {
        self.node_freq(self.exit)
    }

    /// Total branch flow of the function: the sum of branch-edge
    /// frequencies (§5.1).
    pub fn total_branch_flow(&self) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.is_branch)
            .map(|e| e.freq)
            .sum()
    }

    /// Finds the DAG edge for a non-back CFG edge.
    pub fn real_edge(&self, e: ppp_ir::EdgeRef) -> Option<DagEdgeId> {
        self.find_edge(|k| matches!(k, DagEdgeKind::Real(r) if r == e))
    }

    /// Finds the `ENTRY → header` dummy for a back edge.
    pub fn entry_dummy(&self, back: ppp_ir::EdgeRef) -> Option<DagEdgeId> {
        self.find_edge(|k| matches!(k, DagEdgeKind::EntryDummy { back: b } if b == back))
    }

    /// Finds the `latch → EXIT` dummy for a back edge.
    pub fn exit_dummy(&self, back: ppp_ir::EdgeRef) -> Option<DagEdgeId> {
        self.find_edge(|k| matches!(k, DagEdgeKind::ExitDummy { back: b } if b == back))
    }

    fn find_edge(&self, pred: impl Fn(DagEdgeKind) -> bool) -> Option<DagEdgeId> {
        self.edges
            .iter()
            .position(|e| pred(e.kind))
            .map(|i| DagEdgeId(i as u32))
    }

    /// Converts a DAG edge sequence (an `ENTRY → EXIT` path) into the
    /// [`PathKey`](ppp_ir::PathKey) identity used by the ground-truth
    /// tracer: the start block plus the CFG edges taken, with a
    /// terminating back edge when the path ends at one.
    pub fn path_key(&self, edges: &[DagEdgeId]) -> ppp_ir::PathKey {
        let mut start = self.entry;
        let mut out = Vec::with_capacity(edges.len());
        for (i, &id) in edges.iter().enumerate() {
            match self.edge(id).kind {
                DagEdgeKind::Real(e) => out.push(e),
                DagEdgeKind::EntryDummy { back } => {
                    debug_assert_eq!(i, 0, "entry dummy must start the path");
                    start = self.edge(id).to;
                    let _ = back;
                }
                DagEdgeKind::ExitDummy { back } => {
                    debug_assert_eq!(i, edges.len() - 1, "exit dummy must end the path");
                    out.push(back);
                }
            }
        }
        ppp_ir::PathKey { start, edges: out }
    }

    /// Overrides the measured frequency of one edge (for synthetic
    /// profiles in tests and examples) and re-derives node frequencies.
    pub fn set_edge_freq(&mut self, id: DagEdgeId, freq: u64) {
        self.edges[id.index()].freq = freq;
        self.recompute_node_freqs();
    }

    /// Overrides the function entry count (for synthetic profiles).
    pub fn set_entries(&mut self, entries: u64) {
        self.entries = entries;
        self.recompute_node_freqs();
    }

    fn recompute_node_freqs(&mut self) {
        self.node_freq[self.entry.index()] = self.entries;
        for i in 0..self.node_freq.len() {
            let b = BlockId::new(i);
            if b != self.entry {
                self.node_freq[i] = self.inn[i]
                    .iter()
                    .map(|&e| self.edges[e.index()].freq)
                    .sum();
            }
        }
    }
}

fn topo_order(entry: BlockId, n: usize, edges: &[DagEdge], out: &[Vec<DagEdgeId>]) -> Vec<BlockId> {
    // Iterative DFS postorder, reversed.
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited[entry.index()] = true;
    while let Some(&mut (b, ref mut next)) = stack.last_mut() {
        let outs = &out[b.index()];
        if *next < outs.len() {
            let tgt = edges[outs[*next].index()].to;
            *next += 1;
            if !visited[tgt.index()] {
                visited[tgt.index()] = true;
                stack.push((tgt, 0));
            }
        } else {
            order.push(b);
            stack.pop();
        }
    }
    order.reverse();
    order
}

/// Static frequency heuristics: blocks weigh `10^loop-depth`, and a
/// block's weight splits evenly over its successors. PP uses these where
/// TPP/PPP use the measured edge profile (§3.1, §4.5).
struct StaticWeights {
    block: Vec<f64>,
}

impl StaticWeights {
    fn edge(&self, f: &Function, e: EdgeRef) -> f64 {
        let n = f.block(e.from).term.successor_count().max(1);
        self.block[e.from.index()] / n as f64
    }
}

fn static_weights(f: &Function) -> StaticWeights {
    let (_, _, loops) = analyze_loops(f);
    let block = f
        .block_ids()
        .map(|b| 10f64.powi(loops.depth(b) as i32))
        .collect();
    StaticWeights { block }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{FunctionBuilder, Module, Reg};
    use ppp_vm::{run, RunOptions};

    /// entry(0) -> 1(hdr); 1 -> 2 | 4; 2 -> 3; 3 -> 1 (back); 4: ret
    fn looped() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        let b4 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.branch(Reg(0), b2, b4);
        b.switch_to(b2);
        b.jump(b3);
        b.switch_to(b3);
        b.jump(b1);
        b.switch_to(b4);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn back_edge_becomes_two_dummies() {
        let f = looped();
        let dag = Dag::build(&f, None);
        let kinds: Vec<_> = dag.edges().iter().map(|e| e.kind).collect();
        let back = EdgeRef::new(BlockId(3), 0);
        assert!(kinds.contains(&DagEdgeKind::EntryDummy { back }));
        assert!(kinds.contains(&DagEdgeKind::ExitDummy { back }));
        assert!(!kinds
            .iter()
            .any(|k| matches!(k, DagEdgeKind::Real(e) if *e == back)));
        // 5 real non-back edges? edges: 0->1, 1->2, 1->4, 2->3 are real;
        // 3->1 became two dummies. Total 4 + 2 = 6.
        assert_eq!(dag.edge_count(), 6);
    }

    #[test]
    fn dag_is_acyclic_and_topo_covers_reachable() {
        let f = looped();
        let dag = Dag::build(&f, None);
        let topo = dag.topo();
        assert_eq!(topo[0], BlockId(0));
        assert_eq!(*topo.last().unwrap(), dag.exit);
        let pos = |b: BlockId| topo.iter().position(|&x| x == b).unwrap();
        for e in dag.edges() {
            assert!(pos(e.from) < pos(e.to), "edge {e:?} violates topo order");
        }
    }

    #[test]
    fn branchiness_follows_cfg_sources() {
        let f = looped();
        let dag = Dag::build(&f, None);
        for e in dag.edges() {
            match e.kind {
                DagEdgeKind::Real(r) => {
                    let expect = f.block(r.from).term.successor_count() >= 2;
                    assert_eq!(e.is_branch, expect);
                }
                // The back edge 3->1 comes from single-successor b3.
                DagEdgeKind::ExitDummy { .. } => assert!(!e.is_branch),
                DagEdgeKind::EntryDummy { .. } => assert!(!e.is_branch),
            }
        }
    }

    #[test]
    fn frequencies_come_from_profile_and_node_freqs_balance() {
        let _f = looped();
        let mut m = Module::new();
        // Drive the loop with a real execution to get a consistent profile.
        let mut mb = FunctionBuilder::new("main", 0);
        let bound = mb.constant(8);
        let v = mb.rand(bound);
        mb.call_void(ppp_ir::FuncId(1), vec![v]);
        mb.ret(None);
        m.add_function(mb.finish());
        // Rebuild f as a counted loop so it terminates: use param as count.
        let mut fb = FunctionBuilder::new("f", 1);
        let i = fb.param(0);
        let b1 = fb.new_block();
        let b2 = fb.new_block();
        let b3 = fb.new_block();
        let b4 = fb.new_block();
        fb.jump(b1);
        fb.switch_to(b1);
        fb.branch(i, b2, b4);
        fb.switch_to(b2);
        fb.jump(b3);
        fb.switch_to(b3);
        let one = fb.constant(1);
        fb.binary_to(i, ppp_ir::BinOp::Sub, i, one);
        fb.jump(b1);
        fb.switch_to(b4);
        fb.ret(None);
        m.add_function(fb.finish());

        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let prof = r.edge_profile.unwrap();
        let fp = prof.func(ppp_ir::FuncId(1));
        let dag = Dag::build(m.function(ppp_ir::FuncId(1)), Some(fp));
        // Node freq of exit = returns + back-edge endings = entries + iters.
        let iters = fp.edge(EdgeRef::new(BlockId(3), 0));
        assert_eq!(dag.total_path_freq(), dag.entries() + iters);
        // Flow conservation at the loop header: in = dummy + real entry.
        assert_eq!(dag.node_freq(BlockId(1)), dag.entries() + iters);
    }

    #[test]
    fn static_weights_prefer_loops() {
        let f = looped();
        let dag = Dag::build(&f, None);
        // The loop-internal edge 2->3 gets weight 10 (depth 1), while the
        // loop-exit edge 1->4 gets 10/2 = 5 and entry edge 0->1 gets 1.
        let w = |from: u32, kind_real: bool| {
            dag.edges()
                .iter()
                .find(|e| {
                    e.from == BlockId(from) && matches!(e.kind, DagEdgeKind::Real(_)) == kind_real
                })
                .unwrap()
                .weight
        };
        assert_eq!(w(0, true), 1.0);
        assert_eq!(w(2, true), 10.0);
    }

    #[test]
    #[should_panic(expected = "single-exit")]
    fn multi_exit_rejected() {
        let mut b = FunctionBuilder::new("f", 1);
        let other = b.new_block();
        b.branch(Reg(0), other, other);
        b.switch_to(other);
        b.ret(None);
        let mut f = b.finish();
        // Force two returns.
        f.blocks[0].term = ppp_ir::Terminator::Return { value: None };
        let _ = Dag::build(&f, None);
    }
}
