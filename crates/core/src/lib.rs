//! # ppp-core: practical path profiling for dynamic optimizers
//!
//! A from-scratch implementation of the three path profilers studied in
//! Bond & McKinley, *Practical Path Profiling for Dynamic Optimizers*
//! (CGO 2005):
//!
//! - **PP** — Ball–Larus path profiling (§3.1): DAG conversion, unique
//!   path numbering, Ball's event counting, instrumentation pushing;
//! - **TPP** — Joshi et al.'s targeted path profiling (§3.2): cold-path
//!   elimination with poisoning, obvious paths, and obvious-loop
//!   disconnection, guided by an edge profile;
//! - **PPP** — the paper's contribution (§4): six additional techniques
//!   (low-coverage routine filtering, a global cold-edge criterion with a
//!   self-adjusting threshold, pushing past cold edges, smart path
//!   numbering, and free poisoning) that cut overhead to dynamic-optimizer
//!   levels.
//!
//! It also implements the paper's **evaluation machinery**: the
//! unit-flow and branch-flow metrics (§5.1), definite and potential flow
//! with hot-path reconstruction (appendix Figs. 14–16, including the fix
//! to Ball et al.'s algorithm), estimated-profile construction (§5),
//! Wall-style accuracy (§6.1), and coverage with the overcount penalty
//! (§6.2).
//!
//! # Quick start
//!
//! ```
//! use ppp_core::{instrument_module, normalize_module, ProfilerConfig};
//! use ppp_ir::{FunctionBuilder, Module};
//! use ppp_vm::{run, RunOptions};
//!
//! // Build a module, normalize it, and take an edge-profiled run.
//! let mut module = Module::new();
//! let mut b = FunctionBuilder::new("main", 0);
//! let bound = b.constant(4);
//! let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
//! let v = b.rand(bound);
//! b.branch(v, t, e);
//! b.switch_to(t);
//! b.jump(j);
//! b.switch_to(e);
//! b.jump(j);
//! b.switch_to(j);
//! b.ret(None);
//! module.add_function(b.finish());
//! normalize_module(&mut module);
//!
//! let profiled = run(&module, "main", &RunOptions::default().traced())?;
//! let edges = profiled.edge_profile.expect("traced");
//!
//! // Instrument with PPP and run the instrumented module.
//! let plan = instrument_module(&module, Some(&edges), &ProfilerConfig::ppp());
//! let result = run(&plan.module, "main", &RunOptions::default())?;
//! assert_eq!(result.checksum, profiled.checksum); // semantics preserved
//! # Ok::<(), ppp_vm::VmError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod accuracy;
pub mod cold;
pub mod coverage;
pub mod dag;
pub mod edge_profile;
pub mod estimate;
pub mod events;
pub mod flow;
pub mod instrument;
pub mod net;
pub mod numbering;
pub mod obvious;
pub mod plan;
pub mod poison;
pub mod profiler;
pub mod push;
pub mod sampling;

pub use accuracy::{accuracy, actual_hot_paths, hot_flow_fraction, HotPath};
pub use coverage::{
    edge_profile_coverage, instrumented_fraction, profiler_coverage, Coverage, InstrumentedFraction,
};
pub use dag::{Dag, DagEdge, DagEdgeId, DagEdgeKind};
pub use edge_profile::{edge_instrument, EdgeInstrumentation};
pub use estimate::{
    edge_profile_estimate, profiler_estimate, EstimateOptions, EstimatedPath, EstimatedProfile,
};
pub use flow::{
    definite_flow, potential_flow, reconstruct, FlowAnalysis, FlowKind, FlowMap, FlowMetric,
    ReconstructedPath,
};
pub use instrument::{
    instrument_module, measured_paths, normalize_module, FuncPlan, ModulePlan, PlacePos, Placement,
    SkipReason,
};
pub use net::{net_hot_flow_coverage, NetConfig, NetPredictor};
pub use profiler::{Params, PppToggles, ProfilerConfig, ProfilerKind, Technique};
pub use sampling::{sampled_module, SAMPLE_COUNTER_BASE};
