//! Coverage of an estimated path profile (§6.2), and the instrumented
//! dynamic-path fractions of Figure 11.
//!
//! Coverage is the fraction of actual program flow a method *definitely*
//! measures. For edge profiling that is `DF(P) / F(P)` (Ball et al.'s
//! attribution of definite flow); for a profiler it combines measured
//! flow with computed definite flow, minus an overcount penalty for the
//! cold executions PPP's pushing lets slip into hot counters (§4.4):
//!
//! ```text
//!   Coverage = (F(P_instr) + DF(P_uninstr) - F_overcount) / F(P)
//! ```

use crate::dag::Dag;
use crate::estimate::EstimateOptions;
use crate::flow::{definite_flow, reconstruct, FlowKind, FlowMetric};
use crate::instrument::{measured_paths, ModulePlan};
use ppp_ir::{FuncId, Module, ModulePathProfile, PathKey};
use std::collections::HashSet;

/// Coverage components (all flows under the chosen metric).
#[derive(Clone, Copy, Debug, Default)]
pub struct Coverage {
    /// Actual flow of the measured paths, `F(P_instr)`.
    pub measured_actual: u64,
    /// Flow the counters reported, `MF(P_instr)` (may overcount).
    pub measured_reported: u64,
    /// Definite flow of uninstrumented paths, `DF(P_uninstr)`.
    pub definite_uninstrumented: u64,
    /// Overcount penalty `max(0, MF - F)`.
    pub overcount: u64,
    /// Total actual program flow, `F(P)`.
    pub total: u64,
}

impl Coverage {
    /// The coverage ratio in `[0, 1]`.
    pub fn ratio(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        let covered =
            (self.measured_actual + self.definite_uninstrumented).saturating_sub(self.overcount);
        (covered as f64 / self.total as f64).clamp(0.0, 1.0)
    }
}

/// Coverage of plain edge profiling: `DF(P) / F(P)`.
pub fn edge_profile_coverage(
    module: &Module,
    edges: &ppp_ir::ModuleEdgeProfile,
    truth: &ModulePathProfile,
    metric: FlowMetric,
) -> Coverage {
    let mut c = Coverage {
        total: total_flow(truth, metric),
        ..Coverage::default()
    };
    for fid in module.func_ids() {
        let dag = Dag::build(module.function(fid), Some(edges.func(fid)));
        let df = definite_flow(&dag);
        c.definite_uninstrumented += df.entry_map(&dag).total_flow(metric);
    }
    c
}

/// Coverage of an instrumented run (§6.2).
pub fn profiler_coverage(
    original: &Module,
    plan: &ModulePlan,
    store: &ppp_vm::ProfileStore,
    truth: &ModulePathProfile,
    metric: FlowMetric,
    opts: &EstimateOptions,
) -> Coverage {
    let measured = measured_paths(plan, original, store);
    let mut c = Coverage {
        total: total_flow(truth, metric),
        ..Coverage::default()
    };

    // Measured flow: reported by counters vs. actually executed.
    let mut instr_keys: HashSet<(FuncId, &PathKey)> = HashSet::new();
    for (fid, key, stats) in measured.iter() {
        instr_keys.insert((fid, key));
        c.measured_reported += metric.flow(stats.freq, stats.branches);
        if let Some(actual) = truth.func(fid).paths.get(key) {
            c.measured_actual += metric.flow(actual.freq, actual.branches);
        }
    }
    c.overcount = c.measured_reported.saturating_sub(c.measured_actual);

    // Definite flow of everything not measured: exact per-path definite
    // flows, reconstructed from the edge profile embedded in each DAG.
    for fp in &plan.funcs {
        if fp.dag.entries() == 0 {
            continue;
        }
        let df = definite_flow(&fp.dag);
        for p in reconstruct(
            &fp.dag,
            &df,
            FlowKind::Definite,
            metric,
            0,
            opts.max_paths_per_func,
        ) {
            let key = fp.dag.path_key(&p.edges);
            if !instr_keys.contains(&(fp.func, &key)) {
                c.definite_uninstrumented += p.flow(metric);
            }
        }
    }
    c
}

/// Figure 11's quantities: the fraction of dynamic paths (unit flow) a
/// profiler measured, and the portion of those that went through hash
/// tables.
#[derive(Clone, Copy, Debug, Default)]
pub struct InstrumentedFraction {
    /// Measured dynamic paths / total dynamic paths.
    pub measured: f64,
    /// Hash-counted dynamic paths / total dynamic paths.
    pub hashed: f64,
}

/// Computes Figure 11's instrumented-path fractions.
pub fn instrumented_fraction(
    original: &Module,
    plan: &ModulePlan,
    store: &ppp_vm::ProfileStore,
    truth: &ModulePathProfile,
) -> InstrumentedFraction {
    let total = truth.total_unit_flow();
    if total == 0 {
        return InstrumentedFraction::default();
    }
    let measured = measured_paths(plan, original, store);
    let mut counted = 0u64;
    let mut hashed = 0u64;
    for fp in &plan.funcs {
        if !fp.instrumented {
            continue;
        }
        let func_counted: u64 = measured
            .func(fp.func)
            .paths
            .iter()
            .map(|(k, s)| {
                // Cap at the actual execution count so PPP overcounts do
                // not inflate the fraction beyond reality.
                truth
                    .func(fp.func)
                    .paths
                    .get(k)
                    .map_or(0, |a| s.freq.min(a.freq))
            })
            .sum();
        counted += func_counted;
        if fp.uses_hash {
            hashed += func_counted;
        }
    }
    InstrumentedFraction {
        measured: counted as f64 / total as f64,
        hashed: hashed as f64 / total as f64,
    }
}

fn total_flow(truth: &ModulePathProfile, metric: FlowMetric) -> u64 {
    truth
        .iter()
        .map(|(_, _, s)| metric.flow(s.freq, s.branches))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{instrument_module, normalize_module};
    use crate::profiler::ProfilerConfig;
    use ppp_ir::{BinOp, FunctionBuilder, Module};
    use ppp_vm::{run, RunOptions};

    fn workload() -> Module {
        let mut m = Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let n = mb.constant(400);
        mb.call_void(FuncId(1), vec![n]);
        mb.ret(None);
        m.add_function(mb.finish());
        let mut fb = FunctionBuilder::new("work", 1);
        let i = fb.param(0);
        let hdr = fb.new_block();
        let body = fb.new_block();
        let l = fb.new_block();
        let r = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.jump(hdr);
        fb.switch_to(hdr);
        fb.branch(i, body, exit);
        fb.switch_to(body);
        let four = fb.constant(4);
        let s = fb.rand(four);
        let c = fb.binary(BinOp::Eq, s, four); // never true: biased branch
        fb.branch(c, l, r);
        fb.switch_to(l);
        fb.jump(latch);
        fb.switch_to(r);
        fb.emit(s);
        fb.jump(latch);
        fb.switch_to(latch);
        let one = fb.constant(1);
        fb.binary_to(i, BinOp::Sub, i, one);
        fb.jump(hdr);
        fb.switch_to(exit);
        fb.ret(None);
        m.add_function(fb.finish());
        normalize_module(&mut m);
        m
    }

    #[test]
    fn edge_coverage_is_partial_but_positive() {
        let m = workload();
        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let truth = r.path_profile.unwrap();
        let edges = r.edge_profile.unwrap();
        let c = edge_profile_coverage(&m, &edges, &truth, FlowMetric::Branch);
        let ratio = c.ratio();
        // The biased branch makes most flow definite here; still bounded.
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio = {ratio}");
    }

    #[test]
    fn profiler_coverage_beats_edge_coverage() {
        let m = workload();
        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let truth = r.path_profile.unwrap();
        let edges = r.edge_profile.unwrap();
        let edge_cov = edge_profile_coverage(&m, &edges, &truth, FlowMetric::Branch).ratio();
        for config in [
            ProfilerConfig::pp(),
            ProfilerConfig::tpp(),
            ProfilerConfig::ppp(),
        ] {
            let plan = instrument_module(&m, Some(&edges), &config);
            let ir = run(&plan.module, "main", &RunOptions::default()).unwrap();
            let cov = profiler_coverage(
                &m,
                &plan,
                &ir.store,
                &truth,
                FlowMetric::Branch,
                &EstimateOptions::default(),
            )
            .ratio();
            assert!(
                cov + 1e-9 >= edge_cov,
                "{}: {cov} < edge {edge_cov}",
                config.label()
            );
        }
    }

    #[test]
    fn pp_coverage_is_total() {
        let m = workload();
        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let truth = r.path_profile.unwrap();
        let edges = r.edge_profile.unwrap();
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
        let ir = run(&plan.module, "main", &RunOptions::default()).unwrap();
        let cov = profiler_coverage(
            &m,
            &plan,
            &ir.store,
            &truth,
            FlowMetric::Branch,
            &EstimateOptions::default(),
        );
        assert!((cov.ratio() - 1.0).abs() < 1e-9, "PP measures everything");
        assert_eq!(cov.overcount, 0);
    }

    #[test]
    fn instrumented_fraction_pp_is_one() {
        let m = workload();
        let r = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let truth = r.path_profile.unwrap();
        let edges = r.edge_profile.unwrap();
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
        let ir = run(&plan.module, "main", &RunOptions::default()).unwrap();
        let f = instrumented_fraction(&m, &plan, &ir.store, &truth);
        assert!((f.measured - 1.0).abs() < 1e-9);
        assert_eq!(f.hashed, 0.0, "small routines use arrays");
        // TPP/PPP instrument at most as much.
        let ppp = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
        let irp = run(&ppp.module, "main", &RunOptions::default()).unwrap();
        let fp = instrumented_fraction(&m, &ppp, &irp.store, &truth);
        assert!(fp.measured <= f.measured + 1e-9);
    }
}
