//! Ball's event counting: move increments off hot edges (§3.1, §4.5).
//!
//! After numbering assigns `Val(e)` to every edge, the instrumentation
//! could simply add `Val(e)` on each edge. Ball's event counting algorithm
//! instead builds a **maximum spanning tree** over the DAG (plus a virtual
//! `EXIT → ENTRY` edge, always forced into the tree) using predicted edge
//! frequencies, reassigns zero to every tree edge, and computes a
//! compensating increment `Inc(c)` for each non-tree edge (*chord*) as the
//! signed sum of `Val` around the chord's fundamental cycle. Every
//! `ENTRY → EXIT` path then satisfies
//!
//! ```text
//!   Σ_{chords c on path} Inc(c)  ==  Σ_{edges e on path} Val(e)  ==  path number
//! ```
//!
//! so the hottest edges — which the tree preferentially absorbs — carry no
//! instrumentation at all. PP builds the tree from static heuristics; PPP
//! uses the measured edge profile (§4.5).

use crate::dag::{Dag, DagEdgeId};
use crate::numbering::Numbering;

/// Weight source for the spanning tree.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TreeWeights {
    /// Static heuristics (PP, TPP).
    Static,
    /// Measured edge frequencies (PPP's SPN, §4.5).
    Measured,
}

/// Per-edge increments: `0` on spanning-tree edges, the fundamental-cycle
/// sum on chords.
pub fn event_counting(
    dag: &Dag,
    cold: &[bool],
    numbering: &Numbering,
    weights: TreeWeights,
) -> Vec<i64> {
    let n_nodes = dag
        .topo()
        .iter()
        .map(|b| b.index() + 1)
        .max()
        .unwrap_or(0)
        .max(dag.exit.index().max(dag.entry.index()) + 1);

    // Candidate edges: those on at least one counted path. Others (cold,
    // or unreachable in the pruned DAG) carry no increments.
    let mut candidates: Vec<DagEdgeId> = (0..dag.edge_count() as u32)
        .map(DagEdgeId)
        .filter(|&e| numbering.on_counted_path(dag, e, cold))
        .collect();
    match weights {
        TreeWeights::Static => {
            candidates.sort_by(|&a, &b| {
                dag.edge(b)
                    .weight
                    .total_cmp(&dag.edge(a).weight)
                    .then(a.cmp(&b))
            });
        }
        TreeWeights::Measured => {
            candidates.sort_by(|&a, &b| dag.edge(b).freq.cmp(&dag.edge(a).freq).then(a.cmp(&b)));
        }
    }

    // Kruskal with union-find; the virtual EXIT -> ENTRY edge goes first.
    let mut dsu = Dsu::new(n_nodes);
    dsu.union(dag.exit.index(), dag.entry.index());
    // Tree adjacency: (neighbor, edge value signed by direction).
    // The virtual edge has Val 0 so it contributes nothing to potentials.
    let mut tree_adj: Vec<Vec<(usize, i64)>> = vec![Vec::new(); n_nodes];
    tree_adj[dag.exit.index()].push((dag.entry.index(), 0));
    tree_adj[dag.entry.index()].push((dag.exit.index(), 0));

    let mut in_tree = vec![false; dag.edge_count()];
    for &e in &candidates {
        let edge = dag.edge(e);
        if dsu.union(edge.from.index(), edge.to.index()) {
            in_tree[e.index()] = true;
            let v = numbering.val[e.index()];
            // Traversing the edge forward adds Val, backward subtracts.
            tree_adj[edge.from.index()].push((edge.to.index(), v));
            tree_adj[edge.to.index()].push((edge.from.index(), -v));
        }
    }

    // Potentials: signed sum of Val along the tree path from ENTRY.
    let mut pot = vec![0i64; n_nodes];
    let mut seen = vec![false; n_nodes];
    let mut stack = vec![dag.entry.index()];
    seen[dag.entry.index()] = true;
    while let Some(u) = stack.pop() {
        for &(v, val) in &tree_adj[u] {
            if !seen[v] {
                seen[v] = true;
                pot[v] = pot[u].wrapping_add(val);
                stack.push(v);
            }
        }
    }
    // Components not connected to ENTRY keep pot = 0; their edges lie on
    // no counted path, so their increments are irrelevant.

    let mut inc = vec![0i64; dag.edge_count()];
    for &e in &candidates {
        if in_tree[e.index()] {
            continue;
        }
        let edge = dag.edge(e);
        // Chord cycle: e (forward) then the tree path to -> from, whose
        // signed sum is pot[from] - pot[to].
        inc[e.index()] = numbering.val[e.index()]
            .wrapping_add(pot[edge.from.index()])
            .wrapping_sub(pot[edge.to.index()]);
    }
    inc
}

/// Tiny union-find.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Returns `true` if the sets were distinct (edge joins the tree).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            false
        } else {
            self.parent[ra] = rb;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::numbering::{decode_path, number_paths, NumberingOrder};
    use ppp_ir::{Function, FunctionBuilder, Reg};

    fn diamond_loop() -> Function {
        // b0(virtual entry) -> A(1); A -> B(2)|C(3); B,C -> D(4);
        // D -> A (back) | E(5) ret.
        let mut b = FunctionBuilder::new("f", 2);
        let a = b.new_block();
        let bb = b.new_block();
        let cc = b.new_block();
        let dd = b.new_block();
        let ee = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), bb, cc);
        b.switch_to(bb);
        b.jump(dd);
        b.switch_to(cc);
        b.jump(dd);
        b.switch_to(dd);
        b.branch(Reg(1), a, ee);
        b.switch_to(ee);
        b.ret(None);
        b.finish()
    }

    /// The core invariant: for every path, the sum of chord increments
    /// equals the path number from the original numbering.
    fn assert_increments_preserve_numbers(dag: &Dag, cold: &[bool], weights: TreeWeights) {
        let num = number_paths(dag, cold, NumberingOrder::BallLarus);
        let inc = event_counting(dag, cold, &num, weights);
        for p in 0..num.n_paths {
            let path = decode_path(dag, &num, cold, p).expect("valid path");
            let sum: i64 = path.iter().map(|&e| inc[e.index()]).sum();
            assert_eq!(
                sum as u64, p,
                "chord increments must reproduce path number {p}"
            );
        }
    }

    #[test]
    fn increments_preserve_path_numbers_static() {
        let f = diamond_loop();
        let dag = Dag::build(&f, None);
        let cold = vec![false; dag.edge_count()];
        assert_increments_preserve_numbers(&dag, &cold, TreeWeights::Static);
    }

    #[test]
    fn increments_preserve_path_numbers_measured() {
        let f = diamond_loop();
        let mut dag = Dag::build(&f, None);
        // Arbitrary synthetic frequencies.
        for i in 0..dag.edge_count() {
            dag.set_edge_freq(DagEdgeId(i as u32), (i as u64 * 37 + 11) % 97);
        }
        let cold = vec![false; dag.edge_count()];
        assert_increments_preserve_numbers(&dag, &cold, TreeWeights::Measured);
    }

    #[test]
    fn increments_preserve_numbers_with_cold_edges() {
        let f = diamond_loop();
        let dag = Dag::build(&f, None);
        let mut cold = vec![false; dag.edge_count()];
        // Mark A -> C cold.
        let ac = (0..dag.edge_count() as u32)
            .map(DagEdgeId)
            .find(|&e| {
                dag.edge(e).from == ppp_ir::BlockId(1) && dag.edge(e).to == ppp_ir::BlockId(3)
            })
            .unwrap();
        cold[ac.index()] = true;
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        assert!(num.n_paths > 0);
        assert_increments_preserve_numbers(&dag, &cold, TreeWeights::Static);
        // Cold edges never carry increments.
        let inc = event_counting(
            &dag,
            &cold,
            &number_paths(&dag, &cold, NumberingOrder::BallLarus),
            TreeWeights::Static,
        );
        assert_eq!(inc[ac.index()], 0);
    }

    #[test]
    fn hottest_edges_carry_no_increment() {
        let f = diamond_loop();
        let mut dag = Dag::build(&f, None);
        // Make every edge cold except a single hot chain; the spanning
        // tree must absorb the hot chain, leaving inc = 0 there.
        let hot_chain: Vec<DagEdgeId> = (0..dag.edge_count() as u32)
            .map(DagEdgeId)
            .filter(|&e| {
                let d = dag.edge(e);
                // chain b0 -> A -> B -> D -> E
                matches!(
                    (d.from.index(), d.to.index()),
                    (0, 1) | (1, 2) | (2, 4) | (4, 5)
                ) && matches!(d.kind, crate::dag::DagEdgeKind::Real(_))
            })
            .collect();
        assert_eq!(hot_chain.len(), 4);
        for &e in &hot_chain {
            dag.set_edge_freq(e, 1_000_000);
        }
        let cold = vec![false; dag.edge_count()];
        let num = number_paths(&dag, &cold, NumberingOrder::SmartDecreasingFreq);
        let inc = event_counting(&dag, &cold, &num, TreeWeights::Measured);
        for &e in &hot_chain {
            assert_eq!(inc[e.index()], 0, "hot edge {e:?} must carry no increment");
        }
    }

    #[test]
    fn tree_edges_have_zero_increment_count() {
        let f = diamond_loop();
        let dag = Dag::build(&f, None);
        let cold = vec![false; dag.edge_count()];
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        let inc = event_counting(&dag, &cold, &num, TreeWeights::Static);
        // A spanning tree over k reachable nodes has k-1 edges, one of
        // which is the virtual EXIT->ENTRY edge, so k-2 DAG edges are tree
        // edges with inc 0. Chords <= edges - (k-2).
        let nonzero = inc.iter().filter(|&&x| x != 0).count();
        let k = dag.topo().len();
        assert!(nonzero <= dag.edge_count() - (k - 2));
    }
}
