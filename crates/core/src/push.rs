//! Base instrumentation placement and pushing (§3.1, §4.4).
//!
//! Base placement puts `r = 0` on every outgoing edge of `ENTRY` (dummy
//! entry edges get theirs combined with their increment into `r = Val`),
//! `count[r]` on every incoming edge of `EXIT` (dummy exit edges combine
//! with their increment into `count[r + Val]`), and `r += Inc(e)` on every
//! chord with a non-zero increment.
//!
//! Pushing then migrates pure initializations *down* and pure counts *up*,
//! combining them with increments they meet — turning two dynamic ops into
//! one, and often leaving *obvious paths* (§3.2) with a single
//! constant-index count. A migration across a node is legal only when no
//! other edge merges there; **PPP additionally ignores cold edges when
//! checking for merges (§4.4)**, which removes more instrumentation at the
//! price of letting the occasional cold execution record a hot path number
//! (the overcount that coverage accounting later subtracts, §6.2).

use crate::dag::{Dag, DagEdgeId};
use crate::numbering::Numbering;
use crate::plan::{combine, PlanOp};

/// Pushing configuration.
#[derive(Clone, Copy, Debug)]
pub struct PushConfig {
    /// PPP §4.4: ignore cold edges when deciding whether edges merge,
    /// and never place pushed ops on cold edges.
    pub ignore_cold: bool,
    /// Whether `r = c; count[r]` may fold to `count[c]` (free poisoning
    /// mode); see [`combine`].
    pub merge_set_count: bool,
}

/// Places base instrumentation and pushes it to fixpoint.
///
/// Returns the per-edge op lists (indexed by [`DagEdgeId`]); cold edges are
/// left for the poisoning pass.
pub fn place_and_push(
    dag: &Dag,
    cold: &[bool],
    inc: &[i64],
    numbering: &Numbering,
    config: PushConfig,
) -> Vec<Vec<PlanOp>> {
    let ne = dag.edge_count();
    let counted = |e: DagEdgeId| numbering.on_counted_path(dag, e, cold);

    // --- Base placement -------------------------------------------------
    let mut ops: Vec<Vec<PlanOp>> = vec![Vec::new(); ne];
    for i in 0..ne {
        let e = DagEdgeId(i as u32);
        if counted(e) && inc[i] != 0 {
            ops[i] = vec![PlanOp::Add(inc[i])];
        }
    }
    for &e in dag.out_edges(dag.entry) {
        if counted(e) {
            let mut list = vec![PlanOp::Set(0)];
            list.extend_from_slice(&ops[e.index()]);
            ops[e.index()] = combine(&list, config.merge_set_count);
        }
    }
    for &e in dag.in_edges(dag.exit) {
        if counted(e) {
            let mut list = ops[e.index()].clone();
            list.push(PlanOp::Count);
            ops[e.index()] = combine(&list, config.merge_set_count);
        }
    }

    // --- Pushing to fixpoint --------------------------------------------
    let blocking_in = |b: ppp_ir::BlockId, ops_len: usize| -> Vec<DagEdgeId> {
        let _ = ops_len;
        dag.in_edges(b)
            .iter()
            .copied()
            .filter(|&e| !(config.ignore_cold && cold[e.index()]))
            .collect()
    };
    let blocking_out = |b: ppp_ir::BlockId| -> Vec<DagEdgeId> {
        dag.out_edges(b)
            .iter()
            .copied()
            .filter(|&e| !(config.ignore_cold && cold[e.index()]))
            .collect()
    };

    let mut changed = true;
    let mut rounds = 0usize;
    while changed && rounds <= 2 * ne + 2 {
        changed = false;
        rounds += 1;

        // Initialization migration (downward).
        for &w in dag.topo() {
            if w == dag.entry || w == dag.exit {
                continue;
            }
            let ins = blocking_in(w, ne);
            if ins.len() != 1 {
                continue;
            }
            let e = ins[0];
            if cold[e.index()] {
                continue;
            }
            let pure_set = match ops[e.index()].as_slice() {
                [PlanOp::Set(c)] => Some(*c),
                _ => None,
            };
            let Some(c) = pure_set else { continue };
            // Only migrate if at least one eligible out-edge exists to
            // carry the init onward.
            let outs: Vec<DagEdgeId> = dag
                .out_edges(w)
                .iter()
                .copied()
                .filter(|&o| counted(o))
                .collect();
            if outs.is_empty() {
                continue;
            }
            ops[e.index()].clear();
            for o in outs {
                let mut list = vec![PlanOp::Set(c)];
                list.extend_from_slice(&ops[o.index()]);
                ops[o.index()] = combine(&list, config.merge_set_count);
            }
            changed = true;
        }

        // Count migration (upward).
        for &v in dag.topo().iter().rev() {
            if v == dag.entry || v == dag.exit {
                continue;
            }
            let outs = blocking_out(v);
            if outs.len() != 1 {
                continue;
            }
            let e = outs[0];
            if cold[e.index()] {
                continue;
            }
            let pure_count = matches!(ops[e.index()].as_slice(), [PlanOp::Count]);
            if !pure_count {
                continue;
            }
            let ins: Vec<DagEdgeId> = dag
                .in_edges(v)
                .iter()
                .copied()
                .filter(|&i| {
                    if cold[i.index()] {
                        // TPP tallies poisoned paths where they merge; PPP
                        // skips cold edges entirely (their executions then
                        // either overcount downstream or go untallied).
                        !config.ignore_cold
                    } else {
                        counted(i)
                    }
                })
                .collect();
            if ins.is_empty() {
                continue;
            }
            ops[e.index()].clear();
            for i in ins {
                let mut list = ops[i.index()].clone();
                list.push(PlanOp::Count);
                ops[i.index()] = combine(&list, config.merge_set_count);
            }
            changed = true;
        }
    }

    ops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::events::{event_counting, TreeWeights};
    use crate::numbering::{decode_path, number_paths, NumberingOrder};
    use crate::plan::simulate;
    use ppp_ir::{Function, FunctionBuilder, Reg};

    fn full_pipeline(
        f: &Function,
        cold: &[bool],
        config: PushConfig,
    ) -> (Dag, Numbering, Vec<Vec<PlanOp>>) {
        let dag = Dag::build(f, None);
        let num = number_paths(&dag, cold, NumberingOrder::BallLarus);
        let inc = event_counting(&dag, cold, &num, TreeWeights::Static);
        let ops = place_and_push(&dag, cold, &inc, &num, config);
        (dag, num, ops)
    }

    /// Every counted path must execute exactly one count, at its number.
    fn assert_paths_count_correctly(
        dag: &Dag,
        num: &Numbering,
        cold: &[bool],
        ops: &[Vec<PlanOp>],
    ) {
        for p in 0..num.n_paths {
            let path = decode_path(dag, num, cold, p).expect("valid path");
            let lists: Vec<&[PlanOp]> = path.iter().map(|&e| ops[e.index()].as_slice()).collect();
            let counted = simulate(&lists, i64::MIN / 2);
            assert_eq!(
                counted,
                vec![p as i64],
                "path {p} (edges {path:?}) must count exactly its own number"
            );
        }
    }

    fn diamond_loop() -> Function {
        let mut b = FunctionBuilder::new("f", 2);
        let a = b.new_block();
        let bb = b.new_block();
        let cc = b.new_block();
        let dd = b.new_block();
        let ee = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), bb, cc);
        b.switch_to(bb);
        b.jump(dd);
        b.switch_to(cc);
        b.jump(dd);
        b.switch_to(dd);
        b.branch(Reg(1), a, ee);
        b.switch_to(ee);
        b.ret(None);
        b.finish()
    }

    /// A straight chain entry -> x -> y -> exit: pushing should collapse
    /// everything to one constant count.
    #[test]
    fn chain_collapses_to_single_const_count() {
        let mut b = FunctionBuilder::new("chain", 0);
        let (x, y) = (b.new_block(), b.new_block());
        b.jump(x);
        b.switch_to(x);
        b.jump(y);
        b.switch_to(y);
        b.ret(None);
        let f = b.finish();
        let dag = Dag::build(&f, None);
        let cold = vec![false; dag.edge_count()];
        let (dag, num, ops) = full_pipeline(
            &f,
            &cold,
            PushConfig {
                ignore_cold: false,
                merge_set_count: true,
            },
        );
        assert_eq!(num.n_paths, 1);
        let total_ops: usize = ops.iter().map(Vec::len).sum();
        assert_eq!(total_ops, 1, "one CountConst expected, got {ops:?}");
        assert!(ops
            .iter()
            .flatten()
            .all(|o| matches!(o, PlanOp::CountConst(0))));
        assert_paths_count_correctly(&dag, &num, &cold, &ops);
    }

    #[test]
    fn diamond_loop_paths_count_correctly() {
        let f = diamond_loop();
        let cold = vec![false; Dag::build(&f, None).edge_count()];
        let (dag, num, ops) = full_pipeline(
            &f,
            &cold,
            PushConfig {
                ignore_cold: false,
                merge_set_count: true,
            },
        );
        assert!(num.n_paths >= 4);
        assert_paths_count_correctly(&dag, &num, &cold, &ops);
    }

    #[test]
    fn cold_pruned_paths_count_correctly_both_modes() {
        let f = diamond_loop();
        let dag0 = Dag::build(&f, None);
        // Mark A(1) -> C(3) cold.
        let mut cold = vec![false; dag0.edge_count()];
        let ac = (0..dag0.edge_count() as u32)
            .map(DagEdgeId)
            .find(|&e| {
                dag0.edge(e).from == ppp_ir::BlockId(1) && dag0.edge(e).to == ppp_ir::BlockId(3)
            })
            .unwrap();
        cold[ac.index()] = true;
        for ignore_cold in [false, true] {
            let (dag, num, ops) = full_pipeline(
                &f,
                &cold,
                PushConfig {
                    ignore_cold,
                    merge_set_count: true,
                },
            );
            assert_paths_count_correctly(&dag, &num, &cold, &ops);
            // Cold edges never receive pushed instrumentation in
            // ignore-cold mode.
            if ignore_cold {
                assert!(ops[ac.index()].is_empty());
            }
        }
    }

    /// The Figure 5 scenario: with a cold edge merging at M, TPP must stop
    /// pushing above M while PPP pushes through, leaving strictly less
    /// instrumentation on the hot paths.
    #[test]
    fn ppp_pushes_past_cold_merges() {
        // entry -> A; A -> B | I; B..E diamondish chain to M via H;
        // simplified: A -> B | I; B -> H; I -> H; H -> M; M -> N (hot) |
        // O' (cold); N -> O; O and O' -> exit.
        let mut b = FunctionBuilder::new("fig5", 2);
        let a = b.new_block();
        let bb = b.new_block();
        let ii = b.new_block();
        let hh = b.new_block();
        let mm = b.new_block();
        let nn = b.new_block();
        let oo = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), bb, ii);
        b.switch_to(bb);
        b.jump(hh);
        b.switch_to(ii);
        b.jump(hh);
        b.switch_to(hh);
        b.jump(mm);
        b.switch_to(mm);
        b.branch(Reg(1), nn, oo); // M -> N hot, M -> O cold
        b.switch_to(nn);
        b.jump(oo);
        b.switch_to(oo);
        b.ret(None);
        let f = b.finish();
        let dag0 = Dag::build(&f, None);
        let mut cold = vec![false; dag0.edge_count()];
        let mo = (0..dag0.edge_count() as u32)
            .map(DagEdgeId)
            .find(|&e| {
                dag0.edge(e).from == ppp_ir::BlockId(5) && dag0.edge(e).to == ppp_ir::BlockId(7)
            })
            .unwrap();
        cold[mo.index()] = true;

        let (dag_t, num_t, ops_tpp) = full_pipeline(
            &f,
            &cold,
            PushConfig {
                ignore_cold: false,
                merge_set_count: true,
            },
        );
        let (dag_p, num_p, ops_ppp) = full_pipeline(
            &f,
            &cold,
            PushConfig {
                ignore_cold: true,
                merge_set_count: true,
            },
        );
        assert_paths_count_correctly(&dag_t, &num_t, &cold, &ops_tpp);
        assert_paths_count_correctly(&dag_p, &num_p, &cold, &ops_ppp);

        // Dynamic cost on the hot paths: PPP must be <= TPP on every path,
        // and strictly cheaper in total.
        let path_cost = |dag: &Dag, num: &Numbering, ops: &[Vec<PlanOp>]| -> usize {
            (0..num.n_paths)
                .map(|p| {
                    decode_path(dag, num, &cold, p)
                        .unwrap()
                        .iter()
                        .map(|&e| ops[e.index()].len())
                        .sum::<usize>()
                })
                .sum()
        };
        let t = path_cost(&dag_t, &num_t, &ops_tpp);
        let p = path_cost(&dag_p, &num_p, &ops_ppp);
        assert!(p <= t, "PPP pushing must not cost more (ppp={p}, tpp={t})");
    }

    /// Cold executions under PPP pushing overcount a hot path (the §4.4
    /// trade-off) instead of corrupting other counts.
    #[test]
    fn cold_execution_overcounts_hot_path_under_ppp() {
        let f = diamond_loop();
        let dag0 = Dag::build(&f, None);
        let mut cold = vec![false; dag0.edge_count()];
        // Cold: the loop-exit edge D(4) -> E(5).
        let de = (0..dag0.edge_count() as u32)
            .map(DagEdgeId)
            .find(|&e| {
                dag0.edge(e).from == ppp_ir::BlockId(4)
                    && dag0.edge(e).to == ppp_ir::BlockId(5)
                    && matches!(dag0.edge(e).kind, crate::dag::DagEdgeKind::Real(_))
            })
            .unwrap();
        cold[de.index()] = true;
        let (dag, num, ops) = full_pipeline(
            &f,
            &cold,
            PushConfig {
                ignore_cold: true,
                merge_set_count: true,
            },
        );
        assert_paths_count_correctly(&dag, &num, &cold, &ops);
        // Simulate a cold execution: take hot path 0's prefix but exit via
        // the cold edge. It must count at most one index, and if it counts,
        // the index must be a valid hot path number (an overcount), not
        // garbage outside [0, N).
        let hot = decode_path(&dag, &num, &cold, 0).unwrap();
        let mut edges: Vec<DagEdgeId> = hot
            .iter()
            .copied()
            .take_while(|&e| dag.edge(e).from != ppp_ir::BlockId(4))
            .collect();
        edges.push(de);
        let lists: Vec<&[PlanOp]> = edges.iter().map(|&e| ops[e.index()].as_slice()).collect();
        let counted = simulate(&lists, 0);
        for c in counted {
            assert!(
                (0..num.n_paths as i64).contains(&c),
                "cold execution counted invalid index {c}"
            );
        }
    }
}
