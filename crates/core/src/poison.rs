//! Cold-path poisoning: TPP's checked variant and PPP's *free* variant
//! (§3.2, §4.6), plus poison elision.
//!
//! A cold edge must make sure that any execution crossing it cannot be
//! mistaken for a hot path by a later `count[r + c]`. TPP sets `r` to a
//! large negative value and pays for a check at every path end; PPP
//! instead chooses, per cold edge, a poison value `P = N - minΔ` where
//! `[minΔ, maxΔ]` is the range of r-relative values any downstream count
//! could observe — so every poisoned path lands in `[N, ...]`, beyond the
//! hot numbers, with **no check at all**.
//!
//! The same reachability analysis powers *poison elision*: a cold edge
//! from which no r-reading count is observable needs no poison op at all.
//! This is what makes disconnected obvious loops (§3.2) genuinely free:
//! their boundary edges are marked cold, and after pushing there is
//! nothing left downstream for the poison to protect against.

use crate::dag::{Dag, DagEdgeId};
use crate::plan::{combine, PlanOp};

/// The poison constant used in checked mode (TPP's original scheme).
pub const CHECKED_POISON: i64 = i64::MIN / 4;

/// How cold edges are poisoned.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoisonMode {
    /// PPP free poisoning (§4.6): map cold paths into `[N, …)`.
    Free,
    /// TPP checked poisoning (§3.2): large negative value + runtime check.
    Checked,
}

/// Result of the poisoning pass.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PoisonOutcome {
    /// Highest counter index any execution can produce (for array sizing).
    /// At least `n_paths - 1` when there are hot paths.
    pub max_counter_index: u64,
    /// Cold edges that received a poison op.
    pub poisoned: usize,
    /// Cold edges whose poison was elided.
    pub elided: usize,
    /// Whether counts must use the checked (poison-testing) IR variants.
    pub checked: bool,
}

/// Observation interval: the r-relative deltas downstream counts may read.
type Obs = Option<(i64, i64)>;

fn union(a: Obs, b: Obs) -> Obs {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some((lo1, hi1)), Some((lo2, hi2))) => Some((lo1.min(lo2), hi1.max(hi2))),
    }
}

/// Scans one op list: returns (observations relative to list entry,
/// running delta, killed?).
fn scan_list(ops: &[PlanOp]) -> (Obs, i64, bool) {
    let mut obs: Obs = None;
    let mut acc = 0i64;
    for &op in ops {
        match op {
            PlanOp::Add(d) => acc = acc.wrapping_add(d),
            PlanOp::Set(_) => return (obs, acc, true),
            PlanOp::Count => obs = union(obs, Some((acc, acc))),
            PlanOp::CountPlus(a) => {
                let v = acc.wrapping_add(a);
                obs = union(obs, Some((v, v)));
            }
            PlanOp::CountConst(_) => {}
        }
    }
    (obs, acc, false)
}

/// Poisons every cold edge in `ops` (in place) and reports sizing info.
///
/// `n_paths` is the hot path count `N`. Cold edges with no observable
/// downstream r-reading count are elided.
pub fn apply_poisoning(
    dag: &Dag,
    cold: &[bool],
    ops: &mut [Vec<PlanOp>],
    n_paths: u64,
    mode: PoisonMode,
) -> PoisonOutcome {
    // Per-node observation intervals, reverse topological.
    let n_blocks = dag
        .topo()
        .iter()
        .map(|b| b.index() + 1)
        .max()
        .unwrap_or(0)
        .max(dag.exit.index().max(dag.entry.index()) + 1);
    let mut node_obs: Vec<Obs> = vec![None; n_blocks];
    for &v in dag.topo().iter().rev() {
        if v == dag.exit {
            continue;
        }
        let mut acc_obs: Obs = None;
        for &e in dag.out_edges(v) {
            // Cold edges kill (they are poisoned themselves, or provably
            // observe nothing and are elided).
            if cold[e.index()] {
                continue;
            }
            let (own, delta, killed) = scan_list(&ops[e.index()]);
            acc_obs = union(acc_obs, own);
            if !killed {
                if let Some((lo, hi)) = node_obs[dag.edge(e).to.index()] {
                    acc_obs = union(
                        acc_obs,
                        Some((lo.wrapping_add(delta), hi.wrapping_add(delta))),
                    );
                }
            }
        }
        node_obs[v.index()] = acc_obs;
    }

    let n = n_paths as i64;
    let mut out = PoisonOutcome {
        max_counter_index: n_paths.saturating_sub(1),
        poisoned: 0,
        elided: 0,
        checked: mode == PoisonMode::Checked,
    };

    for i in 0..dag.edge_count() {
        if !cold[i] {
            continue;
        }
        let e = DagEdgeId(i as u32);
        // Interval observable once this edge is crossed: its own list (the
        // poison will be prepended before it) plus the target's interval.
        let (own, delta, killed) = scan_list(&ops[i]);
        let mut interval = own;
        if !killed {
            if let Some((lo, hi)) = node_obs[dag.edge(e).to.index()] {
                interval = union(
                    interval,
                    Some((lo.wrapping_add(delta), hi.wrapping_add(delta))),
                );
            }
        }
        let Some((lo, hi)) = interval else {
            out.elided += 1;
            continue; // nothing downstream can observe r: elide
        };
        let poison = match mode {
            PoisonMode::Free => n.wrapping_sub(lo),
            PoisonMode::Checked => CHECKED_POISON,
        };
        let mut list = vec![PlanOp::Set(poison)];
        list.extend_from_slice(&ops[i]);
        ops[i] = combine(&list, mode == PoisonMode::Free);
        out.poisoned += 1;
        if mode == PoisonMode::Free {
            let max_idx = poison.wrapping_add(hi);
            debug_assert!(max_idx >= n, "poisoned indices must land at or above N");
            out.max_counter_index = out.max_counter_index.max(max_idx as u64);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::events::{event_counting, TreeWeights};
    use crate::numbering::{decode_path, number_paths, NumberingOrder};
    use crate::plan::simulate;
    use crate::push::{place_and_push, PushConfig};
    use ppp_ir::{Function, FunctionBuilder, Reg};

    fn diamond_loop() -> Function {
        let mut b = FunctionBuilder::new("f", 2);
        let a = b.new_block();
        let bb = b.new_block();
        let cc = b.new_block();
        let dd = b.new_block();
        let ee = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), bb, cc);
        b.switch_to(bb);
        b.jump(dd);
        b.switch_to(cc);
        b.jump(dd);
        b.switch_to(dd);
        b.branch(Reg(1), a, ee);
        b.switch_to(ee);
        b.ret(None);
        b.finish()
    }

    struct Built {
        dag: Dag,
        num: crate::numbering::Numbering,
        ops: Vec<Vec<PlanOp>>,
        outcome: PoisonOutcome,
        cold: Vec<bool>,
    }

    fn build(f: &Function, cold_pred: impl Fn(&Dag, DagEdgeId) -> bool, mode: PoisonMode) -> Built {
        let dag = Dag::build(f, None);
        let cold: Vec<bool> = (0..dag.edge_count() as u32)
            .map(|i| cold_pred(&dag, DagEdgeId(i)))
            .collect();
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        let inc = event_counting(&dag, &cold, &num, TreeWeights::Static);
        let mut ops = place_and_push(
            &dag,
            &cold,
            &inc,
            &num,
            PushConfig {
                ignore_cold: true,
                merge_set_count: mode == PoisonMode::Free,
            },
        );
        let outcome = apply_poisoning(&dag, &cold, &mut ops, num.n_paths, mode);
        Built {
            dag,
            num,
            ops,
            outcome,
            cold,
        }
    }

    fn cold_ac(dag: &Dag, e: DagEdgeId) -> bool {
        dag.edge(e).from == ppp_ir::BlockId(1) && dag.edge(e).to == ppp_ir::BlockId(3)
    }

    /// Enumerate *all* DAG paths (including through cold edges).
    fn all_paths(dag: &Dag) -> Vec<Vec<DagEdgeId>> {
        let mut out = Vec::new();
        let mut stack = vec![(dag.entry, Vec::new())];
        while let Some((v, path)) = stack.pop() {
            if v == dag.exit {
                out.push(path);
                continue;
            }
            for &e in dag.out_edges(v) {
                let mut p = path.clone();
                p.push(e);
                stack.push((dag.edge(e).to, p));
            }
        }
        out
    }

    #[test]
    fn free_poisoning_keeps_cold_out_of_hot_range() {
        let f = diamond_loop();
        let b = build(&f, cold_ac, PoisonMode::Free);
        let n = b.num.n_paths as i64;
        for path in all_paths(&b.dag) {
            let crosses_cold = path.iter().any(|e| b.cold[e.index()]);
            let lists: Vec<&[PlanOp]> = path.iter().map(|&e| b.ops[e.index()].as_slice()).collect();
            let counted = simulate(&lists, 12345);
            assert!(counted.len() <= 1, "at most one count per path");
            for c in counted {
                if crosses_cold {
                    assert!(
                        c >= n,
                        "cold path counted {c}, inside the hot range [0,{n})"
                    );
                    assert!(c as u64 <= b.outcome.max_counter_index);
                } else {
                    assert!((0..n).contains(&c), "hot path counted {c} outside [0,{n})");
                }
            }
        }
        assert!(!b.outcome.checked);
        assert!(b.outcome.poisoned >= 1);
    }

    #[test]
    fn checked_poisoning_uses_negative_values() {
        let f = diamond_loop();
        let b = build(&f, cold_ac, PoisonMode::Checked);
        let n = b.num.n_paths as i64;
        assert!(b.outcome.checked);
        for path in all_paths(&b.dag) {
            let crosses_cold = path.iter().any(|e| b.cold[e.index()]);
            let lists: Vec<&[PlanOp]> = path.iter().map(|&e| b.ops[e.index()].as_slice()).collect();
            let counted = simulate(&lists, 999);
            for c in counted {
                if crosses_cold {
                    assert!(c < 0, "checked poison must stay negative, got {c}");
                } else {
                    assert!((0..n).contains(&c));
                }
            }
        }
    }

    #[test]
    fn hot_paths_still_count_their_numbers_after_poisoning() {
        let f = diamond_loop();
        let b = build(&f, cold_ac, PoisonMode::Free);
        for p in 0..b.num.n_paths {
            let path = decode_path(&b.dag, &b.num, &b.cold, p).expect("valid");
            let lists: Vec<&[PlanOp]> = path.iter().map(|&e| b.ops[e.index()].as_slice()).collect();
            assert_eq!(simulate(&lists, i64::MIN / 2), vec![p as i64]);
        }
    }

    #[test]
    fn fully_disconnected_region_elides_poison() {
        // Mark *all* of A's outgoing edges cold: nothing downstream of the
        // cold edges can observe r (no counted paths exist at all, N = 0),
        // so every poison is elided.
        let f = diamond_loop();
        let b = build(
            &f,
            |dag, e| dag.edge(e).from == ppp_ir::BlockId(1),
            PoisonMode::Free,
        );
        assert_eq!(b.num.n_paths, 0);
        assert_eq!(b.outcome.poisoned, 0);
        assert!(b.outcome.elided >= 2);
        // No instrumentation at all.
        assert!(b.ops.iter().all(Vec::is_empty));
    }

    #[test]
    fn max_counter_index_bounds_array() {
        let f = diamond_loop();
        let b = build(&f, cold_ac, PoisonMode::Free);
        // Paper bound: at most [N, 3N-1].
        assert!(b.outcome.max_counter_index < 3 * b.num.n_paths.max(1));
    }
}
