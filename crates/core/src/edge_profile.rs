//! Edge-profile instrumentation.
//!
//! The paper takes edge profiles as given (collected by sampling or
//! hardware at 0.5–3% overhead, §2). For a fully self-hosted staged
//! pipeline this module provides the software alternative: one counter
//! per CFG edge, placed with the same split-edge discipline as path
//! instrumentation. Always-on software edge counting is of course more
//! expensive than the sampled/hardware collectors the paper cites — the
//! point of [`edge_instrument`] is functional completeness (collect →
//! persist → optimize → path-profile without any oracle), plus an honest
//! measurement of what naive edge counting costs on the same cost model.

use ppp_ir::{
    Cfg, EdgeRef, FuncId, Inst, Module, ModuleEdgeProfile, ProfOp, TableDecl, TableId, TableKind,
};
use ppp_vm::ProfileStore;

/// The per-function edge-counter layout of an edge-instrumented module.
#[derive(Clone, Debug)]
pub struct EdgeInstrumentation {
    /// The instrumented module (run this).
    pub module: Module,
    /// Per function: its counter table and the edge order used as index.
    pub tables: Vec<(TableId, Vec<EdgeRef>)>,
}

/// Instruments every CFG edge of every function with a constant-index
/// counter bump. Entry counts are recovered as the sum of the entry
/// block's outgoing edges (functions are normalized, so the entry block
/// always has a successor) or `1` path for single-block functions, whose
/// entries are counted with a dedicated slot.
pub fn edge_instrument(module: &Module) -> EdgeInstrumentation {
    let mut out = module.clone();
    let mut tables = Vec::with_capacity(module.functions.len());
    for fid in module.func_ids() {
        let f = module.function(fid);
        let edges = f.edges();
        // Slot layout: one per edge, plus a trailing entry-count slot.
        let table = out.add_table(TableDecl {
            func: fid,
            kind: TableKind::Array {
                size: edges.len() as u64 + 1,
            },
            hot_paths: 0, // not a path table
        });
        let entry_slot = edges.len() as i64;
        let cfg = Cfg::new(f);
        {
            let fo = out.function_mut(fid);
            // Entry counter at function entry.
            fo.block_mut(fo.entry).insts.insert(
                0,
                Inst::Prof(ProfOp::CountConst {
                    table,
                    index: entry_slot,
                }),
            );
            for (i, &e) in edges.iter().enumerate() {
                let op = Inst::Prof(ProfOp::CountConst {
                    table,
                    index: i as i64,
                });
                let src_succs = fo.block(e.from).term.successor_count();
                let target = fo.edge_target(e);
                if src_succs == 1 {
                    fo.block_mut(e.from).insts.push(op);
                } else if cfg.preds(target).len() == 1 {
                    fo.block_mut(target).insts.insert(0, op);
                } else {
                    let mid = ppp_ir::transform::split_edge(fo, e);
                    fo.block_mut(mid).insts.push(op);
                }
            }
        }
        tables.push((table, edges));
    }
    EdgeInstrumentation {
        module: out,
        tables,
    }
}

impl EdgeInstrumentation {
    /// Reads the counters of a run of the instrumented module back into a
    /// [`ModuleEdgeProfile`] shaped like the *original* module.
    pub fn decode(&self, original: &Module, store: &ProfileStore) -> ModuleEdgeProfile {
        let mut profile = ModuleEdgeProfile::zeroed(original);
        for (fi, (table, edges)) in self.tables.iter().enumerate() {
            let fid = FuncId::new(fi);
            let f = original.function(fid);
            let p = profile.func_mut(fid);
            let mut counts = vec![0u64; edges.len() + 1];
            for (k, c) in store.table(*table).iter_counts() {
                if let Some(slot) = counts.get_mut(k as usize) {
                    *slot = c;
                }
            }
            p.set_entries(counts[edges.len()]);
            for (i, &e) in edges.iter().enumerate() {
                p.set_edge(e, counts[i]);
            }
            // Block frequencies: entry count for the entry block, incoming
            // edge sums elsewhere.
            let cfg = Cfg::new(f);
            for b in f.block_ids() {
                let freq = if b == f.entry {
                    counts[edges.len()]
                } else {
                    cfg.preds(b)
                        .iter()
                        .map(|&pe| edges.iter().position(|&x| x == pe).map_or(0, |i| counts[i]))
                        .sum()
                };
                p.set_block(b, freq);
            }
        }
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::normalize_module;
    use ppp_ir::verify_module;
    use ppp_vm::{run, RunOptions};
    use ppp_workloads::{generate, BenchmarkSpec};

    fn workload() -> Module {
        let mut m = generate(&BenchmarkSpec::named("edge-instr").scaled(0.05));
        normalize_module(&mut m);
        m
    }

    #[test]
    fn instrumented_edge_counts_match_the_tracer_exactly() {
        let m = workload();
        let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let reference = traced.edge_profile.unwrap();

        let instr = edge_instrument(&m);
        assert_eq!(verify_module(&instr.module), Ok(()));
        let r = run(&instr.module, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.checksum, traced.checksum, "edge counting is transparent");
        let decoded = instr.decode(&m, &r.store);
        assert_eq!(decoded, reference, "software edge profile must be exact");
    }

    #[test]
    fn edge_profile_drives_identical_instrumentation() {
        use crate::instrument::instrument_module;
        use crate::profiler::ProfilerConfig;
        let m = workload();
        let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let oracle = traced.edge_profile.unwrap();

        let instr = edge_instrument(&m);
        let r = run(&instr.module, "main", &RunOptions::default()).unwrap();
        let software = instr.decode(&m, &r.store);

        let a = instrument_module(&m, Some(&oracle), &ProfilerConfig::ppp());
        let b = instrument_module(&m, Some(&software), &ProfilerConfig::ppp());
        assert_eq!(a.module, b.module, "same profile, same plan");
    }

    #[test]
    fn edge_counting_overhead_is_measurable_but_bounded() {
        let m = workload();
        let base = run(&m, "main", &RunOptions::default()).unwrap();
        let instr = edge_instrument(&m);
        let r = run(&instr.module, "main", &RunOptions::default()).unwrap();
        let oh = r
            .overhead_vs(base.cost)
            .expect("baseline retired instructions");
        assert!(oh > 0.0);
        // Naive always-on edge counting costs one array bump per edge
        // execution — well above the paper's sampled collectors but below
        // a 2x slowdown on these workloads.
        assert!(oh < 1.0, "edge counting overhead {oh} out of range");
    }
}
