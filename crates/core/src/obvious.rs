//! Obvious paths and obvious loops (§3.2).
//!
//! A path is *obvious* when it has a **defining edge** — an edge on no
//! other path — because then the path's frequency equals that edge's
//! frequency and the edge profile predicts it perfectly. TPP and PPP skip
//! instrumentation that the edge profile already answers:
//!
//! - a routine whose counted paths are *all* obvious needs no
//!   instrumentation at all;
//! - a loop whose body paths are all obvious and whose average trip count
//!   is high gets *disconnected* — per the paper's own implementation
//!   (§7.4), its entrances and exits are marked cold, after which pushing
//!   and poison elision leave the body instrumentation-free.

use crate::dag::{Dag, DagEdgeId, DagEdgeKind};
use crate::numbering::Numbering;
use ppp_ir::{FuncEdgeProfile, Function, LoopForest};

/// Enumeration budget for obviousness checks; routines/loops with more
/// counted paths than this are conservatively treated as not obvious.
pub const OBVIOUS_ENUM_CAP: u64 = 64;

/// Returns `Some(true)` if every counted path has a defining edge,
/// `Some(false)` if some path does not, and `None` when the routine has
/// too many paths to check within [`OBVIOUS_ENUM_CAP`].
pub fn all_paths_obvious(dag: &Dag, cold: &[bool], numbering: &Numbering) -> Option<bool> {
    if numbering.n_paths > OBVIOUS_ENUM_CAP {
        return None;
    }
    for p in 0..numbering.n_paths {
        let path = crate::numbering::decode_path(dag, numbering, cold, p)?;
        // An empty path (single-block routine) is trivially obvious: its
        // frequency is the routine's entry count.
        let defining = path.is_empty()
            || path
                .iter()
                .any(|&e| numbering.paths_through(dag, e, cold) == 1);
        if !defining {
            return Some(false);
        }
    }
    Some(true)
}

/// A loop judged obvious and hot enough to disconnect.
#[derive(Clone, Debug)]
pub struct DisconnectedLoop {
    /// Index into the [`LoopForest`]'s loop list.
    pub loop_index: usize,
    /// Estimated average trip count.
    pub trip_count: f64,
    /// DAG edges to mark cold: the loop's entrances, exits, and the
    /// dummies of its back edges.
    pub cold_edges: Vec<DagEdgeId>,
}

/// Finds loops to disconnect: obvious bodies and trip count at least
/// `trip_threshold` (paper: 10). `cold` is the current cold mask (cold
/// edges do not contribute body paths).
pub fn disconnectable_loops(
    f: &Function,
    dag: &Dag,
    forest: &LoopForest,
    profile: &FuncEdgeProfile,
    cold: &[bool],
    trip_threshold: f64,
) -> Vec<DisconnectedLoop> {
    let cfg = ppp_ir::Cfg::new(f);
    let mut out = Vec::new();
    for (li, lp) in forest.loops().iter().enumerate() {
        let entries = lp.entry_edges(&cfg);
        let exits = lp.exit_edges(f);
        let Some(trip) = profile.loop_trip_count(&lp.back_edges, &entries) else {
            continue;
        };
        if trip < trip_threshold {
            continue;
        }
        if !loop_body_obvious(dag, lp, cold) {
            continue;
        }
        let mut cold_ids = Vec::new();
        for e in entries.iter().chain(&exits) {
            if let Some(id) = dag.real_edge(*e) {
                cold_ids.push(id);
            }
        }
        for be in &lp.back_edges {
            if let Some(id) = dag.entry_dummy(*be) {
                cold_ids.push(id);
            }
            if let Some(id) = dag.exit_dummy(*be) {
                cold_ids.push(id);
            }
        }
        out.push(DisconnectedLoop {
            loop_index: li,
            trip_count: trip,
            cold_edges: cold_ids,
        });
    }
    out
}

/// Checks whether every header-to-latch path through the loop body (over
/// non-cold real DAG edges between body blocks) has a defining edge.
fn loop_body_obvious(dag: &Dag, lp: &ppp_ir::NaturalLoop, cold: &[bool]) -> bool {
    let latches: Vec<ppp_ir::BlockId> = lp.back_edges.iter().map(|e| e.from).collect();
    // Enumerate body paths header -> latch with a budget.
    let mut paths: Vec<Vec<DagEdgeId>> = Vec::new();
    let mut stack: Vec<(ppp_ir::BlockId, Vec<DagEdgeId>)> = vec![(lp.header, Vec::new())];
    while let Some((v, path)) = stack.pop() {
        if paths.len() as u64 > OBVIOUS_ENUM_CAP {
            return false; // too many paths to call obvious
        }
        if latches.contains(&v) && (!path.is_empty() || latches.contains(&lp.header)) {
            paths.push(path.clone());
            // A latch may also continue inside the body (e.g. a latch that
            // is not the sole tail); for natural loops the back edge leaves
            // the DAG, so continuing is fine.
        }
        for &e in dag.out_edges(v) {
            if cold[e.index()] {
                continue;
            }
            let edge = dag.edge(e);
            if !matches!(edge.kind, DagEdgeKind::Real(_)) {
                continue;
            }
            if !lp.contains(edge.to) || edge.to == lp.header {
                continue;
            }
            let mut p = path.clone();
            p.push(e);
            stack.push((edge.to, p));
        }
    }
    if paths.is_empty() {
        // A self-loop (header == latch, empty body path) is trivially
        // obvious; otherwise no body path means nothing to profile.
        return true;
    }
    // Edge usage counts across enumerated paths.
    let mut usage: std::collections::HashMap<DagEdgeId, usize> = std::collections::HashMap::new();
    for p in &paths {
        for &e in p {
            *usage.entry(e).or_insert(0) += 1;
        }
    }
    paths
        .iter()
        .all(|p| p.is_empty() || p.iter().any(|e| usage[e] == 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use crate::numbering::{number_paths, NumberingOrder};
    use ppp_ir::{analyze_loops, BlockId, EdgeRef, FunctionBuilder, Reg};

    /// The Figure 4 shape: every path has a defining edge.
    /// entry(0) -> A(1); A -> B(2) | C(3); B -> D(4); C -> D; D ret.
    fn figure4() -> ppp_ir::Function {
        let mut b = FunctionBuilder::new("fig4", 1);
        let a = b.new_block();
        let bb = b.new_block();
        let cc = b.new_block();
        let dd = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), bb, cc);
        b.switch_to(bb);
        b.jump(dd);
        b.switch_to(cc);
        b.jump(dd);
        b.switch_to(dd);
        b.ret(None);
        b.finish()
    }

    /// Two independent diamonds: middle paths share edges, not obvious.
    fn two_diamonds() -> ppp_ir::Function {
        let mut b = FunctionBuilder::new("dd", 2);
        let a = b.new_block();
        let x1 = b.new_block();
        let x2 = b.new_block();
        let m = b.new_block();
        let y1 = b.new_block();
        let y2 = b.new_block();
        let z = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), x1, x2);
        b.switch_to(x1);
        b.jump(m);
        b.switch_to(x2);
        b.jump(m);
        b.switch_to(m);
        b.branch(Reg(1), y1, y2);
        b.switch_to(y1);
        b.jump(z);
        b.switch_to(y2);
        b.jump(z);
        b.switch_to(z);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn single_diamond_is_all_obvious() {
        let f = figure4();
        let dag = Dag::build(&f, None);
        let cold = vec![false; dag.edge_count()];
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        assert_eq!(num.n_paths, 2);
        assert_eq!(all_paths_obvious(&dag, &cold, &num), Some(true));
    }

    #[test]
    fn two_diamonds_not_all_obvious() {
        let f = two_diamonds();
        let dag = Dag::build(&f, None);
        let cold = vec![false; dag.edge_count()];
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        assert_eq!(num.n_paths, 4);
        assert_eq!(all_paths_obvious(&dag, &cold, &num), Some(false));
    }

    #[test]
    fn cold_removal_can_make_remaining_paths_obvious() {
        // Freezing one side of the first diamond leaves 2 paths that both
        // have defining edges (the second diamond's arms).
        let f = two_diamonds();
        let dag = Dag::build(&f, None);
        let mut cold = vec![false; dag.edge_count()];
        let ax2 = (0..dag.edge_count() as u32)
            .map(DagEdgeId)
            .find(|&e| dag.edge(e).from == BlockId(1) && dag.edge(e).to == BlockId(3))
            .unwrap();
        cold[ax2.index()] = true;
        let num = number_paths(&dag, &cold, NumberingOrder::BallLarus);
        assert_eq!(num.n_paths, 2);
        assert_eq!(all_paths_obvious(&dag, &cold, &num), Some(true));
    }

    fn counted_loop(trip: i64) -> (ppp_ir::Module, ppp_ir::FuncId) {
        // main calls f once; f loops `trip` times with a straight body.
        let mut m = ppp_ir::Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let c = mb.constant(trip);
        mb.call_void(ppp_ir::FuncId(1), vec![c]);
        mb.ret(None);
        m.add_function(mb.finish());
        let mut fb = FunctionBuilder::new("f", 1);
        let i = fb.param(0);
        let (hdr, body, exit) = (fb.new_block(), fb.new_block(), fb.new_block());
        fb.jump(hdr);
        fb.switch_to(hdr);
        fb.branch(i, body, exit);
        fb.switch_to(body);
        let one = fb.constant(1);
        fb.binary_to(i, ppp_ir::BinOp::Sub, i, one);
        fb.jump(hdr);
        fb.switch_to(exit);
        fb.ret(None);
        let fid = m.add_function(fb.finish());
        (m, fid)
    }

    #[test]
    fn hot_straight_loop_disconnects() {
        let (m, fid) = counted_loop(50);
        let r = ppp_vm::run(&m, "main", &ppp_vm::RunOptions::default().traced()).unwrap();
        let prof = r.edge_profile.unwrap();
        let f = m.function(fid);
        let dag = Dag::build(f, Some(prof.func(fid)));
        let (_, _, forest) = analyze_loops(f);
        let cold = vec![false; dag.edge_count()];
        let found = disconnectable_loops(f, &dag, &forest, prof.func(fid), &cold, 10.0);
        assert_eq!(found.len(), 1);
        assert!(found[0].trip_count >= 50.0);
        // Cold set includes the loop entrance (0->1... entry edge of the
        // loop is hdr's outside pred edge), the exit edge, and both
        // dummies of the back edge.
        assert_eq!(found[0].cold_edges.len(), 4);
        let back = EdgeRef::new(BlockId(2), 0);
        assert!(found[0]
            .cold_edges
            .contains(&dag.entry_dummy(back).unwrap()));
        assert!(found[0].cold_edges.contains(&dag.exit_dummy(back).unwrap()));
    }

    #[test]
    fn low_trip_loop_stays_connected() {
        let (m, fid) = counted_loop(3);
        let r = ppp_vm::run(&m, "main", &ppp_vm::RunOptions::default().traced()).unwrap();
        let prof = r.edge_profile.unwrap();
        let f = m.function(fid);
        let dag = Dag::build(f, Some(prof.func(fid)));
        let (_, _, forest) = analyze_loops(f);
        let cold = vec![false; dag.edge_count()];
        let found = disconnectable_loops(f, &dag, &forest, prof.func(fid), &cold, 10.0);
        assert!(found.is_empty());
    }

    #[test]
    fn branchy_loop_body_not_obvious_is_kept() {
        // Loop body with two merging diamonds in sequence -> body paths
        // share edges, so the loop must not disconnect even when hot.
        let mut m = ppp_ir::Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let c = mb.constant(100);
        mb.call_void(ppp_ir::FuncId(1), vec![c]);
        mb.ret(None);
        m.add_function(mb.finish());
        let mut fb = FunctionBuilder::new("f", 1);
        let i = fb.param(0);
        let hdr = fb.new_block();
        let d1a = fb.new_block();
        let d1b = fb.new_block();
        let mid = fb.new_block();
        let d2a = fb.new_block();
        let d2b = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.jump(hdr);
        fb.switch_to(hdr);
        fb.branch(i, d1a, exit);
        fb.switch_to(d1a);
        let bound = fb.constant(2);
        let v = fb.rand(bound);
        fb.branch(v, d1b, mid);
        fb.switch_to(d1b);
        fb.jump(mid);
        fb.switch_to(mid);
        let w = fb.rand(bound);
        fb.branch(w, d2a, d2b);
        fb.switch_to(d2a);
        fb.jump(latch);
        fb.switch_to(d2b);
        fb.jump(latch);
        fb.switch_to(latch);
        let one = fb.constant(1);
        fb.binary_to(i, ppp_ir::BinOp::Sub, i, one);
        fb.jump(hdr);
        fb.switch_to(exit);
        fb.ret(None);
        let fid = m.add_function(fb.finish());

        let r = ppp_vm::run(&m, "main", &ppp_vm::RunOptions::default().traced()).unwrap();
        let prof = r.edge_profile.unwrap();
        let f = m.function(fid);
        let dag = Dag::build(f, Some(prof.func(fid)));
        let (_, _, forest) = analyze_loops(f);
        let cold = vec![false; dag.edge_count()];
        let found = disconnectable_loops(f, &dag, &forest, prof.func(fid), &cold, 10.0);
        assert!(found.is_empty(), "non-obvious body must not disconnect");
    }
}
