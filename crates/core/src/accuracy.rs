//! Accuracy of an estimated path profile (§6.1): Wall's weight-matching
//! scheme.
//!
//! The actual hot paths `H_actual` are those whose flow is at least a
//! threshold fraction of total program flow (the paper uses 0.125%). The
//! estimated hot set `H_estimated` is the `|H_actual|` hottest paths of
//! the estimate. Accuracy is the fraction of *actual* hot-path flow the
//! estimate identifies:
//!
//! ```text
//!   Accuracy = F(H_estimated ∩ H_actual) / F(H_actual)
//! ```

use crate::estimate::EstimatedProfile;
use crate::flow::FlowMetric;
use ppp_ir::{FuncId, ModulePathProfile, PathKey};
use std::collections::HashSet;

/// One hot path with its actual flow.
#[derive(Clone, Debug)]
pub struct HotPath {
    /// Owning function.
    pub func: FuncId,
    /// Path identity.
    pub key: PathKey,
    /// Actual flow under the chosen metric.
    pub flow: u64,
}

/// Selects the actual hot paths: flow at least `threshold_ratio` of total
/// program flow, hottest first (deterministic tie-break on identity).
pub fn actual_hot_paths(
    truth: &ModulePathProfile,
    metric: FlowMetric,
    threshold_ratio: f64,
) -> Vec<HotPath> {
    let total: u64 = truth
        .iter()
        .map(|(_, _, s)| metric.flow(s.freq, s.branches))
        .sum();
    let cutoff = (threshold_ratio * total as f64).max(0.0);
    let mut hot: Vec<HotPath> = truth
        .iter()
        .filter_map(|(f, k, s)| {
            let flow = metric.flow(s.freq, s.branches);
            (flow as f64 >= cutoff && flow > 0).then(|| HotPath {
                func: f,
                key: k.clone(),
                flow,
            })
        })
        .collect();
    sort_hot(&mut hot);
    hot
}

fn sort_hot(hot: &mut [HotPath]) {
    hot.sort_by(|a, b| {
        b.flow
            .cmp(&a.flow)
            .then(a.func.cmp(&b.func))
            .then(a.key.start.cmp(&b.key.start))
            .then(a.key.edges.cmp(&b.key.edges))
    });
}

/// Hot-path flow as a fraction of total program flow (Table 2's
/// percentage columns).
pub fn hot_flow_fraction(truth: &ModulePathProfile, metric: FlowMetric, ratio: f64) -> f64 {
    let total: u64 = truth
        .iter()
        .map(|(_, _, s)| metric.flow(s.freq, s.branches))
        .sum();
    if total == 0 {
        return 0.0;
    }
    let hot: u64 = actual_hot_paths(truth, metric, ratio)
        .iter()
        .map(|h| h.flow)
        .sum();
    hot as f64 / total as f64
}

/// Computes accuracy of `estimated` against the exact profile.
///
/// Returns 1.0 when there are no hot paths at all (nothing to predict).
pub fn accuracy(
    truth: &ModulePathProfile,
    estimated: &EstimatedProfile,
    metric: FlowMetric,
    threshold_ratio: f64,
) -> f64 {
    let hot = actual_hot_paths(truth, metric, threshold_ratio);
    if hot.is_empty() {
        return 1.0;
    }
    let denom: u64 = hot.iter().map(|h| h.flow).sum();

    // Top-|H_actual| estimated paths.
    let mut est: Vec<(FuncId, &PathKey, u64)> = estimated
        .iter()
        .map(|(f, k, e)| (f, k, e.flow(metric)))
        .filter(|&(_, _, flow)| flow > 0)
        .collect();
    est.sort_by(|a, b| {
        b.2.cmp(&a.2)
            .then(a.0.cmp(&b.0))
            .then(a.1.start.cmp(&b.1.start))
            .then(a.1.edges.cmp(&b.1.edges))
    });
    est.truncate(hot.len());
    let est_set: HashSet<(FuncId, &PathKey)> = est.iter().map(|&(f, k, _)| (f, k)).collect();

    let matched: u64 = hot
        .iter()
        .filter(|h| est_set.contains(&(h.func, &h.key)))
        .map(|h| h.flow)
        .sum();
    matched as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::EstimatedPath;
    use ppp_ir::{BlockId, EdgeRef, Function, FunctionBuilder, Reg};
    use std::collections::HashMap;

    fn branchy() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(Reg(0), t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    fn key(succ: usize, mid: u32) -> PathKey {
        PathKey {
            start: BlockId(0),
            edges: vec![
                EdgeRef::new(BlockId(0), succ),
                EdgeRef::new(BlockId(mid), 0),
            ],
        }
    }

    fn truth_with(freqs: &[(usize, u32, u64)]) -> ModulePathProfile {
        let f = branchy();
        let mut t = ModulePathProfile::with_capacity(1);
        for &(succ, mid, freq) in freqs {
            t.func_mut(FuncId(0)).record(&f, key(succ, mid), freq);
        }
        t
    }

    fn estimate_with(entries: &[(usize, u32, u64, bool)]) -> EstimatedProfile {
        let mut m: HashMap<PathKey, EstimatedPath> = HashMap::new();
        for &(succ, mid, freq, measured) in entries {
            m.insert(
                key(succ, mid),
                EstimatedPath {
                    freq,
                    branches: 1,
                    measured,
                },
            );
        }
        EstimatedProfile { funcs: vec![m] }
    }

    #[test]
    fn perfect_estimate_scores_one() {
        let truth = truth_with(&[(0, 1, 90), (1, 2, 10)]);
        let est = estimate_with(&[(0, 1, 90, true), (1, 2, 10, true)]);
        assert_eq!(accuracy(&truth, &est, FlowMetric::Branch, 0.00125), 1.0);
    }

    #[test]
    fn wrong_ranking_loses_hot_flow() {
        // Hot threshold keeps both paths; estimate only knows the cold one.
        let truth = truth_with(&[(0, 1, 90), (1, 2, 10)]);
        let est = estimate_with(&[(1, 2, 100, false)]);
        let a = accuracy(&truth, &est, FlowMetric::Branch, 0.00125);
        assert!((a - 0.1).abs() < 1e-9, "only the 10% path matched: {a}");
    }

    #[test]
    fn estimate_truncated_to_hot_count() {
        // One actual hot path; the estimate ranks a bogus path first, so
        // the single estimated slot misses it.
        let truth = truth_with(&[(0, 1, 100)]);
        let est = estimate_with(&[(1, 2, 500, false), (0, 1, 400, false)]);
        let a = accuracy(&truth, &est, FlowMetric::Branch, 0.00125);
        assert_eq!(a, 0.0);
    }

    #[test]
    fn threshold_excludes_cold_paths_from_hot_set() {
        let truth = truth_with(&[(0, 1, 99_900), (1, 2, 100)]);
        // 0.125% of 100_000 = 125 > 100: only one hot path.
        let hot = actual_hot_paths(&truth, FlowMetric::Branch, 0.00125);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].flow, 99_900);
        let frac = hot_flow_fraction(&truth, FlowMetric::Branch, 0.00125);
        assert!((frac - 0.999).abs() < 1e-9);
    }

    #[test]
    fn empty_truth_scores_one() {
        let truth = ModulePathProfile::with_capacity(1);
        let est = estimate_with(&[]);
        assert_eq!(accuracy(&truth, &est, FlowMetric::Branch, 0.00125), 1.0);
    }

    #[test]
    fn unit_and_branch_metrics_differ() {
        let f = branchy();
        let mut truth = ModulePathProfile::with_capacity(1);
        // A 1-branch path and a 0-branch path (start at join, no edges...
        // use the same shape but frequency differences instead).
        truth.func_mut(FuncId(0)).record(&f, key(0, 1), 10);
        truth.func_mut(FuncId(0)).record(
            &f,
            PathKey {
                start: BlockId(3),
                edges: vec![],
            },
            1000,
        );
        // Branch metric: the 0-branch path carries no flow.
        let hot_b = actual_hot_paths(&truth, FlowMetric::Branch, 0.0);
        assert_eq!(hot_b.len(), 1);
        let hot_u = actual_hot_paths(&truth, FlowMetric::Unit, 0.0);
        assert_eq!(hot_u.len(), 2);
        assert_eq!(hot_u[0].flow, 1000);
    }
}
