//! NET — *Next Executing Tail* — Dynamo's hot-path predictor (§2).
//!
//! Dynamo selects likely-hot paths without counting them: a counter per
//! potential trace head (function entries and loop headers) ticks on each
//! arrival, and once a head becomes hot, the **next executing tail** —
//! the very next path starting there — is selected as *the* trace for
//! that head. NET is statistically likely to catch the hottest path, but
//! it commits to **one path per head**: when a head has several "warm"
//! paths instead of a single dominant one, whichever executes next wins,
//! and the rest are invisible. The paper argues this is exactly where
//! path *profiles* (PPP) beat path *sampling* — they see every warm path
//! and their relative weights (§2, §8.1).
//!
//! The predictor consumes the VM tracer's ordered path stream
//! ([`ppp_vm::RunOptions::traced_with_sequence`]).

use crate::accuracy::actual_hot_paths;
use crate::flow::FlowMetric;
use ppp_ir::{BlockId, FuncId, ModulePathProfile, PathKey};
use std::collections::HashMap;

/// NET configuration.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Arrivals at a head before it is considered hot (Dynamo used ~50).
    pub hot_threshold: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self { hot_threshold: 50 }
    }
}

/// The online predictor.
#[derive(Clone, Debug, Default)]
pub struct NetPredictor {
    threshold: u64,
    counters: HashMap<(FuncId, BlockId), u64>,
    traces: HashMap<(FuncId, BlockId), PathKey>,
}

impl NetPredictor {
    /// Creates a predictor.
    pub fn new(config: NetConfig) -> Self {
        Self {
            threshold: config.hot_threshold.max(1),
            ..Self::default()
        }
    }

    /// Observes one completed path (in execution order).
    pub fn observe(&mut self, func: FuncId, key: &PathKey) {
        let head = (func, key.start);
        if self.traces.contains_key(&head) {
            return; // this head already selected its tail
        }
        let c = self.counters.entry(head).or_insert(0);
        *c += 1;
        if *c > self.threshold {
            // The head just became hot: this path is its next executing
            // tail, and the selection is final.
            self.traces.insert(head, key.clone());
        }
    }

    /// Feeds a whole recorded path stream.
    pub fn observe_stream<'a>(&mut self, stream: impl IntoIterator<Item = &'a (FuncId, PathKey)>) {
        for (f, k) in stream {
            self.observe(*f, k);
        }
    }

    /// The selected traces, one per hot head.
    pub fn traces(&self) -> impl Iterator<Item = (FuncId, &PathKey)> {
        self.traces.iter().map(|(&(f, _), k)| (f, k))
    }

    /// Number of selected traces.
    pub fn trace_count(&self) -> usize {
        self.traces.len()
    }
}

/// Fraction of actual hot-path flow covered by NET's selected traces —
/// comparable to a profiler's accuracy (§6.1), but NET is capped at one
/// path per head.
pub fn net_hot_flow_coverage(
    predictor: &NetPredictor,
    truth: &ModulePathProfile,
    metric: FlowMetric,
    hot_ratio: f64,
) -> f64 {
    let hot = actual_hot_paths(truth, metric, hot_ratio);
    if hot.is_empty() {
        return 1.0;
    }
    let selected: std::collections::HashSet<(FuncId, &PathKey)> = predictor.traces().collect();
    let denom: u64 = hot.iter().map(|h| h.flow).sum();
    let num: u64 = hot
        .iter()
        .filter(|h| selected.contains(&(h.func, &h.key)))
        .map(|h| h.flow)
        .sum();
    num as f64 / denom as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{EdgeRef, Function, FunctionBuilder, Reg};

    /// A function whose loop header (b1) has two iteration paths.
    fn two_path_loop() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let hdr = b.new_block();
        let l = b.new_block();
        let r = b.new_block();
        let latch = b.new_block();
        let exit = b.new_block();
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(Reg(0), l, exit);
        b.switch_to(l);
        b.jump(latch);
        b.switch_to(r);
        b.jump(latch);
        b.switch_to(latch);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    fn key_a() -> PathKey {
        PathKey {
            start: BlockId(1),
            edges: vec![
                EdgeRef::new(BlockId(1), 0),
                EdgeRef::new(BlockId(2), 0),
                EdgeRef::new(BlockId(4), 0),
            ],
        }
    }

    fn key_b() -> PathKey {
        PathKey {
            start: BlockId(1),
            edges: vec![
                EdgeRef::new(BlockId(1), 1), // pretend another arm exists
            ],
        }
    }

    #[test]
    fn dominant_path_is_selected() {
        let mut net = NetPredictor::new(NetConfig { hot_threshold: 10 });
        let f = FuncId(0);
        for _ in 0..100 {
            net.observe(f, &key_a());
        }
        assert_eq!(net.trace_count(), 1);
        let (_, k) = net.traces().next().unwrap();
        assert_eq!(k, &key_a());
    }

    #[test]
    fn selection_is_first_tail_after_threshold() {
        // Alternating warm paths: whichever arrives right after the
        // threshold wins — the other is never represented.
        let mut net = NetPredictor::new(NetConfig { hot_threshold: 10 });
        let f = FuncId(0);
        for i in 0..100 {
            let k = if i % 2 == 0 { key_a() } else { key_b() };
            net.observe(f, &k);
        }
        assert_eq!(net.trace_count(), 1, "one trace per head, by design");
    }

    #[test]
    fn cold_heads_select_nothing() {
        let mut net = NetPredictor::new(NetConfig::default());
        let f = FuncId(0);
        for _ in 0..10 {
            net.observe(f, &key_a()); // below the default threshold of 50
        }
        assert_eq!(net.trace_count(), 0);
    }

    #[test]
    fn warm_paths_halve_net_coverage() {
        // Ground truth: two equally-warm iteration paths. NET covers one.
        let f = two_path_loop();
        let mut truth = ModulePathProfile::with_capacity(1);
        truth.func_mut(FuncId(0)).record(&f, key_a(), 500);
        truth.func_mut(FuncId(0)).record(
            &f,
            PathKey {
                start: BlockId(1),
                edges: vec![EdgeRef::new(BlockId(1), 0), EdgeRef::new(BlockId(2), 0)],
            },
            500,
        );
        let mut net = NetPredictor::new(NetConfig { hot_threshold: 10 });
        for _ in 0..60 {
            net.observe(FuncId(0), &key_a());
        }
        let cov = net_hot_flow_coverage(&net, &truth, FlowMetric::Branch, 0.0);
        assert!(cov < 0.8, "NET cannot see both warm paths: {cov}");
        assert!(cov > 0.0);
    }

    #[test]
    fn stream_api_matches_observe() {
        let stream = vec![(FuncId(0), key_a()); 60];
        let mut a = NetPredictor::new(NetConfig { hot_threshold: 10 });
        a.observe_stream(&stream);
        let mut b = NetPredictor::new(NetConfig { hot_threshold: 10 });
        for (f, k) in &stream {
            b.observe(*f, k);
        }
        assert_eq!(a.trace_count(), b.trace_count());
    }
}
