//! Cold-edge identification: TPP's local criterion (§3.2), PPP's global
//! criterion (§4.2), and the self-adjusting loop (§4.3) helper.

use crate::dag::{Dag, DagEdgeId, DagEdgeKind};

/// Thresholds for marking edges cold.
#[derive(Clone, Copy, Debug)]
pub struct ColdCriteria {
    /// Local (TPP): an edge is cold if its frequency is below this
    /// fraction of its source block's frequency (paper: 5%).
    pub local_ratio: f64,
    /// Global (PPP): an edge is cold if its frequency is below this
    /// fraction of total program unit flow (paper: 0.1%); `None` disables
    /// the criterion.
    pub global_ratio: Option<f64>,
    /// Total program unit flow (dynamic path executions program-wide),
    /// the denominator of the global criterion.
    pub program_unit_flow: u64,
}

impl ColdCriteria {
    /// TPP's configuration: local criterion only.
    pub fn local_only(local_ratio: f64) -> Self {
        Self {
            local_ratio,
            global_ratio: None,
            program_unit_flow: 0,
        }
    }
}

/// Marks cold edges of `dag` per the criteria. The mask is indexed by
/// [`DagEdgeId`]. Both dummies of a back edge share the back edge's
/// classification (they have its frequency and source).
pub fn cold_edges(dag: &Dag, criteria: &ColdCriteria) -> Vec<bool> {
    let global_cut = criteria
        .global_ratio
        .map(|r| (r * criteria.program_unit_flow as f64).ceil() as u64);
    (0..dag.edge_count() as u32)
        .map(DagEdgeId)
        .map(|id| {
            let e = dag.edge(id);
            // The CFG source block of the underlying edge: for an entry
            // dummy, that is the *back edge's* source, not ENTRY.
            let src_block = match e.kind {
                DagEdgeKind::Real(r) | DagEdgeKind::ExitDummy { back: r } => r.from,
                DagEdgeKind::EntryDummy { back } => back.from,
            };
            let src_freq = dag.node_freq(src_block);
            if src_freq == 0 {
                return true; // never-executed source: trivially cold
            }
            let local = (e.freq as f64) < criteria.local_ratio * src_freq as f64;
            let global = global_cut.is_some_and(|cut| e.freq < cut);
            local || global
        })
        .collect()
}

/// Merges two cold masks (an edge is cold if either marks it).
pub fn union_cold(a: &[bool], b: &[bool]) -> Vec<bool> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| x || y).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::Dag;
    use ppp_ir::{BlockId, EdgeRef, FuncEdgeProfile, Function, FunctionBuilder, Reg};

    /// entry(0) -> A(1); A -> B(2) | C(3); B,C -> D(4) ret.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f", 1);
        let a = b.new_block();
        let bb = b.new_block();
        let cc = b.new_block();
        let dd = b.new_block();
        b.jump(a);
        b.switch_to(a);
        b.branch(Reg(0), bb, cc);
        b.switch_to(bb);
        b.jump(dd);
        b.switch_to(cc);
        b.jump(dd);
        b.switch_to(dd);
        b.ret(None);
        b.finish()
    }

    fn profiled_dag(hot: u64, cold: u64) -> Dag {
        let f = diamond();
        let mut p = FuncEdgeProfile::zeroed(&f);
        let total = hot + cold;
        p.set_entries(total);
        p.set_block(BlockId(0), total);
        p.set_block(BlockId(1), total);
        p.set_block(BlockId(2), hot);
        p.set_block(BlockId(3), cold);
        p.set_block(BlockId(4), total);
        p.set_edge(EdgeRef::new(BlockId(0), 0), total);
        p.set_edge(EdgeRef::new(BlockId(1), 0), hot);
        p.set_edge(EdgeRef::new(BlockId(1), 1), cold);
        p.set_edge(EdgeRef::new(BlockId(2), 0), hot);
        p.set_edge(EdgeRef::new(BlockId(3), 0), cold);
        Dag::build(&f, Some(&p))
    }

    fn edge_id(dag: &Dag, from: u32, to: u32) -> DagEdgeId {
        (0..dag.edge_count() as u32)
            .map(DagEdgeId)
            .find(|&e| dag.edge(e).from == BlockId(from) && dag.edge(e).to == BlockId(to))
            .unwrap()
    }

    #[test]
    fn local_criterion_marks_biased_edges() {
        let dag = profiled_dag(97, 3); // 3% bias < 5%
        let cold = cold_edges(&dag, &ColdCriteria::local_only(0.05));
        assert!(cold[edge_id(&dag, 1, 3).index()]);
        assert!(!cold[edge_id(&dag, 1, 2).index()]);
        assert!(!cold[edge_id(&dag, 0, 1).index()]);
    }

    #[test]
    fn local_criterion_spares_balanced_edges() {
        let dag = profiled_dag(60, 40);
        let cold = cold_edges(&dag, &ColdCriteria::local_only(0.05));
        assert!(cold.iter().all(|&c| !c));
    }

    #[test]
    fn global_criterion_catches_locally_hot_edges() {
        // A rarely-run function: 40% bias passes the local test, but the
        // edge is negligible against program-wide flow.
        let dag = profiled_dag(60, 40);
        let criteria = ColdCriteria {
            local_ratio: 0.05,
            global_ratio: Some(0.001),
            program_unit_flow: 1_000_000,
        };
        let cold = cold_edges(&dag, &criteria);
        // Every edge in this function has freq <= 100 < 1000 = 0.1% cut.
        assert!(cold.iter().all(|&c| c));
    }

    #[test]
    fn zero_frequency_sources_are_cold() {
        let f = diamond();
        let dag = Dag::build(&f, None); // no profile: all freqs zero
        let cold = cold_edges(&dag, &ColdCriteria::local_only(0.05));
        assert!(cold.iter().all(|&c| c));
    }

    #[test]
    fn union_combines_masks() {
        assert_eq!(
            union_cold(&[true, false, false], &[false, false, true]),
            vec![true, false, true]
        );
    }
}
