//! The end-to-end instrumentation pipeline: PP, TPP, and PPP (§3–4).
//!
//! [`instrument_module`] clones a module and rewrites each routine:
//!
//! 1. build the profiling [`Dag`] (§3.1);
//! 2. **PPP/LC**: skip routines the edge profile already covers (§4.1);
//! 3. mark cold edges — local criterion (§3.2), PPP's global criterion
//!    (§4.2) with the self-adjusting loop (§4.3) — and disconnect obvious
//!    loops (§3.2); skip all-obvious routines;
//! 4. number paths (Fig. 2 / Fig. 6) and run event counting (§3.1/§4.5);
//! 5. place and push instrumentation (§3.1/§4.4);
//! 6. poison cold edges — free (§4.6) or checked (§3.2);
//! 7. declare the counter table (array, or 701×3 hash above 4000 paths)
//!    and lower the op lists onto CFG edges (splitting critical edges).
//!
//! The returned [`ModulePlan`] retains everything needed to *decode*
//! runtime counters back into concrete paths ([`measured_paths`]).

use crate::cold::{cold_edges, union_cold, ColdCriteria};
use crate::dag::{Dag, DagEdgeId, DagEdgeKind};
use crate::events::{event_counting, TreeWeights};
use crate::flow::{definite_flow, FlowMetric};
use crate::numbering::{decode_path, number_paths, Numbering, NumberingOrder};
use crate::obvious::{all_paths_obvious, disconnectable_loops};
use crate::plan::{combine, lower, PlanOp};
use crate::poison::{apply_poisoning, PoisonMode};
use crate::profiler::{ProfilerConfig, ProfilerKind};
use crate::push::{place_and_push, PushConfig};
use ppp_ir::{
    analyze_loops, Cfg, EdgeRef, FuncId, Function, Inst, Module, ModuleEdgeProfile,
    ModulePathProfile, TableDecl, TableId, TableKind,
};
use std::collections::HashMap;

/// Why a routine was left uninstrumented.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum SkipReason {
    /// The profile shows the routine never ran.
    NeverExecuted,
    /// PPP §4.1: edge-profile coverage met the threshold.
    HighCoverage(f64),
    /// Every counted path is obvious (§3.2): the edge profile is exact.
    AllObvious,
    /// Cold marking removed every path.
    NoCountedPaths,
}

/// Whether a lowered op list was inserted at the start or the end of its
/// block.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacePos {
    /// Ops were prepended at the block start (sole-incoming-edge target).
    Prepend,
    /// Ops were appended at the block end (sole-outgoing-edge source, a
    /// freshly split edge block, or the single-block count).
    Append,
}

/// One physical instrumentation insertion: which block received a lowered
/// op list and where. Recorded so `ppp-lint`'s plan-conformance analysis
/// can re-derive the expected `Prof` layout of every block and compare it
/// against the instrumented code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Placement {
    /// Block that received the ops (possibly created by edge splitting).
    pub block: ppp_ir::BlockId,
    /// Start-of-block or end-of-block insertion.
    pub pos: PlacePos,
    /// The lowered profiling ops, in block order.
    pub ops: Vec<ppp_ir::ProfOp>,
}

/// Per-routine instrumentation outcome.
#[derive(Clone, Debug)]
pub struct FuncPlan {
    /// The routine.
    pub func: FuncId,
    /// Whether instrumentation was inserted.
    pub instrumented: bool,
    /// Why not, when not.
    pub skip_reason: Option<SkipReason>,
    /// The profiling DAG (pre-instrumentation CFG).
    pub dag: Dag,
    /// Cold-edge mask.
    pub cold: Vec<bool>,
    /// Path numbering over the pruned DAG (when instrumented).
    pub numbering: Option<Numbering>,
    /// Counter table (when instrumented).
    pub table: Option<TableId>,
    /// Hot path count `N`.
    pub n_paths: u64,
    /// Whether the counter table is hash-backed.
    pub uses_hash: bool,
    /// Self-adjusting-criterion iterations used (§4.3).
    pub sac_iterations: u32,
    /// Obvious loops disconnected.
    pub disconnected_loops: usize,
    /// Final per-DAG-edge op lists (for inspection and tests).
    pub edge_ops: Vec<Vec<PlanOp>>,
    /// Where each lowered op list physically landed (empty when not
    /// instrumented).
    pub placements: Vec<Placement>,
    /// Whether counts use the checked (poison-testing) variants.
    pub checked: bool,
    /// Edge-profile coverage estimate used by LC (branch metric).
    pub lc_coverage: f64,
}

/// A fully planned, instrumented module.
#[derive(Clone, Debug)]
pub struct ModulePlan {
    /// The instrumented clone (run this in the VM).
    pub module: Module,
    /// Per-routine plans, indexed by [`FuncId`].
    pub funcs: Vec<FuncPlan>,
    /// The configuration that produced this plan.
    pub config: ProfilerConfig,
}

impl ModulePlan {
    /// Number of instrumented routines.
    pub fn instrumented_count(&self) -> usize {
        self.funcs.iter().filter(|f| f.instrumented).count()
    }

    /// Total static instrumentation instructions inserted.
    pub fn static_prof_insts(&self) -> usize {
        self.module
            .functions
            .iter()
            .map(Function::prof_inst_count)
            .sum()
    }
}

/// Normalizes every function for profiling: unique exit block and
/// predecessor-free entry. Run this (on both the traced and instrumented
/// copies — they must share block ids) before profiling.
pub fn normalize_module(module: &mut Module) {
    ppp_ir::transform::normalize_for_profiling(module);
}

/// Instruments `module` per `config`.
///
/// `profile` is required for TPP and PPP (they are profile-guided); PP
/// ignores it.
///
/// # Panics
///
/// Panics if TPP/PPP is requested without a profile, or if the module was
/// not [`normalize_module`]d.
pub fn instrument_module(
    module: &Module,
    profile: Option<&ModuleEdgeProfile>,
    config: &ProfilerConfig,
) -> ModulePlan {
    assert!(
        config.kind == ProfilerKind::Pp || profile.is_some(),
        "{} requires an edge profile",
        config.kind.name()
    );

    // Program-wide unit flow (total dynamic paths) for the global cold
    // criterion (§4.2).
    let dags: Vec<Dag> = module
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| Dag::build(f, profile.map(|p| p.func(FuncId::new(i)))))
        .collect();
    let program_unit_flow: u64 = dags.iter().map(Dag::total_path_freq).sum();

    let mut out_module = module.clone();
    let mut funcs = Vec::with_capacity(module.functions.len());
    for (i, dag) in dags.into_iter().enumerate() {
        let fid = FuncId::new(i);
        let plan = plan_function(
            module.function(fid),
            fid,
            dag,
            profile.map(|p| p.func(fid)),
            program_unit_flow,
            config,
            &mut out_module,
        );
        funcs.push(plan);
    }
    ModulePlan {
        module: out_module,
        funcs,
        config: *config,
    }
}

#[allow(clippy::too_many_arguments)]
fn plan_function(
    f: &Function,
    fid: FuncId,
    dag: Dag,
    profile: Option<&ppp_ir::FuncEdgeProfile>,
    program_unit_flow: u64,
    config: &ProfilerConfig,
    out_module: &mut Module,
) -> FuncPlan {
    let ne = dag.edge_count();
    let p = &config.params;
    let mut plan = FuncPlan {
        func: fid,
        instrumented: false,
        skip_reason: None,
        cold: vec![false; ne],
        numbering: None,
        table: None,
        n_paths: 0,
        uses_hash: false,
        sac_iterations: 0,
        disconnected_loops: 0,
        edge_ops: vec![Vec::new(); ne],
        placements: Vec::new(),
        checked: false,
        lc_coverage: 0.0,
        dag,
    };
    let dag = &plan.dag;

    let guided = config.kind != ProfilerKind::Pp;
    if guided && dag.entries() == 0 {
        plan.skip_reason = Some(SkipReason::NeverExecuted);
        return plan;
    }

    // LC (§4.1): coverage the edge profile already provides.
    if guided {
        let total = dag.total_branch_flow();
        plan.lc_coverage = if total == 0 {
            1.0
        } else {
            let df = definite_flow(dag);
            df.entry_map(dag).total_flow(FlowMetric::Branch) as f64 / total as f64
        };
        if config.kind == ProfilerKind::Ppp
            && config.toggles.low_coverage
            && plan.lc_coverage >= p.lc_coverage
        {
            plan.skip_reason = Some(SkipReason::HighCoverage(plan.lc_coverage));
            return plan;
        }
    }

    // Cold edges (§3.2, §4.2) and obvious loops (§3.2).
    let mut sac_iterations = 0u32;
    let mut disconnected_loops = 0usize;
    let cold = if !guided {
        vec![false; ne]
    } else {
        let profile = profile.expect("guided profilers have a profile");
        let (_, _, forest) = analyze_loops(f);
        let mut disconnect = |current: &[bool]| -> Vec<bool> {
            let loops =
                disconnectable_loops(f, dag, &forest, profile, current, p.obvious_loop_trip);
            disconnected_loops = loops.len();
            let mut mask = current.to_vec();
            for l in &loops {
                for &e in &l.cold_edges {
                    mask[e.index()] = true;
                }
            }
            mask
        };
        match config.kind {
            ProfilerKind::Tpp => {
                // TPP applies the local criterion only when it converts a
                // hash-table routine into an array routine (§3.2).
                let none = vec![false; ne];
                let n_full = number_paths(dag, &none, NumberingOrder::BallLarus).n_paths;
                let base = if n_full > p.hash_threshold {
                    let local = cold_edges(dag, &ColdCriteria::local_only(p.cold_local_ratio));
                    let n_pruned = number_paths(dag, &local, NumberingOrder::BallLarus).n_paths;
                    if n_pruned <= p.hash_threshold {
                        local
                    } else {
                        none
                    }
                } else {
                    none
                };
                disconnect(&base)
            }
            ProfilerKind::Ppp => {
                // Local always; global when SAC is enabled (§4.2);
                // self-adjust the global threshold until the routine fits
                // in an array (§4.3).
                let local = cold_edges(dag, &ColdCriteria::local_only(p.cold_local_ratio));
                let mut global_ratio = p.cold_global_ratio;
                let mut current = if config.toggles.global_cold_and_sac {
                    let global = cold_edges(
                        dag,
                        &ColdCriteria {
                            local_ratio: 0.0,
                            global_ratio: Some(global_ratio),
                            program_unit_flow,
                        },
                    );
                    let both = union_cold(&local, &global);
                    // A routine whose *every* edge sits below the global
                    // threshold is usually genuinely cold (skip it), but
                    // long-path routines can carry real branch flow at low
                    // edge frequencies; if the local criterion alone keeps
                    // the routine alive, prefer it over zeroing.
                    if number_paths(dag, &both, NumberingOrder::BallLarus).n_paths == 0
                        && number_paths(dag, &local, NumberingOrder::BallLarus).n_paths > 0
                        && dag.total_branch_flow() as f64
                            > program_unit_flow as f64 * p.global_keep_alive_ratio
                    {
                        local.clone()
                    } else {
                        both
                    }
                } else {
                    local.clone()
                };
                current = disconnect(&current);
                if config.toggles.global_cold_and_sac {
                    // Self-adjusting loop (§4.3): raise the global
                    // threshold until the routine fits in an array — but
                    // never let the escalation destroy the routine's hot
                    // paths entirely. If an iteration would leave zero
                    // counted paths (uniform edge frequencies cross the
                    // threshold all at once), revert to the last useful
                    // mask and accept hashing instead.
                    loop {
                        let n = number_paths(dag, &current, NumberingOrder::BallLarus).n_paths;
                        if n <= p.hash_threshold || sac_iterations >= p.sac_max_iters {
                            break;
                        }
                        sac_iterations += 1;
                        global_ratio *= p.sac_multiplier;
                        let global = cold_edges(
                            dag,
                            &ColdCriteria {
                                local_ratio: 0.0,
                                global_ratio: Some(global_ratio),
                                program_unit_flow,
                            },
                        );
                        let candidate = disconnect(&union_cold(&local, &global));
                        let n_candidate =
                            number_paths(dag, &candidate, NumberingOrder::BallLarus).n_paths;
                        if n_candidate == 0 && n > 0 {
                            break; // keep `current`; the table will hash
                        }
                        current = candidate;
                    }
                }
                current
            }
            ProfilerKind::Pp => unreachable!("handled above"),
        }
    };
    plan.cold = cold;
    plan.sac_iterations = sac_iterations;
    plan.disconnected_loops = disconnected_loops;

    // Numbering (Fig. 2 / Fig. 6).
    let spn = config.kind == ProfilerKind::Ppp && config.toggles.smart_numbering;
    let order = if spn {
        NumberingOrder::SmartDecreasingFreq
    } else {
        NumberingOrder::BallLarus
    };
    let numbering = number_paths(&plan.dag, &plan.cold, order);
    plan.n_paths = numbering.n_paths;
    if numbering.n_paths == 0 {
        plan.skip_reason = Some(SkipReason::NoCountedPaths);
        return plan;
    }

    // All-obvious routines need no instrumentation (§3.2) — the edge
    // profile reconstructs them exactly.
    if guided && all_paths_obvious(&plan.dag, &plan.cold, &numbering) == Some(true) {
        plan.skip_reason = Some(SkipReason::AllObvious);
        plan.numbering = Some(numbering);
        return plan;
    }

    // Event counting (§3.1/§4.5), placement, pushing (§3.1/§4.4).
    let weights = if spn {
        TreeWeights::Measured
    } else {
        TreeWeights::Static
    };
    let inc = event_counting(&plan.dag, &plan.cold, &numbering, weights);
    let checked = config.kind == ProfilerKind::Ppp && !config.toggles.free_poisoning;
    let push_cfg = PushConfig {
        ignore_cold: config.kind == ProfilerKind::Ppp && config.toggles.push_past_cold,
        merge_set_count: !checked,
    };
    let mut ops = place_and_push(&plan.dag, &plan.cold, &inc, &numbering, push_cfg);

    // Poisoning (§3.2/§4.6).
    let mode = if checked {
        PoisonMode::Checked
    } else {
        PoisonMode::Free
    };
    let outcome = apply_poisoning(&plan.dag, &plan.cold, &mut ops, numbering.n_paths, mode);

    // Counter table (§7.4).
    plan.uses_hash = numbering.n_paths > p.hash_threshold;
    let kind = if plan.uses_hash {
        TableKind::Hash {
            slots: p.hash_slots,
            max_probes: p.hash_probes,
        }
    } else {
        TableKind::Array {
            size: outcome.max_counter_index + 1,
        }
    };
    let table = out_module.add_table(TableDecl {
        func: fid,
        kind,
        hot_paths: numbering.n_paths,
    });

    // Lower onto the cloned function.
    let mut placements = apply_ops(
        out_module.function_mut(fid),
        &plan.dag,
        &ops,
        table,
        checked,
    );
    if plan.dag.entry == plan.dag.exit {
        // Single-block routine: its one (empty) path has no edge to carry
        // a count, so count it in the block body.
        let entry = plan.dag.entry;
        let count = ppp_ir::ProfOp::CountConst { table, index: 0 };
        out_module
            .function_mut(fid)
            .block_mut(entry)
            .insts
            .push(Inst::Prof(count));
        placements.push(Placement {
            block: entry,
            pos: PlacePos::Append,
            ops: vec![count],
        });
    }
    plan.placements = placements;

    plan.instrumented = true;
    plan.numbering = Some(numbering);
    plan.table = Some(table);
    plan.edge_ops = ops;
    plan.checked = checked;
    plan
}

/// Physically places per-DAG-edge op lists onto the function's CFG and
/// records where each lowered list landed.
fn apply_ops(
    f: &mut Function,
    dag: &Dag,
    ops: &[Vec<PlanOp>],
    table: TableId,
    checked: bool,
) -> Vec<Placement> {
    // Group by physical CFG edge: both dummies of a back edge land on the
    // back edge, exit-side ops first (they finish the old path before the
    // entry-side ops start the new one).
    let mut exit_side: HashMap<EdgeRef, Vec<PlanOp>> = HashMap::new();
    let mut entry_side: HashMap<EdgeRef, Vec<PlanOp>> = HashMap::new();
    let mut real: HashMap<EdgeRef, Vec<PlanOp>> = HashMap::new();
    for (i, list) in ops.iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        let e = dag.edge(DagEdgeId(i as u32));
        match e.kind {
            DagEdgeKind::Real(r) => {
                real.insert(r, list.clone());
            }
            DagEdgeKind::ExitDummy { back } => {
                exit_side.insert(back, list.clone());
            }
            DagEdgeKind::EntryDummy { back } => {
                entry_side.insert(back, list.clone());
            }
        }
    }
    let mut physical: Vec<(EdgeRef, Vec<PlanOp>)> = Vec::new();
    let mut backs: Vec<EdgeRef> = exit_side.keys().chain(entry_side.keys()).copied().collect();
    backs.sort();
    backs.dedup();
    for back in backs {
        let mut list = exit_side.remove(&back).unwrap_or_default();
        list.extend(entry_side.remove(&back).unwrap_or_default());
        physical.push((back, combine(&list, !checked)));
    }
    let mut reals: Vec<(EdgeRef, Vec<PlanOp>)> = real.into_iter().collect();
    reals.sort_by_key(|(e, _)| *e);
    physical.extend(reals);

    // Pre-instrumentation CFG facts guide placement.
    let cfg = Cfg::new(f);
    let mut placements = Vec::new();
    for (edge, list) in physical {
        let lowered = lower(&list, table, checked);
        let ir_ops: Vec<Inst> = lowered.iter().copied().map(Inst::Prof).collect();
        let src_succs = f.block(edge.from).term.successor_count();
        let target = f.edge_target(edge);
        let (block, pos) = if src_succs == 1 {
            // Sole outgoing edge: append at the source block's end.
            f.block_mut(edge.from).insts.extend(ir_ops);
            (edge.from, PlacePos::Append)
        } else if cfg.preds(target).len() == 1 {
            // Sole incoming edge: prepend at the target block's start.
            let insts = &mut f.block_mut(target).insts;
            insts.splice(0..0, ir_ops);
            (target, PlacePos::Prepend)
        } else {
            // Critical edge: split it.
            let mid = ppp_ir::transform::split_edge(f, edge);
            f.block_mut(mid).insts.extend(ir_ops);
            (mid, PlacePos::Append)
        };
        placements.push(Placement {
            block,
            pos,
            ops: lowered,
        });
    }
    placements
}

/// Decodes runtime counters back into a measured path profile.
///
/// `original` must be the pre-instrumentation module (block/edge ids in
/// the decoded [`ppp_ir::PathKey`]s refer to it). Counts at poisoned
/// indices (at or above `N`) are cold tallies and are not decoded.
pub fn measured_paths(
    plan: &ModulePlan,
    original: &Module,
    store: &ppp_vm::ProfileStore,
) -> ModulePathProfile {
    let mut out = ModulePathProfile::with_capacity(original.functions.len());
    for fp in &plan.funcs {
        let (Some(table), Some(numbering)) = (fp.table, fp.numbering.as_ref()) else {
            continue;
        };
        if !fp.instrumented {
            continue;
        }
        let f = original.function(fp.func);
        for (key, count) in store.table(table).iter_counts() {
            if key >= fp.n_paths {
                continue; // poisoned (cold) tally
            }
            let Some(edges) = decode_path(&fp.dag, numbering, &fp.cold, key) else {
                continue;
            };
            let path_key = fp.dag.path_key(&edges);
            out.func_mut(fp.func).record(f, path_key, count);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::Technique;
    use ppp_ir::{verify_module, BinOp, FunctionBuilder};
    use ppp_vm::{run, RunOptions};

    /// A program with a branchy function driven by correlated randomness:
    /// main calls `work(n)` which loops, branching on a per-iteration
    /// scenario value — plenty of distinct paths.
    fn workload() -> Module {
        let mut m = Module::new();
        let mut mb = FunctionBuilder::new("main", 0);
        let n = mb.constant(200);
        mb.call_void(FuncId(1), vec![n]);
        mb.ret(None);
        m.add_function(mb.finish());

        let mut fb = FunctionBuilder::new("work", 1);
        let i = fb.param(0);
        let hdr = fb.new_block();
        let body = fb.new_block();
        let left = fb.new_block();
        let right = fb.new_block();
        let join = fb.new_block();
        let l2 = fb.new_block();
        let r2 = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.jump(hdr);
        fb.switch_to(hdr);
        fb.branch(i, body, exit);
        fb.switch_to(body);
        let ten = fb.constant(10);
        let s = fb.rand(ten); // scenario 0..10
        let three = fb.constant(3);
        let c1 = fb.binary(BinOp::Lt, s, three);
        fb.branch(c1, left, right);
        fb.switch_to(left);
        fb.emit(s);
        fb.jump(join);
        fb.switch_to(right);
        fb.jump(join);
        fb.switch_to(join);
        // Correlated second branch: same scenario value.
        let c2 = fb.binary(BinOp::Lt, s, three);
        fb.branch(c2, l2, r2);
        fb.switch_to(l2);
        fb.jump(latch);
        fb.switch_to(r2);
        fb.emit(s);
        fb.jump(latch);
        fb.switch_to(latch);
        let one = fb.constant(1);
        fb.binary_to(i, BinOp::Sub, i, one);
        fb.jump(hdr);
        fb.switch_to(exit);
        fb.ret(None);
        m.add_function(fb.finish());
        normalize_module(&mut m);
        m
    }

    fn ground_truth(m: &Module) -> (ModuleEdgeProfile, ModulePathProfile, u64, u64) {
        let r = run(m, "main", &RunOptions::default().traced()).unwrap();
        (
            r.edge_profile.unwrap(),
            r.path_profile.unwrap(),
            r.checksum,
            r.cost,
        )
    }

    fn check_profiler(config: ProfilerConfig) -> (ModulePlan, f64) {
        let m = workload();
        let (edges, truth, checksum, base_cost) = ground_truth(&m);
        let plan = instrument_module(&m, Some(&edges), &config);
        assert_eq!(verify_module(&plan.module), Ok(()), "instrumented IR valid");
        let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
        assert_eq!(
            r.checksum, checksum,
            "instrumentation must not change semantics"
        );
        assert!(r.cost >= base_cost);
        let measured = measured_paths(&plan, &m, &r.store);
        // Every measured hot path must exist in the ground truth, with a
        // plausible frequency (PPP may overcount via cold executions).
        let mut measured_flow = 0u64;
        for (fid, key, stats) in measured.iter() {
            let actual = truth
                .func(fid)
                .paths
                .get(key)
                .unwrap_or_else(|| panic!("measured path {key:?} not in ground truth"));
            assert!(stats.branches == actual.branches);
            measured_flow += stats.freq.min(actual.freq) * u64::from(stats.branches);
        }
        let coverage = measured_flow as f64 / truth.total_branch_flow() as f64;
        (plan, coverage)
    }

    #[test]
    fn pp_measures_everything_exactly() {
        let m = workload();
        let (edges, truth, _, _) = ground_truth(&m);
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
        let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
        let measured = measured_paths(&plan, &m, &r.store);
        // PP with array tables is exact: identical path profiles.
        for (fid, key, stats) in truth.iter() {
            let got = measured
                .func(fid)
                .paths
                .get(key)
                .copied()
                .unwrap_or_else(|| panic!("path {key:?} missing from PP measurement"));
            assert_eq!(got.freq, stats.freq, "PP must count {key:?} exactly");
        }
        assert_eq!(measured.total_unit_flow(), truth.total_unit_flow());
    }

    #[test]
    fn tpp_and_ppp_cover_hot_flow() {
        for config in [ProfilerConfig::tpp(), ProfilerConfig::ppp()] {
            let (plan, coverage) = check_profiler(config);
            assert!(
                coverage > 0.5,
                "{} coverage too low: {coverage}",
                plan.config.label()
            );
        }
    }

    #[test]
    fn ppp_is_cheaper_than_pp_and_tpp() {
        let m = workload();
        let (edges, _, _, base) = ground_truth(&m);
        let cost = |config: ProfilerConfig| {
            let plan = instrument_module(&m, Some(&edges), &config);
            run(&plan.module, "main", &RunOptions::default())
                .unwrap()
                .overhead_vs(base)
                .expect("baseline retired instructions")
        };
        let pp = cost(ProfilerConfig::pp());
        let tpp = cost(ProfilerConfig::tpp());
        let ppp = cost(ProfilerConfig::ppp());
        assert!(ppp <= tpp + 1e-9, "PPP ({ppp}) must not exceed TPP ({tpp})");
        assert!(tpp <= pp + 1e-9, "TPP ({tpp}) must not exceed PP ({pp})");
        assert!(ppp < pp, "PPP ({ppp}) must beat PP ({pp})");
    }

    #[test]
    fn leave_one_out_configs_run_and_verify() {
        let m = workload();
        let (edges, _, checksum, _) = ground_truth(&m);
        for t in Technique::ALL {
            let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp_without(t));
            assert_eq!(verify_module(&plan.module), Ok(()));
            let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
            assert_eq!(r.checksum, checksum, "{t:?} changed semantics");
        }
    }

    #[test]
    fn never_executed_functions_are_skipped_by_guided_profilers() {
        let mut m = workload();
        // Add an uncalled function.
        let mut fb = FunctionBuilder::new("dead", 0);
        fb.ret(None);
        let dead = m.add_function(fb.finish());
        normalize_module(&mut m);
        let (edges, _, _, _) = ground_truth(&m);
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
        assert_eq!(
            plan.funcs[dead.index()].skip_reason,
            Some(SkipReason::NeverExecuted)
        );
        // PP instruments it anyway.
        let pp = instrument_module(&m, None, &ProfilerConfig::pp());
        assert!(pp.funcs[dead.index()].instrumented);
    }
}
