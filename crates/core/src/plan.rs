//! Symbolic instrumentation op lists and their combining algebra (§3.1).
//!
//! Instrumentation is planned per DAG edge as a list of [`PlanOp`]s and
//! normalized by symbolic execution over the path register: consecutive
//! `r = a; r += b` fold to `r = a+b`, `r += a; count[r]` folds to
//! `count[r + a]`, and `r = a; count[r]` folds to the constant-index
//! `count[a]` — exactly the paper's combining rules.
//!
//! Normalization also performs a small liveness argument the paper's
//! pushing relies on: every counted path executes **exactly one** counting
//! op, so the path register is dead immediately after a count unless a
//! later op in the same list re-initializes it (which happens on back
//! edges, where the old path's count and the new path's initialization
//! share one physical edge).

use ppp_ir::{ProfOp, TableId};

/// One symbolic instrumentation operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanOp {
    /// `r = c` (initialization or poisoning).
    Set(i64),
    /// `r += c`.
    Add(i64),
    /// `count[r]++`.
    Count,
    /// `count[r + c]++`.
    CountPlus(i64),
    /// `count[c]++` (does not read the path register).
    CountConst(i64),
}

impl PlanOp {
    /// Returns `true` for the counting forms.
    pub fn is_count(self) -> bool {
        matches!(
            self,
            PlanOp::Count | PlanOp::CountPlus(_) | PlanOp::CountConst(_)
        )
    }

    /// Returns `true` for counting forms that read the path register.
    pub fn reads_r(self) -> bool {
        matches!(self, PlanOp::Count | PlanOp::CountPlus(_))
    }
}

/// Symbolic path-register state relative to the list's entry value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum R {
    /// `r = r_in + delta`.
    Offset(i64),
    /// `r = k`, independent of the entry value.
    Known(i64),
}

/// Normalizes an op list with the paper's combining rules.
///
/// `merge_set_count` controls whether `r = c; count[r]` may fold into
/// `count[c]` — true for free poisoning (§4.6), where any index is a plain
/// slot, and false in checked-poisoning mode when the folded constant
/// would be negative (the runtime check must observe the poisoned
/// register).
pub fn combine(ops: &[PlanOp], merge_set_count: bool) -> Vec<PlanOp> {
    let mut out = Vec::new();
    let mut r = R::Offset(0);
    // Does the machine register currently hold the symbolic value (because
    // we materialized a Set for a checked count)?
    let mut machine_synced = true; // trivially: r == r_in + 0
                                   // Any register op since the last count (or since the start)?
    let mut dirty = false;
    let mut saw_count = false;

    for &op in ops {
        match op {
            PlanOp::Set(c) => {
                r = R::Known(c);
                machine_synced = false;
                dirty = true;
            }
            PlanOp::Add(c) => {
                r = match r {
                    R::Offset(d) => R::Offset(d.wrapping_add(c)),
                    R::Known(k) => R::Known(k.wrapping_add(c)),
                };
                machine_synced = false;
                dirty = true;
            }
            PlanOp::Count | PlanOp::CountPlus(_) => {
                let extra = match op {
                    PlanOp::CountPlus(a) => a,
                    _ => 0,
                };
                match r {
                    R::Known(k) => {
                        let idx = k.wrapping_add(extra);
                        if merge_set_count || idx >= 0 {
                            out.push(PlanOp::CountConst(idx));
                        } else {
                            // Checked mode with a poisoned constant: the
                            // runtime check must see the register.
                            out.push(PlanOp::Set(k));
                            machine_synced = true;
                            out.push(PlanOp::CountPlus(extra));
                        }
                    }
                    R::Offset(d) => {
                        // The count reads r_in + d + extra without the Add
                        // ever being materialized.
                        out.push(PlanOp::CountPlus(d.wrapping_add(extra)));
                    }
                }
                saw_count = true;
                dirty = false;
            }
            PlanOp::CountConst(c) => {
                out.push(PlanOp::CountConst(c));
                saw_count = true;
                // Does not read or consume the register state; a pending
                // Set/Add remains pending (dirty stays as-is).
            }
        }
    }

    // r is live out of the edge iff some downstream count will read it:
    // either this list has no count at all (the path's count is further
    // on), or register ops after the last count started a new path.
    let live_out = !saw_count || dirty;
    if live_out && !machine_synced {
        match r {
            R::Offset(0) => {}
            R::Offset(d) => out.push(PlanOp::Add(d)),
            R::Known(k) => out.push(PlanOp::Set(k)),
        }
    }
    // Cosmetic: `count[r + 0]` is just `count[r]`.
    for op in &mut out {
        if *op == PlanOp::CountPlus(0) {
            *op = PlanOp::Count;
        }
    }
    out
}

/// Lowers a normalized op list to IR profiling ops.
///
/// `checked` converts `count[r]`/`count[r+c]` into the poison-checking
/// variants (§3.2); constant-index counts never need a check.
pub fn lower(ops: &[PlanOp], table: TableId, checked: bool) -> Vec<ProfOp> {
    ops.iter()
        .map(|&op| match op {
            PlanOp::Set(c) => ProfOp::SetR { value: c },
            PlanOp::Add(c) => ProfOp::AddR { value: c },
            PlanOp::Count => {
                if checked {
                    ProfOp::CountRChecked { table }
                } else {
                    ProfOp::CountR { table }
                }
            }
            PlanOp::CountPlus(a) => {
                if checked {
                    ProfOp::CountRPlusChecked { table, addend: a }
                } else {
                    ProfOp::CountRPlus { table, addend: a }
                }
            }
            PlanOp::CountConst(c) => ProfOp::CountConst { table, index: c },
        })
        .collect()
}

/// Dynamic op count of a normalized list (each op executes once when the
/// edge is traversed) — used by tests asserting that pushing never makes
/// instrumentation more expensive.
pub fn dynamic_ops(ops: &[PlanOp]) -> usize {
    ops.len()
}

/// Concretely executes a sequence of op lists (the lists along one path)
/// and returns every counted index, in order.
///
/// `r` starts at `r_in`; this mirrors the VM's semantics exactly and lets
/// tests assert the end-to-end invariant: *every counted path executes
/// exactly one count, at its own path number*.
pub fn simulate(lists: &[&[PlanOp]], r_in: i64) -> Vec<i64> {
    let mut r = r_in;
    let mut counted = Vec::new();
    for list in lists {
        for &op in *list {
            match op {
                PlanOp::Set(c) => r = c,
                PlanOp::Add(c) => r = r.wrapping_add(c),
                PlanOp::Count => counted.push(r),
                PlanOp::CountPlus(a) => counted.push(r.wrapping_add(a)),
                PlanOp::CountConst(c) => counted.push(c),
            }
        }
    }
    counted
}

#[cfg(test)]
mod tests {
    use super::*;
    use PlanOp::*;

    #[test]
    fn set_then_add_folds() {
        assert_eq!(combine(&[Set(0), Add(3)], true), vec![Set(3)]);
        assert_eq!(combine(&[Set(2), Add(3), Add(-1)], true), vec![Set(4)]);
        assert_eq!(combine(&[Add(2), Add(3)], true), vec![Add(5)]);
        assert_eq!(combine(&[Add(2), Add(-2)], true), vec![]);
    }

    #[test]
    fn add_then_count_folds_and_drops_dead_add() {
        // r += 2; count[r]  =>  count[r + 2]; the Add disappears because r
        // is dead after its path's single count (§3.1 combining).
        assert_eq!(combine(&[Add(2), Count], true), vec![CountPlus(2)]);
    }

    #[test]
    fn set_then_count_folds_to_const_and_drops_dead_set() {
        assert_eq!(combine(&[Set(0), Add(1), Count], true), vec![CountConst(1)]);
        assert_eq!(combine(&[Set(5), Count], true), vec![CountConst(5)]);
    }

    #[test]
    fn plain_reg_ops_stay_live() {
        assert_eq!(combine(&[Set(3)], true), vec![Set(3)]);
        assert_eq!(combine(&[Add(-7)], true), vec![Add(-7)]);
    }

    #[test]
    fn back_edge_count_then_reinit() {
        // Exit-side count combined with entry-side init of the next path:
        // count[r + 1], then r = 5 stays live for the new path.
        let got = combine(&[Add(1), Count, Set(0), Add(5)], true);
        assert_eq!(got, vec![CountPlus(1), Set(5)]);
    }

    #[test]
    fn checked_mode_keeps_negative_set_visible() {
        let got = combine(&[Set(-100), Count], false);
        assert_eq!(got, vec![Set(-100), Count]);
    }

    #[test]
    fn checked_mode_merges_nonnegative() {
        assert_eq!(combine(&[Set(3), Count], false), vec![CountConst(3)]);
    }

    #[test]
    fn double_set_last_wins() {
        assert_eq!(combine(&[Set(1), Set(7)], true), vec![Set(7)]);
        assert_eq!(combine(&[Set(1), Add(2), Set(0)], true), vec![Set(0)]);
    }

    #[test]
    fn count_const_does_not_consume_pending_reg_ops() {
        // A pending Set is not consumed by a constant-index count.
        assert_eq!(
            combine(&[Set(4), CountConst(9)], true),
            vec![CountConst(9), Set(4)]
        );
    }

    #[test]
    fn count_without_reg_ops() {
        assert_eq!(combine(&[Count], true), vec![Count]);
        assert_eq!(combine(&[CountConst(2)], true), vec![CountConst(2)]);
    }

    #[test]
    fn lower_maps_ops() {
        use ppp_ir::ProfOp;
        let t = TableId(0);
        let ir = lower(
            &[Set(1), Add(2), Count, CountPlus(3), CountConst(4)],
            t,
            false,
        );
        assert_eq!(
            ir,
            vec![
                ProfOp::SetR { value: 1 },
                ProfOp::AddR { value: 2 },
                ProfOp::CountR { table: t },
                ProfOp::CountRPlus {
                    table: t,
                    addend: 3
                },
                ProfOp::CountConst { table: t, index: 4 },
            ]
        );
        let checked = lower(&[Count, CountPlus(1)], t, true);
        assert_eq!(
            checked,
            vec![
                ProfOp::CountRChecked { table: t },
                ProfOp::CountRPlusChecked {
                    table: t,
                    addend: 1
                },
            ]
        );
    }

    #[test]
    fn dynamic_ops_counts_list_length() {
        assert_eq!(dynamic_ops(&[Set(0), Count]), 2);
        assert_eq!(dynamic_ops(&[]), 0);
    }

    #[test]
    fn combining_never_increases_dynamic_ops() {
        use PlanOp::*;
        let cases: &[&[PlanOp]] = &[
            &[Set(0), Add(1), Add(2), Count],
            &[Add(5), Count, Set(0)],
            &[Set(1), Set(2), Add(3)],
            &[Count],
            &[Add(1), Add(2), Add(3)],
        ];
        for ops in cases {
            assert!(
                dynamic_ops(&combine(ops, true)) <= dynamic_ops(ops),
                "combine made {ops:?} more expensive"
            );
        }
    }
}
