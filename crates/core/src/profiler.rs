//! Profiler configurations: PP, TPP, and PPP with per-technique toggles.
//!
//! The parameter defaults are the paper's (§7.4):
//!
//! - cold edge if below **5%** of its source block's frequency (local) or
//!   **0.1%** of total program unit flow (global, PPP only);
//! - obvious loops disconnect at average trip count ≥ **10**;
//! - PPP skips routines with ≥ **75%** edge-profile coverage;
//! - the self-adjusting criterion raises the global threshold by **50%**
//!   per iteration until the path count drops below the hashing threshold;
//! - routines with more than **4000** possible paths hash into **701**
//!   slots with **3** probes.

/// Which profiler to build (§3, §4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProfilerKind {
    /// Ball–Larus path profiling: full instrumentation, static heuristics.
    Pp,
    /// Joshi et al. targeted path profiling: local cold criterion applied
    /// when it converts hashing to an array, obvious-path/loop
    /// elimination, PP numbering. Free poisoning per the paper's own
    /// implementation note (§7.4).
    Tpp,
    /// This paper's practical path profiling: all six techniques.
    Ppp,
}

impl ProfilerKind {
    /// Short display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            ProfilerKind::Pp => "PP",
            ProfilerKind::Tpp => "TPP",
            ProfilerKind::Ppp => "PPP",
        }
    }
}

/// Numeric thresholds (§7.4).
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Local cold-edge criterion: edge freq below this fraction of its
    /// source block frequency.
    pub cold_local_ratio: f64,
    /// Global cold-edge criterion: edge freq below this fraction of total
    /// program unit flow (PPP).
    pub cold_global_ratio: f64,
    /// Minimum average trip count to disconnect an obvious loop.
    pub obvious_loop_trip: f64,
    /// Skip routines whose edge-profile coverage is at least this (PPP).
    pub lc_coverage: f64,
    /// Multiplier applied to the global criterion per SAC iteration.
    pub sac_multiplier: f64,
    /// Maximum SAC iterations before giving up and hashing.
    pub sac_max_iters: u32,
    /// Keep-alive floor for the global criterion: when zeroing a routine,
    /// fall back to the local criterion if the routine still carries at
    /// least this fraction of total program flow (long-path routines can
    /// matter at low edge frequencies). Not part of the paper's parameter
    /// set; it guards a degenerate case the paper's benchmarks never hit.
    pub global_keep_alive_ratio: f64,
    /// Routines with more possible paths than this use a hash table.
    pub hash_threshold: u64,
    /// Hash table slots.
    pub hash_slots: u64,
    /// Hash probes before a path is lost.
    pub hash_probes: u32,
}

impl Default for Params {
    fn default() -> Self {
        Self {
            cold_local_ratio: 0.05,
            cold_global_ratio: 0.001,
            obvious_loop_trip: 10.0,
            lc_coverage: 0.75,
            sac_multiplier: 1.5,
            sac_max_iters: 20,
            global_keep_alive_ratio: 0.01,
            hash_threshold: 4000,
            hash_slots: 701,
            hash_probes: 3,
        }
    }
}

/// PPP's individually toggleable techniques, for the leave-one-out
/// ablation (§8.3 / Figure 13).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PppToggles {
    /// LC: only instrument routines with low edge-profile coverage (§4.1).
    pub low_coverage: bool,
    /// SAC: the global cold-edge criterion plus its self-adjusting loop
    /// (§4.2–4.3; the paper evaluates them as one technique).
    pub global_cold_and_sac: bool,
    /// Push: ignore cold edges when pushing instrumentation (§4.4).
    pub push_past_cold: bool,
    /// SPN: smart path numbering and profile-driven event counting (§4.5).
    pub smart_numbering: bool,
    /// FP: free cold-path poisoning instead of poison checks (§4.6).
    pub free_poisoning: bool,
}

impl PppToggles {
    /// All techniques enabled (full PPP).
    pub fn all() -> Self {
        Self {
            low_coverage: true,
            global_cold_and_sac: true,
            push_past_cold: true,
            smart_numbering: true,
            free_poisoning: true,
        }
    }
}

/// A named PPP technique, as abbreviated in Figure 13.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Technique {
    /// Self-adjusting global cold edge criterion (SAC).
    Sac,
    /// Free cold-path poisoning (FP).
    Fp,
    /// Pushing instrumentation further (Push).
    Push,
    /// Smart path numbering (SPN).
    Spn,
    /// Instrument routines with low coverage only (LC).
    Lc,
}

impl Technique {
    /// All techniques, in Figure 13's order.
    pub const ALL: [Technique; 5] = [
        Technique::Sac,
        Technique::Fp,
        Technique::Push,
        Technique::Spn,
        Technique::Lc,
    ];

    /// Figure 13 abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Technique::Sac => "SAC",
            Technique::Fp => "FP",
            Technique::Push => "Push",
            Technique::Spn => "SPN",
            Technique::Lc => "LC",
        }
    }
}

/// Full profiler configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProfilerConfig {
    /// Which base profiler.
    pub kind: ProfilerKind,
    /// Thresholds.
    pub params: Params,
    /// PPP technique toggles (ignored for PP/TPP).
    pub toggles: PppToggles,
}

impl ProfilerConfig {
    /// Ball–Larus PP.
    pub fn pp() -> Self {
        Self {
            kind: ProfilerKind::Pp,
            params: Params::default(),
            toggles: PppToggles::all(),
        }
    }

    /// Targeted path profiling.
    pub fn tpp() -> Self {
        Self {
            kind: ProfilerKind::Tpp,
            params: Params::default(),
            toggles: PppToggles::all(),
        }
    }

    /// Practical path profiling, all techniques on.
    pub fn ppp() -> Self {
        Self {
            kind: ProfilerKind::Ppp,
            params: Params::default(),
            toggles: PppToggles::all(),
        }
    }

    /// PPP with one technique disabled (Figure 13's leave-one-out).
    pub fn ppp_without(technique: Technique) -> Self {
        let mut c = Self::ppp();
        match technique {
            Technique::Sac => c.toggles.global_cold_and_sac = false,
            Technique::Fp => c.toggles.free_poisoning = false,
            Technique::Push => c.toggles.push_past_cold = false,
            Technique::Spn => c.toggles.smart_numbering = false,
            Technique::Lc => c.toggles.low_coverage = false,
        }
        c
    }

    /// The baseline for the *one-at-a-time* methodology (§8.3): PPP's
    /// machinery with every §4 technique off. Free poisoning stays on
    /// because the paper's own TPP implementation uses it too (§7.4), so
    /// this baseline is the closest "TPP posture" expressible through the
    /// PPP pipeline.
    pub fn ppp_baseline() -> Self {
        Self {
            kind: ProfilerKind::Ppp,
            params: Params::default(),
            toggles: PppToggles {
                low_coverage: false,
                global_cold_and_sac: false,
                push_past_cold: false,
                smart_numbering: false,
                free_poisoning: true,
            },
        }
    }

    /// One-at-a-time (§8.3): the [`ProfilerConfig::ppp_baseline`] plus
    /// exactly one technique. The paper reports this view makes LC and
    /// SPN visibly beneficial even though leave-one-out does not.
    ///
    /// `Technique::Fp` is excluded: the baseline already free-poisons
    /// (matching the paper's TPP implementation), so there is no
    /// "baseline + FP" distinct configuration.
    pub fn one_at_a_time(technique: Technique) -> Option<Self> {
        if technique == Technique::Fp {
            return None;
        }
        let mut c = Self::ppp_baseline();
        match technique {
            Technique::Sac => c.toggles.global_cold_and_sac = true,
            Technique::Push => c.toggles.push_past_cold = true,
            Technique::Spn => c.toggles.smart_numbering = true,
            Technique::Lc => c.toggles.low_coverage = true,
            Technique::Fp => unreachable!("handled above"),
        }
        Some(c)
    }

    /// Display label ("PPP-FP" etc. for ablations, "TPPbase+SAC" etc. for
    /// the one-at-a-time configurations).
    pub fn label(&self) -> String {
        if self.kind != ProfilerKind::Ppp {
            return self.kind.name().to_owned();
        }
        let all = PppToggles::all();
        if self.toggles == all {
            return "PPP".to_owned();
        }
        // One-at-a-time family: FP on, at most one other technique on.
        if self.toggles.free_poisoning {
            let on: Vec<&str> = [
                (self.toggles.global_cold_and_sac, "SAC"),
                (self.toggles.push_past_cold, "Push"),
                (self.toggles.smart_numbering, "SPN"),
                (self.toggles.low_coverage, "LC"),
            ]
            .iter()
            .filter_map(|&(t, n)| t.then_some(n))
            .collect();
            if on.is_empty() {
                return "TPPbase".to_owned();
            }
            if on.len() == 1 {
                return format!("TPPbase+{}", on[0]);
            }
        }
        let mut off = Vec::new();
        if !self.toggles.global_cold_and_sac {
            off.push("SAC");
        }
        if !self.toggles.free_poisoning {
            off.push("FP");
        }
        if !self.toggles.push_past_cold {
            off.push("Push");
        }
        if !self.toggles.smart_numbering {
            off.push("SPN");
        }
        if !self.toggles.low_coverage {
            off.push("LC");
        }
        format!("PPP-{}", off.join("-"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = Params::default();
        assert_eq!(p.cold_local_ratio, 0.05);
        assert_eq!(p.cold_global_ratio, 0.001);
        assert_eq!(p.obvious_loop_trip, 10.0);
        assert_eq!(p.lc_coverage, 0.75);
        assert_eq!(p.sac_multiplier, 1.5);
        assert_eq!(p.hash_threshold, 4000);
        assert_eq!(p.hash_slots, 701);
        assert_eq!(p.hash_probes, 3);
    }

    #[test]
    fn leave_one_out_flips_exactly_one_toggle() {
        for t in Technique::ALL {
            let c = ProfilerConfig::ppp_without(t);
            let on = [
                c.toggles.low_coverage,
                c.toggles.global_cold_and_sac,
                c.toggles.push_past_cold,
                c.toggles.smart_numbering,
                c.toggles.free_poisoning,
            ];
            assert_eq!(on.iter().filter(|&&x| !x).count(), 1, "{t:?}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(ProfilerConfig::pp().label(), "PP");
        assert_eq!(ProfilerConfig::tpp().label(), "TPP");
        assert_eq!(ProfilerConfig::ppp().label(), "PPP");
        assert_eq!(ProfilerConfig::ppp_without(Technique::Fp).label(), "PPP-FP");
        assert_eq!(
            ProfilerConfig::ppp_without(Technique::Sac).label(),
            "PPP-SAC"
        );
        assert_eq!(Technique::Sac.abbrev(), "SAC");
    }

    #[test]
    fn one_at_a_time_labels_and_exclusion() {
        assert_eq!(ProfilerConfig::ppp_baseline().label(), "TPPbase");
        assert_eq!(
            ProfilerConfig::one_at_a_time(Technique::Lc)
                .unwrap()
                .label(),
            "TPPbase+LC"
        );
        assert_eq!(
            ProfilerConfig::one_at_a_time(Technique::Spn)
                .unwrap()
                .label(),
            "TPPbase+SPN"
        );
        assert!(ProfilerConfig::one_at_a_time(Technique::Fp).is_none());
    }
}
