//! # ppp-bench: benchmark harness for the PPP reproduction
//!
//! Micro-benchmarks (`profilers`, `flow`, `vm`) measure the real
//! wall-clock cost of instrumentation analysis, flow estimation, and
//! instrumented execution using the in-tree [`harness`] (no external
//! benchmarking crates, so the workspace builds offline). The `tables`
//! bench target (harness = false) regenerates every table and figure of
//! the paper in one `cargo bench` pass — see `EXPERIMENTS.md` for the
//! recorded outputs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod harness;
