//! A minimal wall-clock benchmarking harness.
//!
//! Replaces the external benchmarking dependency so `cargo bench` works
//! with no registry access. The protocol is deliberately simple: warm up,
//! size the batch so one measurement takes a few milliseconds, take
//! several batches, and report the best (least-noise) per-iteration time.
//! Results print as `group/name  time/iter  iters` lines.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target duration of one measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(20);
/// Number of measured batches; the fastest is reported.
const BATCHES: usize = 7;

/// Runs `f` repeatedly and prints the best per-iteration wall time.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn bench<R>(group: &str, name: &str, mut f: impl FnMut() -> R) {
    // Warm-up + calibration: time single iterations until we know how
    // many fit in one batch.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(20));
    let per_batch = (BATCH_TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as usize;

    let mut best = Duration::MAX;
    let mut total_iters = 0usize;
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..per_batch {
            black_box(f());
        }
        let elapsed = start.elapsed() / per_batch as u32;
        best = best.min(elapsed);
        total_iters += per_batch;
    }
    println!(
        "{group}/{name:<24} {:>12}  ({total_iters} iters)",
        format_ns(best)
    );
}

/// Runs `f` once and prints the elapsed time (for heavyweight setups
/// where repeated measurement would take too long).
pub fn bench_once<R>(group: &str, name: &str, f: impl FnOnce() -> R) {
    let start = Instant::now();
    black_box(f());
    println!(
        "{group}/{name:<24} {:>12}  (1 iter)",
        format_ns(start.elapsed())
    );
}

fn format_ns(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_the_closure() {
        let mut n = 0u64;
        bench("test", "counter", || {
            n += 1;
            n
        });
        assert!(n > 0);
    }

    #[test]
    fn formats_cover_magnitudes() {
        assert!(format_ns(Duration::from_nanos(5)).ends_with("ns"));
        assert!(format_ns(Duration::from_micros(50)).ends_with("µs"));
        assert!(format_ns(Duration::from_millis(50)).ends_with("ms"));
        assert!(format_ns(Duration::from_secs(50)).ends_with('s'));
    }
}
