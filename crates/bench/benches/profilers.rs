//! Criterion micro-benchmarks: instrumentation *analysis* cost per
//! profiler (the compile-time side the paper discusses in §4.7) and the
//! wall-clock execution overhead of instrumented code (the real-time
//! counterpart of Figure 12's cost-model numbers).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppp_core::{instrument_module, normalize_module, ProfilerConfig};
use ppp_vm::{run, RunOptions};
use ppp_workloads::{generate, BenchmarkSpec};

fn profiler_analysis(c: &mut Criterion) {
    let mut spec = BenchmarkSpec::named("bench-analysis").scaled(0.2);
    spec.explosive_funcs = 1;
    let mut module = generate(&spec);
    normalize_module(&mut module);
    let traced = run(&module, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();

    let mut g = c.benchmark_group("instrumentation-analysis");
    for (label, config) in [
        ("pp", ProfilerConfig::pp()),
        ("tpp", ProfilerConfig::tpp()),
        ("ppp", ProfilerConfig::ppp()),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| instrument_module(&module, Some(&edges), cfg));
        });
    }
    g.finish();
}

fn instrumented_execution(c: &mut Criterion) {
    let spec = BenchmarkSpec::named("bench-exec").scaled(0.1);
    let mut module = generate(&spec);
    normalize_module(&mut module);
    let traced = run(&module, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();

    let mut g = c.benchmark_group("instrumented-execution");
    g.bench_function("baseline", |b| {
        b.iter(|| run(&module, "main", &RunOptions::default()).unwrap())
    });
    for (label, config) in [
        ("pp", ProfilerConfig::pp()),
        ("tpp", ProfilerConfig::tpp()),
        ("ppp", ProfilerConfig::ppp()),
    ] {
        let plan = instrument_module(&module, Some(&edges), &config);
        g.bench_function(label, move |b| {
            b.iter(|| run(&plan.module, "main", &RunOptions::default()).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = profiler_analysis, instrumented_execution
}
criterion_main!(benches);
