//! Micro-benchmarks: instrumentation *analysis* cost per profiler (the
//! compile-time side the paper discusses in §4.7) and the wall-clock
//! execution overhead of instrumented code (the real-time counterpart of
//! Figure 12's cost-model numbers).

use ppp_bench::harness::bench;
use ppp_core::{instrument_module, normalize_module, ProfilerConfig};
use ppp_vm::{run, RunOptions};
use ppp_workloads::{generate, BenchmarkSpec};

fn profiler_analysis() {
    let mut spec = BenchmarkSpec::named("bench-analysis").scaled(0.2);
    spec.explosive_funcs = 1;
    let mut module = generate(&spec);
    normalize_module(&mut module);
    let traced = run(&module, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();

    for (label, config) in [
        ("pp", ProfilerConfig::pp()),
        ("tpp", ProfilerConfig::tpp()),
        ("ppp", ProfilerConfig::ppp()),
    ] {
        bench("instrumentation-analysis", label, || {
            instrument_module(&module, Some(&edges), &config)
        });
    }
}

fn instrumented_execution() {
    let spec = BenchmarkSpec::named("bench-exec").scaled(0.1);
    let mut module = generate(&spec);
    normalize_module(&mut module);
    let traced = run(&module, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();

    bench("instrumented-execution", "baseline", || {
        run(&module, "main", &RunOptions::default()).unwrap()
    });
    for (label, config) in [
        ("pp", ProfilerConfig::pp()),
        ("tpp", ProfilerConfig::tpp()),
        ("ppp", ProfilerConfig::ppp()),
    ] {
        let plan = instrument_module(&module, Some(&edges), &config);
        bench("instrumented-execution", label, || {
            run(&plan.module, "main", &RunOptions::default()).unwrap()
        });
    }
}

fn main() {
    profiler_analysis();
    instrumented_execution();
}
