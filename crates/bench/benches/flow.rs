//! Micro-benchmarks for the flow-estimation algorithms (appendix
//! Figs. 14–16): definite flow, potential flow, and hot-path
//! reconstruction over a profiled module.

use ppp_bench::harness::bench;
use ppp_core::{
    definite_flow, normalize_module, potential_flow, reconstruct, Dag, FlowKind, FlowMetric,
};
use ppp_vm::{run, RunOptions};
use ppp_workloads::{generate, BenchmarkSpec};

fn main() {
    let mut spec = BenchmarkSpec::named("bench-flow").scaled(0.1);
    spec.explosive_funcs = 1;
    let mut module = generate(&spec);
    normalize_module(&mut module);
    let traced = run(&module, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();
    let dags: Vec<Dag> = module
        .func_ids()
        .map(|f| Dag::build(module.function(f), Some(edges.func(f))))
        .collect();
    let total_flow: u64 = dags.iter().map(Dag::total_branch_flow).sum();
    let cutoff = total_flow / 2000;

    bench("flow", "dag-construction", || {
        module
            .func_ids()
            .map(|f| Dag::build(module.function(f), Some(edges.func(f))).edge_count())
            .sum::<usize>()
    });
    bench("flow", "definite-flow", || {
        dags.iter()
            .map(|d| definite_flow(d).entry_map(d).total_paths())
            .sum::<u64>()
    });
    bench("flow", "potential-flow", || {
        dags.iter()
            .map(|d| potential_flow(d).entry_map(d).total_paths())
            .sum::<u64>()
    });
    {
        let analyses: Vec<_> = dags.iter().map(definite_flow).collect();
        bench("flow", "reconstruct-definite", || {
            dags.iter()
                .zip(&analyses)
                .map(|(d, a)| {
                    reconstruct(d, a, FlowKind::Definite, FlowMetric::Branch, 0, 10_000).len()
                })
                .sum::<usize>()
        });
    }
    {
        let analyses: Vec<_> = dags.iter().map(potential_flow).collect();
        bench("flow", "reconstruct-potential", || {
            dags.iter()
                .zip(&analyses)
                .map(|(d, a)| {
                    reconstruct(
                        d,
                        a,
                        FlowKind::Potential,
                        FlowMetric::Branch,
                        cutoff,
                        10_000,
                    )
                    .len()
                })
                .sum::<usize>()
        });
    }
}
