//! Criterion micro-benchmarks for the flow-estimation algorithms
//! (appendix Figs. 14–16): definite flow, potential flow, and hot-path
//! reconstruction over a profiled module.

use criterion::{criterion_group, criterion_main, Criterion};
use ppp_core::{
    definite_flow, normalize_module, potential_flow, reconstruct, Dag, FlowKind, FlowMetric,
};
use ppp_ir::FuncId;
use ppp_vm::{run, RunOptions};
use ppp_workloads::{generate, BenchmarkSpec};

fn flow_algorithms(c: &mut Criterion) {
    let mut spec = BenchmarkSpec::named("bench-flow").scaled(0.1);
    spec.explosive_funcs = 1;
    let mut module = generate(&spec);
    normalize_module(&mut module);
    let traced = run(&module, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();
    let dags: Vec<Dag> = module
        .func_ids()
        .map(|f| Dag::build(module.function(f), Some(edges.func(f))))
        .collect();
    let total_flow: u64 = dags.iter().map(Dag::total_branch_flow).sum();
    let cutoff = total_flow / 2000;

    let mut g = c.benchmark_group("flow");
    g.bench_function("dag-construction", |b| {
        b.iter(|| {
            module
                .func_ids()
                .map(|f| Dag::build(module.function(f), Some(edges.func(f))).edge_count())
                .sum::<usize>()
        })
    });
    g.bench_function("definite-flow", |b| {
        b.iter(|| dags.iter().map(|d| definite_flow(d).entry_map(d).total_paths()).sum::<u64>())
    });
    g.bench_function("potential-flow", |b| {
        b.iter(|| dags.iter().map(|d| potential_flow(d).entry_map(d).total_paths()).sum::<u64>())
    });
    g.bench_function("reconstruct-definite", |b| {
        let analyses: Vec<_> = dags.iter().map(definite_flow).collect();
        b.iter(|| {
            dags.iter()
                .zip(&analyses)
                .map(|(d, a)| {
                    reconstruct(d, a, FlowKind::Definite, FlowMetric::Branch, 0, 10_000).len()
                })
                .sum::<usize>()
        })
    });
    g.bench_function("reconstruct-potential", |b| {
        let analyses: Vec<_> = dags.iter().map(potential_flow).collect();
        b.iter(|| {
            dags.iter()
                .zip(&analyses)
                .map(|(d, a)| {
                    reconstruct(d, a, FlowKind::Potential, FlowMetric::Branch, cutoff, 10_000)
                        .len()
                })
                .sum::<usize>()
        })
    });
    g.finish();
    let _ = FuncId(0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = flow_algorithms
}
criterion_main!(benches);
