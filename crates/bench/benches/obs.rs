//! Micro-benchmarks for the observability layer: the no-op fast path
//! (what every production pipeline run pays), the collecting path, the
//! metrics registry, and the render/serialize surfaces.

use ppp_bench::harness::bench;
use ppp_obs::{ObsCtx, Registry};

fn spans() {
    let noop = ObsCtx::noop();
    bench("obs", "span-noop", || {
        let mut s = noop.span("bench.span");
        s.set("k", 1u64);
    });

    let (collecting, sink) = ObsCtx::collecting();
    bench("obs", "span-collect", || {
        let mut s = collecting.span("bench.span");
        s.set("k", 1u64);
    });
    println!("obs: {} records collected", sink.len());

    bench("obs", "event-noop", || {
        noop.event(
            ppp_obs::Level::Info,
            "bench.event",
            &[("k", ppp_obs::Value::from(1u64))],
        );
    });
}

fn metrics() {
    let reg = Registry::new();
    let labels = [("bench", "mcf"), ("profiler", "PPP")];
    bench("obs", "counter-inc", || {
        reg.inc("ppp_bench_iterations_total", &labels);
    });
    bench("obs", "gauge-set", || {
        reg.set_gauge("ppp_bench_gauge", &labels, 42.0);
    });
    let mut v = 1u64;
    bench("obs", "histogram-observe", || {
        v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
        reg.observe("ppp_bench_histogram", &labels, v >> 40);
    });
    bench("obs", "render-prometheus", || reg.render_prometheus());
    bench("obs", "render-json", || reg.to_json());
}

fn main() {
    spans();
    metrics();
}
