//! The paper-regeneration harness: running `cargo bench --bench tables`
//! executes the full 18-benchmark pipeline and prints every table and
//! figure of the paper's evaluation section (Tables 1–2, Figures 9–13).
//!
//! Control the workload scale with `PPP_SCALE` (default 0.3; the recorded
//! outputs in EXPERIMENTS.md use the default).

use ppp_repro::{all_reports, run_suite, PipelineOptions};

fn main() {
    // Criterion-style filter arguments are accepted and ignored; this
    // harness always regenerates everything.
    let scale = std::env::var("PPP_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let options = PipelineOptions {
        scale,
        ablations: true,
        ..PipelineOptions::default()
    };
    eprintln!("[tables] regenerating all tables and figures at scale {scale}");
    let start = std::time::Instant::now();
    let runs = run_suite(&options);
    println!("{}", all_reports(&runs));
    eprintln!("[tables] done in {:.1?}", start.elapsed());
}
