//! Criterion micro-benchmarks for the execution substrate: raw
//! interpretation speed, tracing cost, and counter-table operations.

use criterion::{criterion_group, criterion_main, Criterion};
use ppp_core::normalize_module;
use ppp_ir::TableKind;
use ppp_vm::{run, CounterTable, RunOptions};
use ppp_workloads::{generate, BenchmarkSpec};

fn interpreter(c: &mut Criterion) {
    let mut module = generate(&BenchmarkSpec::named("bench-vm").scaled(0.1));
    normalize_module(&mut module);

    let mut g = c.benchmark_group("vm");
    let steps = run(&module, "main", &RunOptions::default()).unwrap().steps;
    g.throughput(criterion::Throughput::Elements(steps));
    g.bench_function("interpret", |b| {
        b.iter(|| run(&module, "main", &RunOptions::default()).unwrap())
    });
    g.bench_function("interpret-traced", |b| {
        b.iter(|| run(&module, "main", &RunOptions::default().traced()).unwrap())
    });
    g.finish();
}

fn counter_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("counters");
    g.bench_function("array-bump", |b| {
        let mut t = CounterTable::new(TableKind::Array { size: 4096 });
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 257) % 4096;
            t.bump(k);
        })
    });
    g.bench_function("hash-bump-701x3", |b| {
        let mut t = CounterTable::new(TableKind::Hash {
            slots: 701,
            max_probes: 3,
        });
        let mut k = 0i64;
        b.iter(|| {
            k = (k + 257) % 600;
            t.bump(k);
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = interpreter, counter_tables
}
criterion_main!(benches);
