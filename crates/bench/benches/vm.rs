//! Micro-benchmarks for the execution substrate: raw interpretation
//! speed, tracing cost, and counter-table operations.

use ppp_bench::harness::bench;
use ppp_core::normalize_module;
use ppp_ir::TableKind;
use ppp_vm::{run, CounterTable, RunOptions};
use ppp_workloads::{generate, BenchmarkSpec};

fn interpreter() {
    let mut module = generate(&BenchmarkSpec::named("bench-vm").scaled(0.1));
    normalize_module(&mut module);

    let steps = run(&module, "main", &RunOptions::default()).unwrap().steps;
    println!("vm: {steps} interpreted steps per run");
    bench("vm", "interpret", || {
        run(&module, "main", &RunOptions::default()).unwrap()
    });
    bench("vm", "interpret-traced", || {
        run(&module, "main", &RunOptions::default().traced()).unwrap()
    });
}

fn counter_tables() {
    {
        let mut t = CounterTable::new(TableKind::Array { size: 4096 });
        let mut k = 0i64;
        bench("counters", "array-bump", || {
            k = (k + 257) % 4096;
            t.bump(k);
        });
    }
    {
        let mut t = CounterTable::new(TableKind::Hash {
            slots: 701,
            max_probes: 3,
        });
        let mut k = 0i64;
        bench("counters", "hash-bump-701x3", || {
            k = (k + 257) % 600;
            t.bump(k);
        });
    }
}

fn main() {
    interpreter();
    counter_tables();
}
