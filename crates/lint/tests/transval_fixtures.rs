//! Translation-validation fixtures: every `PPP3xx` code has a targeted
//! tampering that provably trips it, untampered transform witnesses
//! validate clean, and — as a fuzz invariant — the full optimizer
//! pipeline over all 18 suite benchmarks validates clean end to end.

use ppp_ir::{
    BinOp, BlockId, EdgeRef, FuncId, FunctionBuilder, Inst, Module, ModuleEdgeProfile,
    ScalarFuncWitness, ScalarWitness, Terminator, TransformWitness,
};
use ppp_lint::{check_profile, check_transform, Code};
use ppp_opt::{
    inline_module_witnessed, optimize_module_witnessed, unroll_module_witnessed, InlineOptions,
    UnrollOptions,
};
use ppp_vm::{run, HaltReason, RunOptions};

/// `main`: `i = n; while (i) { emit i; i -= 1 }` — a canonical counted
/// loop the unroller test-elides.
fn counted_module(n: i64) -> Module {
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("main", 0);
    let c = b.constant(n);
    let i = b.copy(c);
    let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
    b.jump(hdr);
    b.switch_to(hdr);
    b.branch(i, body, exit);
    b.switch_to(body);
    b.emit(i);
    let one = b.constant(1);
    b.binary_to(i, BinOp::Sub, i, one);
    b.jump(hdr);
    b.switch_to(exit);
    b.ret(None);
    m.add_function(b.finish());
    m
}

/// `main` loops calling `double(i)`; the callee is hot and tiny, so the
/// inliner always splices it.
fn call_module() -> Module {
    let mut m = Module::new();
    let mut mb = FunctionBuilder::new("main", 0);
    let n = mb.constant(50);
    let i = mb.copy(n);
    let (hdr, body, exit) = (mb.new_block(), mb.new_block(), mb.new_block());
    mb.jump(hdr);
    mb.switch_to(hdr);
    mb.branch(i, body, exit);
    mb.switch_to(body);
    let d = mb.call(FuncId(1), vec![i]);
    mb.emit(d);
    let one = mb.constant(1);
    mb.binary_to(i, BinOp::Sub, i, one);
    mb.jump(hdr);
    mb.switch_to(exit);
    mb.ret(None);
    m.add_function(mb.finish());

    let mut db = FunctionBuilder::new("double", 1);
    let x = db.param(0);
    let two = db.constant(2);
    let y = db.binary(BinOp::Mul, x, two);
    db.ret(Some(y));
    m.add_function(db.finish());
    m
}

fn traced(m: &Module) -> ModuleEdgeProfile {
    let r = run(m, "main", &RunOptions::default().traced()).unwrap();
    assert_eq!(r.halt, HaltReason::Finished);
    r.edge_profile.unwrap()
}

/// Unrolls `counted_module` and returns (source, witness, optimized).
fn unrolled_counted() -> (Module, TransformWitness, Module) {
    let mut m = counted_module(100);
    let profile = traced(&m);
    let source = m.clone();
    let (report, witness) = unroll_module_witnessed(&mut m, &profile, &UnrollOptions::default());
    assert_eq!(report.counted_unrolled, 1);
    (source, witness, m)
}

/// Inlines `call_module` and returns (source, witness, optimized).
fn inlined() -> (Module, TransformWitness, Module) {
    let mut m = call_module();
    let profile = traced(&m);
    let source = m.clone();
    let opts = InlineOptions {
        code_bloat: 1.0,
        max_callee_size: 200,
    };
    let (report, witness) = inline_module_witnessed(&mut m, &profile, &opts);
    assert_eq!(report.inlined_sites, 1);
    (source, witness, m)
}

// --- clean runs -----------------------------------------------------------

#[test]
fn untampered_inline_witness_validates_clean() {
    let (source, witness, optimized) = inlined();
    let r = check_transform(&source, &witness, &optimized);
    assert!(r.is_empty(), "expected clean, got:\n{r}");
}

#[test]
fn untampered_counted_unroll_validates_clean() {
    let (source, witness, optimized) = unrolled_counted();
    let r = check_transform(&source, &witness, &optimized);
    assert!(r.is_empty(), "expected clean, got:\n{r}");
}

#[test]
fn untampered_generic_unroll_validates_clean() {
    // A while-style loop (condition re-drawn each iteration) takes the
    // generic, test-retained mode.
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("main", 0);
    let bound = b.constant(40);
    let cond = b.rand(bound);
    let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
    b.jump(hdr);
    b.switch_to(hdr);
    b.branch(cond, body, exit);
    b.switch_to(body);
    b.emit(cond);
    let v = b.rand(bound);
    b.copy_to(cond, v);
    b.jump(hdr);
    b.switch_to(exit);
    b.ret(None);
    m.add_function(b.finish());

    let profile = traced(&m);
    let source = m.clone();
    let (report, witness) = unroll_module_witnessed(&mut m, &profile, &UnrollOptions::default());
    assert_eq!(report.generic_unrolled, 1);
    let r = check_transform(&source, &witness, &m);
    assert!(r.is_empty(), "expected clean, got:\n{r}");
}

#[test]
fn untampered_scalar_witness_validates_clean() {
    let mut m = call_module();
    let source = m.clone();
    let (_, witness) = optimize_module_witnessed(&mut m);
    let r = check_transform(&source, &witness, &m);
    assert!(r.is_empty(), "expected clean, got:\n{r}");
}

#[test]
fn traced_profile_checks_clean() {
    let m = counted_module(40);
    let profile = traced(&m);
    assert!(check_profile(&m, &profile).is_empty());
}

// --- PPP301: witness shape ------------------------------------------------

#[test]
fn truncated_scalar_origin_trips_ppp301() {
    let m = counted_module(10);
    let witness = TransformWitness::Scalar(ScalarWitness {
        funcs: vec![ScalarFuncWitness {
            origin: vec![BlockId(0)], // function has 4 blocks
        }],
    });
    let r = check_transform(&m, &witness, &m);
    assert!(r.has(Code::WitnessShape), "got:\n{r}");
}

#[test]
fn corrupted_unroll_replica_id_trips_ppp301() {
    let (source, mut witness, optimized) = unrolled_counted();
    let TransformWitness::Unroll(w) = &mut witness else {
        unreachable!()
    };
    // Claim a replica landed at a block id the replay never allocates.
    w.loops[0].copies[0][0] = BlockId(0);
    let r = check_transform(&source, &witness, &optimized);
    assert!(r.has(Code::WitnessShape), "got:\n{r}");
}

// --- PPP302: simulation relation ------------------------------------------

#[test]
fn retargeted_edge_trips_ppp302() {
    let m = counted_module(10);
    let mut opt = m.clone();
    // b0 jumps to the loop header in the source; send it into the body
    // instead — an edge with no source counterpart under the identity map.
    opt.functions[0].blocks[0].term = Terminator::Jump { target: BlockId(2) };
    let witness = TransformWitness::Scalar(ScalarWitness {
        funcs: vec![ScalarFuncWitness::identity(m.functions[0].blocks.len())],
    });
    let r = check_transform(&m, &witness, &opt);
    assert!(r.has(Code::SimulationBroken), "got:\n{r}");
}

// --- PPP303: clone fidelity -----------------------------------------------

#[test]
fn tampered_clone_constant_trips_ppp303() {
    let (source, witness, mut optimized) = unrolled_counted();
    let TransformWitness::Unroll(w) = &witness else {
        unreachable!()
    };
    // Change the decrement constant inside one replica: pure code drift,
    // same side-effect sequence.
    let replica = w.loops[0].copies[1][0];
    let tampered = optimized.functions[0].blocks[replica.index()]
        .insts
        .iter_mut()
        .find_map(|i| match i {
            Inst::Const { value, .. } => {
                *value = 2;
                Some(())
            }
            _ => None,
        });
    assert!(tampered.is_some());
    let r = check_transform(&source, &witness, &optimized);
    assert!(r.has(Code::CloneMismatch), "got:\n{r}");
}

// --- PPP304: side-effect preservation -------------------------------------

#[test]
fn dropped_emit_in_clone_trips_ppp304() {
    let (source, witness, mut optimized) = unrolled_counted();
    let TransformWitness::Unroll(w) = &witness else {
        unreachable!()
    };
    let replica = w.loops[0].copies[2][0];
    let insts = &mut optimized.functions[0].blocks[replica.index()].insts;
    let before = insts.len();
    insts.retain(|i| !matches!(i, Inst::Emit { .. }));
    assert!(insts.len() < before);
    let r = check_transform(&source, &witness, &optimized);
    assert!(r.has(Code::EffectMismatch), "got:\n{r}");
}

#[test]
fn dropped_store_under_scalar_witness_trips_ppp304() {
    let mut b = FunctionBuilder::new("main", 0);
    let addr = b.constant(3);
    let val = b.constant(9);
    b.store(addr, val);
    b.ret(None);
    let mut m = Module::new();
    m.add_function(b.finish());
    let mut opt = m.clone();
    opt.functions[0].blocks[0]
        .insts
        .retain(|i| !matches!(i, Inst::Store { .. }));
    let witness = TransformWitness::Scalar(ScalarWitness {
        funcs: vec![ScalarFuncWitness::identity(1)],
    });
    let r = check_transform(&m, &witness, &opt);
    assert!(r.has(Code::EffectMismatch), "got:\n{r}");
}

// --- PPP305: unroll-guard justification -----------------------------------

#[test]
fn weakened_guard_bound_trips_ppp305() {
    let (source, witness, mut optimized) = unrolled_counted();
    let TransformWitness::Unroll(w) = &witness else {
        unreachable!()
    };
    let ppp_ir::UnrollMode::Counted { main_header, .. } = w.loops[0].mode else {
        unreachable!()
    };
    // Weaken `i < 4` to `i < 3`: the wide body still decrements 4 times,
    // so the last elided junction may see i == 0 — the elision is no
    // longer justified (and the program would loop past zero).
    let guard = &mut optimized.functions[0].blocks[main_header.index()];
    let tampered = guard.insts.iter_mut().find_map(|i| match i {
        Inst::Const { value: v @ 4, .. } => {
            *v = 3;
            Some(())
        }
        _ => None,
    });
    assert!(tampered.is_some());
    let r = check_transform(&source, &witness, &optimized);
    assert!(r.has(Code::UnrollGuard), "got:\n{r}");
}

#[test]
fn counted_witness_on_unqualified_loop_trips_ppp305() {
    // A loop whose body decrements twice per iteration must never have
    // its tests elided; forge a counted witness claiming it was.
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("main", 0);
    let c = b.constant(100);
    let i = b.copy(c);
    let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
    b.jump(hdr);
    b.switch_to(hdr);
    b.branch(i, body, exit);
    b.switch_to(body);
    let one = b.constant(1);
    b.binary_to(i, BinOp::Sub, i, one);
    b.binary_to(i, BinOp::Sub, i, one);
    b.jump(hdr);
    b.switch_to(exit);
    b.ret(None);
    m.add_function(b.finish());

    let f = &m.functions[0];
    let witness = TransformWitness::Unroll(ppp_ir::UnrollWitness {
        loops: vec![ppp_ir::UnrolledLoop {
            func: FuncId(0),
            header: BlockId(1),
            cloned: vec![BlockId(2)],
            copies: vec![vec![BlockId(5)], vec![BlockId(6)]],
            mode: ppp_ir::UnrollMode::Counted {
                factor: 2,
                induction: i,
                main_header: BlockId(4),
                guard_cond: ppp_ir::Reg(f.reg_count),
                guard_bound: ppp_ir::Reg(f.reg_count + 1),
            },
        }],
    });
    let r = check_transform(&m, &witness, &m);
    assert!(r.has(Code::UnrollGuard), "got:\n{r}");
}

// --- PPP306: inline call protocol -----------------------------------------

#[test]
fn dropped_glue_init_trips_ppp306() {
    let (source, witness, mut optimized) = inlined();
    let TransformWitness::Inline(w) = &witness else {
        unreachable!()
    };
    let step = w.steps[0];
    // Drop the last glue op (an argument copy) from the rewritten call
    // block: the inlined body now reads a garbage parameter.
    let call_blk = &mut optimized.functions[step.caller.index()].blocks[step.block.index()];
    call_blk.insts.pop();
    let r = check_transform(&source, &witness, &optimized);
    assert!(r.has(Code::InlineProtocol), "got:\n{r}");
}

#[test]
fn misrecorded_call_site_trips_ppp306() {
    let (source, mut witness, optimized) = inlined();
    let TransformWitness::Inline(w) = &mut witness else {
        unreachable!()
    };
    w.steps[0].inst += 1; // points past the call now
    let r = check_transform(&source, &witness, &optimized);
    assert!(r.has(Code::InlineProtocol), "got:\n{r}");
}

// --- PPP307 / PPP308: profile shape and flow conservation ------------------

#[test]
fn mismatched_profile_shape_trips_ppp307() {
    let m = counted_module(10);
    let other = call_module();
    let r = check_profile(&m, &ModuleEdgeProfile::default());
    assert!(r.has(Code::ProfileShape), "got:\n{r}");
    let r = check_profile(&m, &ModuleEdgeProfile::zeroed(&other));
    assert!(r.has(Code::ProfileShape), "got:\n{r}");
}

#[test]
fn inflated_edge_count_trips_ppp308() {
    let m = counted_module(10);
    let mut profile = traced(&m);
    profile
        .func_mut(FuncId(0))
        .bump_edge(EdgeRef::new(BlockId(1), 0));
    let r = check_profile(&m, &profile);
    assert!(r.has(Code::FlowConservation), "got:\n{r}");
    assert!(!r.is_clean());
}

// --- fuzz invariant: the whole pipeline validates clean --------------------

/// Every suite benchmark, through scalar → inline → unroll → scalar with
/// a fresh traced profile between stages, must validate clean at every
/// step — and every traced profile must conserve flow.
#[test]
fn suite_pipeline_validates_clean_end_to_end() {
    let suite = ppp_workloads::spec2000_suite();
    assert_eq!(suite.len(), 18);
    for entry in suite {
        let name = entry.spec.name.clone();
        let mut module = ppp_workloads::generate(&entry.spec.scaled(0.02));

        let source = module.clone();
        let (_, w) = optimize_module_witnessed(&mut module);
        let r = check_transform(&source, &w, &module);
        assert!(r.is_empty(), "{name}: scalar@gen dirty:\n{r}");
        ppp_core::normalize_module(&mut module);

        let edges0 = traced(&module);
        assert!(
            check_profile(&module, &edges0).is_empty(),
            "{name}: profile@orig dirty"
        );

        let source = module.clone();
        let (_, w) = inline_module_witnessed(&mut module, &edges0, &InlineOptions::default());
        let r = check_transform(&source, &w, &module);
        assert!(r.is_empty(), "{name}: inline dirty:\n{r}");

        let edges1 = traced(&module);
        assert!(
            check_profile(&module, &edges1).is_empty(),
            "{name}: profile@inline dirty"
        );

        let source = module.clone();
        let (_, w) = unroll_module_witnessed(&mut module, &edges1, &UnrollOptions::default());
        let r = check_transform(&source, &w, &module);
        assert!(r.is_empty(), "{name}: unroll dirty:\n{r}");

        let source = module.clone();
        let (_, w) = optimize_module_witnessed(&mut module);
        let r = check_transform(&source, &w, &module);
        assert!(r.is_empty(), "{name}: scalar@opt dirty:\n{r}");

        assert_eq!(ppp_ir::verify_module(&module), Ok(()), "{name}");
    }
}
