//! Fixture tests: every diagnostic code has a tampering that provably
//! trips it, and the untampered plans lint clean. The generic lints
//! (`PPP001`–`PPP004`) use hand-built functions; the soundness lints
//! (`PPP101`–`PPP105`) tamper a plan's edge-op lists, table, or module;
//! the conformance lints (`PPP201`–`PPP203`) desynchronize the physical
//! `Prof` instructions from the recorded placements.

use ppp_core::dag::{DagEdgeId, DagEdgeKind};
use ppp_core::plan::PlanOp;
use ppp_core::{instrument_module, normalize_module, FuncPlan, ModulePlan, ProfilerConfig};
use ppp_ir::{
    BinOp, Block, Function, FunctionBuilder, Inst, Module, ProfOp, TableId, TableKind, Terminator,
};
use ppp_lint::{lint_module, lint_plan, Code};
use ppp_vm::{run, RunOptions};

/// `main` loops eight times over an if-diamond (several activation and
/// iteration paths), plus a routine `idle` that is never called.
fn sample_module() -> Module {
    let mut m = Module::new();
    let mut b = FunctionBuilder::new("main", 0);
    let n = b.constant(8);
    let i = b.copy(n);
    let (hdr, body, t, e, j, exit) = (
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
        b.new_block(),
    );
    b.jump(hdr);
    b.switch_to(hdr);
    b.branch(i, body, exit);
    b.switch_to(body);
    let two = b.constant(2);
    let p = b.binary(BinOp::Rem, i, two);
    b.branch(p, t, e);
    b.switch_to(t);
    b.emit(i);
    b.jump(j);
    b.switch_to(e);
    b.jump(j);
    b.switch_to(j);
    let one = b.constant(1);
    b.binary_to(i, BinOp::Sub, i, one);
    b.jump(hdr);
    b.switch_to(exit);
    b.ret(None);
    m.add_function(b.finish());

    let mut h = FunctionBuilder::new("idle", 1);
    let x = h.param(0);
    h.emit(x);
    h.ret(Some(x));
    m.add_function(h.finish());

    normalize_module(&mut m);
    m
}

fn pp_plan() -> ModulePlan {
    instrument_module(&sample_module(), None, &ProfilerConfig::pp())
}

fn tpp_plan() -> ModulePlan {
    let m = sample_module();
    let truth = run(&m, "main", &RunOptions::default().traced()).unwrap();
    instrument_module(&m, truth.edge_profile.as_ref(), &ProfilerConfig::tpp())
}

fn main_fp(plan: &mut ModulePlan) -> &mut FuncPlan {
    assert!(plan.funcs[0].instrumented, "main must be instrumented");
    &mut plan.funcs[0]
}

/// First DAG edge of `fp` whose op list contains a counting op.
fn count_edge(fp: &FuncPlan) -> DagEdgeId {
    (0..fp.dag.edge_count())
        .map(|i| DagEdgeId(i as u32))
        .find(|e| fp.edge_ops[e.index()].iter().any(|op| op.is_count()))
        .expect("an instrumented multi-block routine has a counting edge")
}

/// Rewrites a counting op's table operand.
fn retable(op: ProfOp, t: TableId) -> ProfOp {
    match op {
        ProfOp::SetR { .. } | ProfOp::AddR { .. } => op,
        ProfOp::CountR { .. } => ProfOp::CountR { table: t },
        ProfOp::CountRPlus { addend, .. } => ProfOp::CountRPlus { table: t, addend },
        ProfOp::CountConst { index, .. } => ProfOp::CountConst { table: t, index },
        ProfOp::CountRChecked { .. } => ProfOp::CountRChecked { table: t },
        ProfOp::CountRPlusChecked { addend, .. } => ProfOp::CountRPlusChecked { table: t, addend },
    }
}

#[test]
fn untampered_plans_are_clean() {
    let pp = lint_plan(&pp_plan());
    assert!(pp.is_clean(), "pp plan not clean:\n{pp}");
    assert!(pp.is_empty(), "pp plan not even info-free:\n{pp}");
    let tpp = lint_plan(&tpp_plan());
    assert!(tpp.is_clean(), "tpp plan not clean:\n{tpp}");
}

#[test]
fn ppp001_unreachable_block() {
    let mut b = FunctionBuilder::new("orphan", 0);
    let dead = b.new_block();
    b.ret(None);
    b.switch_to(dead);
    b.ret(None);
    let mut m = Module::new();
    m.add_function(b.finish());
    assert!(lint_module(&m).has(Code::UnreachableBlock));
}

#[test]
fn ppp002_use_before_init() {
    let mut f = Function::new("ghost", 0);
    let ghost = f.new_reg();
    f.blocks[0] = Block {
        insts: vec![Inst::Emit { src: ghost }],
        term: Terminator::Return { value: None },
    };
    let mut m = Module::new();
    m.add_function(f);
    let report = lint_module(&m);
    assert!(report.has(Code::UseBeforeInit));
    assert!(!report.is_clean(), "PPP002 is a warning");
}

#[test]
fn ppp003_dead_write() {
    let mut b = FunctionBuilder::new("dead", 0);
    let _unused = b.constant(42);
    b.ret(None);
    let mut m = Module::new();
    m.add_function(b.finish());
    assert!(lint_module(&m).has(Code::DeadWrite));
}

#[test]
fn ppp004_maybe_uninit() {
    let mut b = FunctionBuilder::new("maybe", 1);
    let p = b.param(0);
    let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
    b.branch(p, t, e);
    b.switch_to(t);
    let v = b.constant(1);
    b.jump(j);
    b.switch_to(e);
    b.jump(j);
    b.switch_to(j);
    b.emit(v);
    b.ret(None);
    let mut m = Module::new();
    m.add_function(b.finish());
    assert!(lint_module(&m).has(Code::MaybeUninit));
}

#[test]
fn ppp101_shifted_increment_breaks_numbering() {
    let mut plan = pp_plan();
    let fp = main_fp(&mut plan);
    let e = count_edge(fp);
    // Shift every path through this edge by one: some path now counts an
    // index that is not its own id.
    fp.edge_ops[e.index()].insert(0, PlanOp::Add(1));
    assert!(lint_plan(&plan).has(Code::PathNumbering));
}

#[test]
fn ppp102_shrunken_table_breaks_bounds() {
    let mut plan = pp_plan();
    let table = main_fp(&mut plan).table.unwrap();
    assert!(main_fp(&mut plan).n_paths > 1);
    plan.module.tables[table.index()].kind = TableKind::Array { size: 1 };
    assert!(lint_plan(&plan).has(Code::CounterBounds));
}

#[test]
fn ppp103_dropped_count_breaks_multiplicity() {
    let mut plan = pp_plan();
    let fp = main_fp(&mut plan);
    let e = count_edge(fp);
    fp.edge_ops[e.index()].retain(|op| !op.is_count());
    assert!(lint_plan(&plan).has(Code::CountMultiplicity));
}

#[test]
fn ppp104_unset_iteration_path_leaks_register() {
    let mut plan = pp_plan();
    let fp = main_fp(&mut plan);
    // Turn the ENTRY-dummy initialization `r = c` into `r += c`: iteration
    // paths now count an index that depends on the stale register.
    let tampered = (0..fp.dag.edge_count())
        .map(|i| DagEdgeId(i as u32))
        .find(|&e| {
            matches!(fp.dag.edge(e).kind, DagEdgeKind::EntryDummy { .. })
                && fp.edge_ops[e.index()]
                    .iter()
                    .any(|op| matches!(op, PlanOp::Set(_)))
        })
        .expect("a loop header has an initializing ENTRY dummy");
    for op in &mut fp.edge_ops[tampered.index()] {
        if let PlanOp::Set(v) = *op {
            *op = PlanOp::Add(v);
        }
    }
    assert!(lint_plan(&plan).has(Code::RegisterLeak));
}

#[test]
fn ppp105_prof_in_uninstrumented_routine() {
    let mut plan = tpp_plan();
    let idle = plan
        .funcs
        .iter()
        .find(|fp| !fp.instrumented)
        .expect("idle is never executed, so TPP skips it")
        .func;
    plan.module.function_mut(idle).blocks[0]
        .insts
        .push(Inst::Prof(ProfOp::CountConst {
            table: TableId(0),
            index: 0,
        }));
    assert!(lint_plan(&plan).has(Code::StrayInstrumentation));
}

#[test]
fn ppp201_displaced_op_breaks_placement() {
    let mut plan = pp_plan();
    let fid = main_fp(&mut plan).func;
    let f = plan.module.function_mut(fid);
    // Move an appended op one slot earlier; the multiset is untouched, so
    // only the placement check can catch this.
    let block = f
        .blocks
        .iter_mut()
        .find(|b| {
            b.insts.len() >= 2
                && matches!(b.insts.last(), Some(Inst::Prof(_)))
                && !matches!(b.insts[b.insts.len() - 2], Inst::Prof(_))
        })
        .expect("some block has body instructions before its appended op");
    let n = block.insts.len();
    block.insts.swap(n - 1, n - 2);
    let report = lint_plan(&plan);
    assert!(report.has(Code::PlacementMismatch));
    assert!(!report.has(Code::OpMultisetMismatch));
}

#[test]
fn ppp202_unrecorded_op_breaks_multiset() {
    let mut plan = pp_plan();
    let fp = main_fp(&mut plan);
    let placement = fp
        .placements
        .iter_mut()
        .find(|p| !p.ops.is_empty())
        .expect("instrumented main has placements");
    placement.ops.pop();
    assert!(lint_plan(&plan).has(Code::OpMultisetMismatch));
}

#[test]
fn ppp203_foreign_table_reference() {
    let mut plan = pp_plan();
    let fid = main_fp(&mut plan).func;
    let own = main_fp(&mut plan).table.unwrap();
    let foreign = TableId((own.index() as u32) + 1);
    assert!(
        foreign.index() < plan.module.tables.len(),
        "idle owns a second table"
    );
    let f = plan.module.function_mut(fid);
    let op = f
        .blocks
        .iter_mut()
        .flat_map(|b| b.insts.iter_mut())
        .find_map(|i| match i {
            Inst::Prof(op) if op.is_count() => Some(op),
            _ => None,
        })
        .expect("main contains a counting op");
    *op = retable(*op, foreign);
    assert!(lint_plan(&plan).has(Code::TableBinding));
}
