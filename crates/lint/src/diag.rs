//! The diagnostic model: stable codes, severities, and reports.
//!
//! Every analysis reports through [`Diagnostic`]s carrying a [`Code`] from
//! the fixed registry below. Codes are stable identifiers (they never
//! change meaning once assigned) so downstream tooling can filter on them;
//! the numeric bands group related analyses:
//!
//! | band      | analyses                                     |
//! |-----------|----------------------------------------------|
//! | `PPP0xx`  | generic dataflow lints (init, dead code)     |
//! | `PPP1xx`  | instrumentation soundness (path semantics)   |
//! | `PPP2xx`  | plan conformance (placement bookkeeping)     |
//! | `PPP3xx`  | translation validation & profile consistency |
//! | `PPP4xx`  | stale-profile matching & transfer (`ppp-match`) |
//! | `PPP5xx`  | static branch prediction & frequency estimation (`ppp-est`) |

use ppp_ir::{BlockId, FuncId};
use std::fmt;

/// Diagnostic severity, ordered `Info < Warning < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Advisory: worth knowing, never blocks a pipeline.
    Info,
    /// Suspicious: almost certainly a generator or transform bug, but the
    /// VM's semantics keep the program well-defined.
    Warning,
    /// Broken: the instrumentation (or its bookkeeping) is unsound.
    Error,
}

impl Severity {
    /// Lowercase name, as used in the JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The registry of stable diagnostic codes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Code {
    /// `PPP001` — block unreachable from the function entry.
    UnreachableBlock,
    /// `PPP002` — register read before any path assigns it (the VM
    /// zero-initializes registers, so this is defined but suspect).
    UseBeforeInit,
    /// `PPP003` — pure write whose value no path ever reads.
    DeadWrite,
    /// `PPP004` — register assigned on some but not all paths to a use.
    MaybeUninit,
    /// `PPP101` — a counted path's increment sum is not its own distinct
    /// id in `[0, num_paths)`.
    PathNumbering,
    /// `PPP102` — a counter access indexes outside its table.
    CounterBounds,
    /// `PPP103` — a counted path executes a number of counting ops other
    /// than exactly one.
    CountMultiplicity,
    /// `PPP104` — an iteration path's count depends on the stale path
    /// register left by the previous path (missing re-initialization).
    RegisterLeak,
    /// `PPP105` — profiling instructions in a routine the plan marks
    /// uninstrumented.
    StrayInstrumentation,
    /// `PPP201` — a block's `Prof` layout differs from the recorded
    /// placements.
    PlacementMismatch,
    /// `PPP202` — the function-wide multiset of `Prof` ops differs from
    /// the plan's placements.
    OpMultisetMismatch,
    /// `PPP203` — a profiling op references a counter table other than
    /// the plan's own.
    TableBinding,
    /// `PPP301` — a transform witness is malformed: not total, not
    /// injective, or shape-inconsistent with the source or optimized
    /// module.
    WitnessShape,
    /// `PPP302` — the CFG simulation relation is broken: the optimized
    /// function has an edge, entry, or return the witness cannot map to a
    /// legal counterpart in the source.
    SimulationBroken,
    /// `PPP303` — a cloned block's instructions differ from the source
    /// block the witness claims it descends from.
    CloneMismatch,
    /// `PPP304` — the abstract side-effect sequence (stores, calls,
    /// emits, rand draws) of a region differs from its source region.
    EffectMismatch,
    /// `PPP305` — counted unrolling's elided tests are not justified by
    /// the `i < factor` guard (symbolic execution of the wide body cannot
    /// prove every elided test true).
    UnrollGuard,
    /// `PPP306` — an inline splice violates the call protocol: bad call
    /// site, wrong glue (zero-inits/argument copies), or a continuation
    /// that does not receive the call block's tail.
    InlineProtocol,
    /// `PPP307` — an edge profile's shape (function count, block count,
    /// or per-block successor counts) does not match the module.
    ProfileShape,
    /// `PPP308` — an edge profile violates Kirchhoff flow conservation
    /// (Σ in-edges = block frequency = Σ out-edges, modulo entry/exit).
    FlowConservation,
    /// `PPP401` — a block of the old program version has no anchor and no
    /// propagated match in the new version: its profile flow cannot be
    /// transferred and is lost.
    UnanchoredBlock,
    /// `PPP402` — a block's anchor hash matches several candidate blocks
    /// and dominator/loop structure cannot disambiguate them; matching it
    /// would be a guess, so it stays unmatched.
    AmbiguousAnchor,
    /// `PPP403` — a region of the new version has no old counterpart but
    /// sits between matched blocks (a split or merged region); its counts
    /// are reconstructed from the surrounding matched flow.
    SplitMergedRegion,
    /// `PPP404` — a transferred profile violates Kirchhoff flow
    /// conservation even after boundary renormalization; the function's
    /// transferred counts are discarded (zeroed) rather than trusted.
    NonConservativeTransfer,
    /// `PPP501` — an irreducible region (retreating edge whose target
    /// does not dominate its source) was found during static frequency
    /// propagation; its retreating edges receive zero trip credit, so
    /// flow through the region is estimated as if it executed once.
    IrreducibleRegionCapped,
    /// `PPP502` — independent branch heuristics gave strongly opposing
    /// predictions for the same branch; the Dempster–Shafer combination
    /// lands near 50/50 and the estimate carries little signal there.
    HeuristicConflict,
    /// `PPP503` — converting real-valued frequencies to integer counts
    /// broke Kirchhoff conservation and a one-pass renormalization
    /// repaired it; the repair preserves ratios to within one count.
    EstimateRepaired,
    /// `PPP504` — a function cannot be estimated (no return block is
    /// reachable from entry, so no finite execution exists); its static
    /// estimate is zeroed rather than fabricated.
    EstimateZeroed,
}

impl Code {
    /// Every registered code, in code order.
    pub const ALL: [Code; 28] = [
        Code::UnreachableBlock,
        Code::UseBeforeInit,
        Code::DeadWrite,
        Code::MaybeUninit,
        Code::PathNumbering,
        Code::CounterBounds,
        Code::CountMultiplicity,
        Code::RegisterLeak,
        Code::StrayInstrumentation,
        Code::PlacementMismatch,
        Code::OpMultisetMismatch,
        Code::TableBinding,
        Code::WitnessShape,
        Code::SimulationBroken,
        Code::CloneMismatch,
        Code::EffectMismatch,
        Code::UnrollGuard,
        Code::InlineProtocol,
        Code::ProfileShape,
        Code::FlowConservation,
        Code::UnanchoredBlock,
        Code::AmbiguousAnchor,
        Code::SplitMergedRegion,
        Code::NonConservativeTransfer,
        Code::IrreducibleRegionCapped,
        Code::HeuristicConflict,
        Code::EstimateRepaired,
        Code::EstimateZeroed,
    ];

    /// The stable code string (`"PPP001"`, ...).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnreachableBlock => "PPP001",
            Code::UseBeforeInit => "PPP002",
            Code::DeadWrite => "PPP003",
            Code::MaybeUninit => "PPP004",
            Code::PathNumbering => "PPP101",
            Code::CounterBounds => "PPP102",
            Code::CountMultiplicity => "PPP103",
            Code::RegisterLeak => "PPP104",
            Code::StrayInstrumentation => "PPP105",
            Code::PlacementMismatch => "PPP201",
            Code::OpMultisetMismatch => "PPP202",
            Code::TableBinding => "PPP203",
            Code::WitnessShape => "PPP301",
            Code::SimulationBroken => "PPP302",
            Code::CloneMismatch => "PPP303",
            Code::EffectMismatch => "PPP304",
            Code::UnrollGuard => "PPP305",
            Code::InlineProtocol => "PPP306",
            Code::ProfileShape => "PPP307",
            Code::FlowConservation => "PPP308",
            Code::UnanchoredBlock => "PPP401",
            Code::AmbiguousAnchor => "PPP402",
            Code::SplitMergedRegion => "PPP403",
            Code::NonConservativeTransfer => "PPP404",
            Code::IrreducibleRegionCapped => "PPP501",
            Code::HeuristicConflict => "PPP502",
            Code::EstimateRepaired => "PPP503",
            Code::EstimateZeroed => "PPP504",
        }
    }

    /// The severity every diagnostic with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::UnreachableBlock
            | Code::DeadWrite
            | Code::MaybeUninit
            | Code::SplitMergedRegion
            | Code::IrreducibleRegionCapped
            | Code::HeuristicConflict
            | Code::EstimateRepaired => Severity::Info,
            Code::UseBeforeInit
            | Code::UnanchoredBlock
            | Code::AmbiguousAnchor
            | Code::EstimateZeroed => Severity::Warning,
            Code::PathNumbering
            | Code::CounterBounds
            | Code::CountMultiplicity
            | Code::RegisterLeak
            | Code::StrayInstrumentation
            | Code::PlacementMismatch
            | Code::OpMultisetMismatch
            | Code::TableBinding
            | Code::WitnessShape
            | Code::SimulationBroken
            | Code::CloneMismatch
            | Code::EffectMismatch
            | Code::UnrollGuard
            | Code::InlineProtocol
            | Code::ProfileShape
            | Code::FlowConservation
            | Code::NonConservativeTransfer => Severity::Error,
        }
    }

    /// One-line registry description.
    pub fn summary(self) -> &'static str {
        match self {
            Code::UnreachableBlock => "block unreachable from function entry",
            Code::UseBeforeInit => "register read before any assignment",
            Code::DeadWrite => "pure write never read",
            Code::MaybeUninit => "register assigned on only some paths to a use",
            Code::PathNumbering => "path increment sum is not a distinct id in [0, N)",
            Code::CounterBounds => "counter access out of table bounds",
            Code::CountMultiplicity => "counted path does not count exactly once",
            Code::RegisterLeak => "iteration path reads a stale path register",
            Code::StrayInstrumentation => "profiling ops in an uninstrumented routine",
            Code::PlacementMismatch => "block Prof layout differs from recorded placements",
            Code::OpMultisetMismatch => "Prof op multiset differs from the plan",
            Code::TableBinding => "profiling op bound to a foreign counter table",
            Code::WitnessShape => "transform witness malformed or shape-inconsistent",
            Code::SimulationBroken => "optimized CFG has no simulating source path",
            Code::CloneMismatch => "cloned block differs from its witnessed source",
            Code::EffectMismatch => "side-effect sequence differs from the source region",
            Code::UnrollGuard => "elided unroll test not justified by the guard",
            Code::InlineProtocol => "inline splice violates the call protocol",
            Code::ProfileShape => "edge profile shape does not match the module",
            Code::FlowConservation => "edge profile violates flow conservation",
            Code::UnanchoredBlock => "old block has no anchor or propagated match",
            Code::AmbiguousAnchor => "anchor matches several candidates; structure cannot decide",
            Code::SplitMergedRegion => "new region between matched blocks (split/merge)",
            Code::NonConservativeTransfer => "transferred profile not conservative; zeroed",
            Code::IrreducibleRegionCapped => "irreducible region: retreating edges get no trips",
            Code::HeuristicConflict => "branch heuristics strongly disagree; weak estimate",
            Code::EstimateRepaired => "integer rounding repaired to restore conservation",
            Code::EstimateZeroed => "no reachable return; static estimate zeroed",
        }
    }
}

/// One finding.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// Registry code.
    pub code: Code,
    /// Routine the finding is in.
    pub func: FuncId,
    /// Routine name (for human-readable and JSON output).
    pub func_name: String,
    /// Block the finding anchors to, when block-precise.
    pub block: Option<BlockId>,
    /// Human-readable description of this specific instance.
    pub message: String,
}

impl Diagnostic {
    /// The severity implied by the code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}",
            self.code.as_str(),
            self.severity().as_str(),
            self.func_name
        )?;
        if let Some(b) = self.block {
            write!(f, ":{b}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The outcome of a lint run: all diagnostics, ordered by routine, code,
/// and block.
#[derive(Clone, Default, Debug)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends many diagnostics.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Sorts diagnostics by (function, code, block) for stable output.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.func, d.code, d.block.map(|b| b.index())));
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == severity)
            .count()
    }

    /// `true` when the report carries no errors and no warnings (info
    /// findings do not make a report dirty).
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity() >= Severity::Warning)
    }

    /// `true` when there are no findings of any severity.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when any finding has this code.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Machine-readable JSON rendering of the whole report.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"clean\": {},\n", self.is_clean()));
        s.push_str(&format!(
            "  \"counts\": {{\"error\": {}, \"warning\": {}, \"info\": {}}},\n",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        ));
        s.push_str("  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            s.push_str(&format!("\"code\": \"{}\", ", d.code.as_str()));
            s.push_str(&format!("\"severity\": \"{}\", ", d.severity().as_str()));
            s.push_str(&format!("\"func\": \"{}\", ", escape_json(&d.func_name)));
            match d.block {
                Some(b) => s.push_str(&format!("\"block\": {}, ", b.index())),
                None => s.push_str("\"block\": null, "),
            }
            s.push_str(&format!("\"message\": \"{}\"}}", escape_json(&d.message)));
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}");
        s
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.diagnostics.is_empty() {
            return writeln!(f, "lint: clean (no diagnostics)");
        }
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        writeln!(
            f,
            "lint: {} error(s), {} warning(s), {} info",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info)
        )
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(code: Code) -> Diagnostic {
        Diagnostic {
            code,
            func: FuncId(0),
            func_name: "f".into(),
            block: Some(BlockId(2)),
            message: "msg".into(),
        }
    }

    #[test]
    fn codes_are_unique_and_banded() {
        let mut strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        strs.sort_unstable();
        strs.dedup();
        assert_eq!(strs.len(), Code::ALL.len(), "codes must be unique");
        for c in Code::ALL {
            assert!(c.as_str().starts_with("PPP"));
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn severity_banding() {
        assert_eq!(Code::UnreachableBlock.severity(), Severity::Info);
        assert_eq!(Code::UseBeforeInit.severity(), Severity::Warning);
        for c in [Code::PathNumbering, Code::PlacementMismatch] {
            assert_eq!(c.severity(), Severity::Error);
        }
    }

    #[test]
    fn clean_ignores_info() {
        let mut r = LintReport::new();
        assert!(r.is_clean() && r.is_empty());
        r.push(diag(Code::DeadWrite));
        assert!(r.is_clean() && !r.is_empty());
        r.push(diag(Code::PathNumbering));
        assert!(!r.is_clean());
        assert!(r.has(Code::PathNumbering));
        assert!(!r.has(Code::TableBinding));
    }

    #[test]
    fn json_escapes_and_counts() {
        let mut r = LintReport::new();
        r.push(Diagnostic {
            code: Code::UseBeforeInit,
            func: FuncId(1),
            func_name: "we\"ird".into(),
            block: None,
            message: "line\nbreak".into(),
        });
        let j = r.to_json();
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("we\\\"ird"));
        assert!(j.contains("line\\nbreak"));
        assert!(j.contains("\"block\": null"));
        assert!(j.contains("\"warning\": 1"));
    }

    #[test]
    fn report_sort_orders_by_func_code_block() {
        let mut r = LintReport::new();
        let mut d1 = diag(Code::DeadWrite);
        d1.func = FuncId(1);
        r.push(d1);
        let d0 = diag(Code::UnreachableBlock);
        r.push(d0.clone());
        r.sort();
        assert_eq!(r.diagnostics[0], d0);
    }

    #[test]
    fn display_renders_code_and_location() {
        let d = diag(Code::CounterBounds);
        let s = d.to_string();
        assert!(s.contains("PPP102"));
        assert!(s.contains("[error]"));
        assert!(s.contains("b2"));
    }
}
