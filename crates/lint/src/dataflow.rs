//! A generic worklist dataflow engine over [`ppp_ir::Cfg`]s.
//!
//! Analyses implement [`Analysis`]: a direction, a join-semilattice of
//! facts (via [`Analysis::join`], whose identity is [`Analysis::init`]),
//! and a block transfer function. [`solve`] iterates a worklist seeded in
//! reverse postorder (forward) or postorder (backward) until the facts
//! reach a fixed point, which termination-wise only requires the lattice
//! to have finite ascending chains — true for the bitset facts used here.
//!
//! Conventions: `input[b]` is the fact at the block's flow input (block
//! start for forward analyses, block end for backward ones) and
//! `output[b]` the fact after transferring through the block. Unreachable
//! blocks keep the optimistic [`Analysis::init`] fact.

use ppp_ir::{BlockId, Cfg};
use std::collections::VecDeque;

/// Flow direction of an analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Facts flow from entry toward returns.
    Forward,
    /// Facts flow from returns toward entry.
    Backward,
}

/// A dataflow analysis: lattice plus transfer function.
///
/// Implementors usually hold a reference to the function they analyze so
/// [`Analysis::transfer`] can walk block instructions.
pub trait Analysis {
    /// The lattice element attached to each program point.
    type Fact: Clone + PartialEq;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// The fact at the flow boundary: function entry for forward
    /// analyses, every `return` block's end for backward ones.
    fn boundary(&self) -> Self::Fact;

    /// The optimistic initial fact — the identity of [`Analysis::join`].
    fn init(&self) -> Self::Fact;

    /// Merges `other` into `into`, returning `true` if `into` changed.
    fn join(&self, into: &mut Self::Fact, other: &Self::Fact) -> bool;

    /// Transfers `fact` through block `b` (in flow direction) and returns
    /// the fact at the block's flow output.
    fn transfer(&self, b: BlockId, fact: Self::Fact) -> Self::Fact;
}

/// Fixed-point facts per block.
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// Fact at each block's flow input (start for forward, end for
    /// backward).
    pub input: Vec<F>,
    /// Fact at each block's flow output.
    pub output: Vec<F>,
}

/// Runs `analysis` to a fixed point over `cfg`.
pub fn solve<A: Analysis>(cfg: &Cfg, analysis: &A) -> Solution<A::Fact> {
    let n = cfg.block_count();
    let mut input: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();
    let mut output: Vec<A::Fact> = (0..n).map(|_| analysis.init()).collect();

    let forward = analysis.direction() == Direction::Forward;
    let order: Vec<BlockId> = if forward {
        cfg.reverse_postorder().to_vec()
    } else {
        cfg.postorder().collect()
    };

    let mut queued = vec![false; n];
    let mut work: VecDeque<BlockId> = VecDeque::with_capacity(order.len());
    for &b in &order {
        queued[b.index()] = true;
        work.push_back(b);
    }

    while let Some(b) = work.pop_front() {
        queued[b.index()] = false;

        // Join the flow predecessors' outputs into this block's input.
        let boundary = if forward {
            b == cfg.entry()
        } else {
            cfg.succs(b).is_empty()
        };
        let mut fact = if boundary {
            analysis.boundary()
        } else {
            analysis.init()
        };
        if forward {
            for p in cfg.pred_blocks(b) {
                analysis.join(&mut fact, &output[p.index()]);
            }
        } else {
            for &s in cfg.succs(b) {
                analysis.join(&mut fact, &output[s.index()]);
            }
        }
        input[b.index()] = fact.clone();

        let new_out = analysis.transfer(b, fact);
        if new_out != output[b.index()] {
            output[b.index()] = new_out;
            // Requeue flow successors.
            let push = |work: &mut VecDeque<BlockId>, queued: &mut Vec<bool>, s: BlockId| {
                if cfg.is_reachable(s) && !queued[s.index()] {
                    queued[s.index()] = true;
                    work.push_back(s);
                }
            };
            if forward {
                for &s in cfg.succs(b) {
                    push(&mut work, &mut queued, s);
                }
            } else {
                for p in cfg.pred_blocks(b) {
                    push(&mut work, &mut queued, p);
                }
            }
        }
    }

    Solution { input, output }
}

/// A dense bitset over `0..len` — the fact representation shared by the
/// register analyses.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// The empty set over a universe of `len` elements.
    pub fn empty(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The full set `{0, .., len-1}`.
    pub fn full(len: usize) -> Self {
        let mut s = Self {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        // Clear the bits beyond `len` so equality stays canonical.
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        s
    }

    /// Inserts element `i`.
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes element `i`.
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// `self |= other`; returns `true` if `self` changed.
    pub fn union_with(&mut self, other: &Self) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// `self &= other`; returns `true` if `self` changed.
    pub fn intersect_with(&mut self, other: &Self) -> bool {
        debug_assert_eq!(self.len, other.len);
        let mut changed = false;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{Function, FunctionBuilder, Reg};

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::empty(70);
        assert!(!s.contains(69));
        s.insert(69);
        s.insert(0);
        assert!(s.contains(69) && s.contains(0) && !s.contains(1));
        s.remove(69);
        assert!(!s.contains(69));

        let full = BitSet::full(70);
        assert!(full.contains(69));
        let mut u = BitSet::empty(70);
        assert!(u.union_with(&full));
        assert_eq!(u, full);
        assert!(!u.union_with(&full), "idempotent union reports no change");
        let mut i = BitSet::full(70);
        assert!(i.intersect_with(&BitSet::empty(70)));
        assert_eq!(i, BitSet::empty(70));
    }

    #[test]
    fn full_is_canonical_at_word_boundary() {
        assert_eq!(BitSet::full(64), {
            let mut s = BitSet::empty(64);
            for i in 0..64 {
                s.insert(i);
            }
            s
        });
    }

    /// A forward "reaches" analysis: fact = set of blocks flowed through.
    struct Reaches {
        n: usize,
    }

    impl Analysis for Reaches {
        type Fact = BitSet;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> BitSet {
            BitSet::empty(self.n)
        }
        fn init(&self) -> BitSet {
            BitSet::empty(self.n)
        }
        fn join(&self, into: &mut BitSet, other: &BitSet) -> bool {
            into.union_with(other)
        }
        fn transfer(&self, b: ppp_ir::BlockId, mut fact: BitSet) -> BitSet {
            fact.insert(b.index());
            fact
        }
    }

    fn diamond_loop() -> Function {
        // entry -> hdr; hdr -> (body | exit); body -> hdr (back edge)
        let mut b = FunctionBuilder::new("f", 1);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(Reg(0), body, exit);
        b.switch_to(body);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn forward_fixed_point_on_a_loop() {
        let f = diamond_loop();
        let cfg = ppp_ir::Cfg::new(&f);
        let a = Reaches { n: f.blocks.len() };
        let sol = solve(&cfg, &a);
        // The exit's input flows through entry, hdr, and (via the loop)
        // body.
        let at_exit = &sol.input[3];
        assert!(at_exit.contains(0) && at_exit.contains(1) && at_exit.contains(2));
        // Entry's input is the boundary fact.
        assert!(!sol.input[0].contains(0));
        assert!(sol.output[0].contains(0));
    }
}
