//! # ppp-lint: dataflow-based static analysis for the PPP reproduction
//!
//! A lint framework over the `ppp-ir` register machine and the `ppp-core`
//! instrumentation planner, built on a generic worklist [`dataflow`]
//! engine. Four analyses ship with the crate:
//!
//! 1. **Initialization** ([`init`]) — forward must/may assigned-register
//!    analysis; reports definite (`PPP002`) and path-dependent (`PPP004`)
//!    uses of unwritten registers.
//! 2. **Dead code** ([`deadcode`]) — unreachable blocks (`PPP001`) and,
//!    via backward liveness, pure writes never read (`PPP003`).
//! 3. **Instrumentation soundness** ([`soundness`]) — abstract-interprets
//!    the path register along every counted acyclic DAG path of an
//!    instrumented routine and checks the Ball–Larus contract: each path
//!    counts exactly once, at its own distinct id in `[0, N)`, inside its
//!    counter table, without reading stale register state (`PPP101`–
//!    `PPP105`).
//! 4. **Plan conformance** ([`conformance`]) — compares the `Prof`
//!    instructions physically present in the instrumented code against
//!    the placements the planner recorded (`PPP201`–`PPP203`).
//! 5. **Translation validation** ([`transval`]) — replays the
//!    [`ppp_ir::TransformWitness`] each optimizer transform emits and
//!    checks it against the source and optimized modules (CFG simulation,
//!    clone fidelity, side-effect preservation, unroll-guard
//!    justification), and checks edge profiles for shape agreement and
//!    Kirchhoff flow conservation (`PPP301`–`PPP308`).
//!
//! Diagnostics carry stable codes and render as text or JSON — see
//! [`diag`]. A report is *clean* when it contains no errors and no
//! warnings; info findings are advisory.
//!
//! ```
//! use ppp_core::{instrument_module, normalize_module, ProfilerConfig};
//! use ppp_ir::{FunctionBuilder, Module};
//!
//! let mut module = Module::new();
//! let mut b = FunctionBuilder::new("main", 0);
//! b.ret(None);
//! module.add_function(b.finish());
//! normalize_module(&mut module);
//!
//! let plan = instrument_module(&module, None, &ProfilerConfig::pp());
//! let report = ppp_lint::lint_plan(&plan);
//! assert!(report.is_clean());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod conformance;
pub mod dataflow;
pub mod deadcode;
pub mod diag;
pub mod init;
pub mod soundness;
pub mod transval;

pub use dataflow::{solve, Analysis, BitSet, Direction, Solution};
pub use diag::{Code, Diagnostic, LintReport, Severity};
pub use transval::{check_profile, check_transform};

use ppp_core::ModulePlan;
use ppp_ir::{Cfg, FuncId, Module};

/// Knobs bounding the soundness checker's path enumeration.
#[derive(Clone, Copy, Debug)]
pub struct LintOptions {
    /// Maximum counted paths simulated per routine (routines with more
    /// paths are checked on the first `max_paths_per_func` ids).
    pub max_paths_per_func: u64,
    /// Maximum diagnostics emitted per code per routine by the path
    /// simulation, so one systematic defect cannot flood the report.
    pub max_diags_per_code: usize,
}

impl Default for LintOptions {
    fn default() -> Self {
        Self {
            max_paths_per_func: 1024,
            max_diags_per_code: 8,
        }
    }
}

/// Runs the generic dataflow lints (init, dead code) on every function.
pub fn lint_module(module: &Module) -> LintReport {
    let mut report = LintReport::new();
    for (i, f) in module.functions.iter().enumerate() {
        let fid = FuncId::new(i);
        let cfg = Cfg::new(f);
        report.extend(deadcode::check_function(f, fid, &cfg));
        report.extend(init::check_function(f, fid, &cfg));
    }
    report.sort();
    report
}

/// Lints an instrumentation plan: the generic lints on the instrumented
/// module plus the soundness and conformance analyses, with custom
/// [`LintOptions`].
pub fn lint_plan_with(plan: &ModulePlan, options: &LintOptions) -> LintReport {
    let mut report = lint_module(&plan.module);
    report.extend(soundness::check_plan(plan, options));
    report.extend(conformance::check_plan(plan));
    report.sort();
    report
}

/// Lints an instrumentation plan with default [`LintOptions`].
pub fn lint_plan(plan: &ModulePlan) -> LintReport {
    lint_plan_with(plan, &LintOptions::default())
}
