//! Use-before-initialization analysis (`PPP002`, `PPP004`).
//!
//! A forward must/may assigned-registers analysis: `must` is the set of
//! registers written on *every* path to a point (join = intersection) and
//! `may` the set written on *some* path (join = union). Parameters
//! `r0..param_count` are assigned on entry. A use outside `may` is a
//! definite read of a never-written register (`PPP002`, warning — the VM
//! zero-initializes registers, so the program is still well-defined); a
//! use inside `may` but outside `must` is only initialized on some paths
//! (`PPP004`, info).

use crate::dataflow::{solve, Analysis, BitSet, Direction};
use crate::diag::{Code, Diagnostic};
use ppp_ir::{BlockId, Cfg, FuncId, Function, Reg};

/// The must/may assigned-register fact.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InitFact {
    /// Registers assigned on every path.
    pub must: BitSet,
    /// Registers assigned on at least one path.
    pub may: BitSet,
}

struct InitAnalysis<'a> {
    f: &'a Function,
}

impl InitAnalysis<'_> {
    fn regs(&self) -> usize {
        self.f.reg_count as usize
    }
}

impl Analysis for InitAnalysis<'_> {
    type Fact = InitFact;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> InitFact {
        let mut must = BitSet::empty(self.regs());
        for p in 0..self.f.param_count as usize {
            must.insert(p);
        }
        InitFact {
            may: must.clone(),
            must,
        }
    }

    fn init(&self) -> InitFact {
        // The join identity: `must` intersects (identity: full set), `may`
        // unions (identity: empty set).
        InitFact {
            must: BitSet::full(self.regs()),
            may: BitSet::empty(self.regs()),
        }
    }

    fn join(&self, into: &mut InitFact, other: &InitFact) -> bool {
        let a = into.must.intersect_with(&other.must);
        let b = into.may.union_with(&other.may);
        a || b
    }

    fn transfer(&self, b: BlockId, mut fact: InitFact) -> InitFact {
        for inst in &self.f.block(b).insts {
            if let Some(d) = inst.def() {
                fact.must.insert(d.index());
                fact.may.insert(d.index());
            }
        }
        fact
    }
}

/// Runs the analysis on `f` and reports `PPP002`/`PPP004` diagnostics.
pub fn check_function(f: &Function, fid: FuncId, cfg: &Cfg) -> Vec<Diagnostic> {
    let analysis = InitAnalysis { f };
    let sol = solve(cfg, &analysis);

    let mut out = Vec::new();
    let mut uses: Vec<Reg> = Vec::new();
    for &b in cfg.reverse_postorder() {
        let mut fact = sol.input[b.index()].clone();
        // Report each (register, code) once per block.
        let mut seen = Vec::new();
        let check_use =
            |fact: &InitFact, r: Reg, out: &mut Vec<Diagnostic>, seen: &mut Vec<(Reg, Code)>| {
                let code = if !fact.may.contains(r.index()) {
                    Code::UseBeforeInit
                } else if !fact.must.contains(r.index()) {
                    Code::MaybeUninit
                } else {
                    return;
                };
                if seen.contains(&(r, code)) {
                    return;
                }
                seen.push((r, code));
                let what = if code == Code::UseBeforeInit {
                    "never assigned before this use"
                } else {
                    "assigned on only some paths to this use"
                };
                out.push(Diagnostic {
                    code,
                    func: fid,
                    func_name: f.name.clone(),
                    block: Some(b),
                    message: format!("register {r} is {what}"),
                });
            };
        for inst in &f.block(b).insts {
            uses.clear();
            inst.uses(&mut uses);
            for &r in &uses {
                check_use(&fact, r, &mut out, &mut seen);
            }
            if let Some(d) = inst.def() {
                fact.must.insert(d.index());
                fact.may.insert(d.index());
            }
        }
        if let Some(r) = f.block(b).term.use_reg() {
            check_use(&fact, r, &mut out, &mut seen);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{Block, FunctionBuilder, Inst, Terminator};

    fn lint(f: &Function) -> Vec<Diagnostic> {
        check_function(f, FuncId(0), &Cfg::new(f))
    }

    #[test]
    fn straight_line_defs_are_clean() {
        let mut b = FunctionBuilder::new("ok", 1);
        let p = b.param(0);
        let c = b.constant(3);
        let s = b.binary(ppp_ir::BinOp::Add, p, c);
        b.emit(s);
        b.ret(Some(s));
        assert!(lint(&b.finish()).is_empty());
    }

    #[test]
    fn never_assigned_use_is_ppp002() {
        // Hand-build: read a register no instruction ever writes.
        let mut f = Function::new("bad", 0);
        let ghost = f.new_reg();
        f.blocks[0] = Block {
            insts: vec![Inst::Emit { src: ghost }],
            term: Terminator::Return { value: None },
        };
        let ds = lint(&f);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::UseBeforeInit);
    }

    #[test]
    fn one_armed_def_is_ppp004() {
        let mut b = FunctionBuilder::new("maybe", 1);
        let p = b.param(0);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(p, t, e);
        b.switch_to(t);
        let v = b.constant(1); // defined only on the then-arm
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.emit(v);
        b.ret(None);
        let ds = lint(&b.finish());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::MaybeUninit);
        assert_eq!(ds[0].block, Some(BlockId(3)));
    }

    #[test]
    fn loop_carried_def_before_use_is_clean() {
        // acc initialized before the loop, updated in the body, read after.
        let mut b = FunctionBuilder::new("loop", 1);
        let p = b.param(0);
        let acc = b.constant(0);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(p, body, exit);
        b.switch_to(body);
        b.binary_to(acc, ppp_ir::BinOp::Add, acc, p);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(Some(acc));
        assert!(lint(&b.finish()).is_empty());
    }

    #[test]
    fn params_count_as_assigned() {
        let mut b = FunctionBuilder::new("p", 2);
        let x = b.param(1);
        b.ret(Some(x));
        assert!(lint(&b.finish()).is_empty());
    }
}
