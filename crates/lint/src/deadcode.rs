//! Dead-code analysis (`PPP001`, `PPP003`).
//!
//! Unreachable blocks fall straight out of the CFG (`PPP001`). Dead
//! register writes come from a backward liveness analysis: a *pure* write
//! (constant, copy, unary, binary, or load — no store, emit, call, or
//! random draw, whose effects or stream position must be preserved) whose
//! destination is not live immediately after it can be deleted without
//! changing the program (`PPP003`).

use crate::dataflow::{solve, Analysis, BitSet, Direction};
use crate::diag::{Code, Diagnostic};
use ppp_ir::{BlockId, Cfg, FuncId, Function, Inst};

struct Liveness<'a> {
    f: &'a Function,
}

impl Analysis for Liveness<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> BitSet {
        BitSet::empty(self.f.reg_count as usize)
    }

    fn init(&self) -> BitSet {
        BitSet::empty(self.f.reg_count as usize)
    }

    fn join(&self, into: &mut BitSet, other: &BitSet) -> bool {
        into.union_with(other)
    }

    fn transfer(&self, b: BlockId, mut live: BitSet) -> BitSet {
        let block = self.f.block(b);
        if let Some(r) = block.term.use_reg() {
            live.insert(r.index());
        }
        let mut uses = Vec::new();
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.def() {
                live.remove(d.index());
            }
            uses.clear();
            inst.uses(&mut uses);
            for &r in &uses {
                live.insert(r.index());
            }
        }
        live
    }
}

/// `true` for instructions that only compute a register value (no side
/// effect beyond the write, and no consumption of the random stream).
fn is_pure_write(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Const { .. }
            | Inst::Copy { .. }
            | Inst::Unary { .. }
            | Inst::Binary { .. }
            | Inst::Load { .. }
    )
}

/// Reports unreachable blocks (`PPP001`) and dead pure writes (`PPP003`).
pub fn check_function(f: &Function, fid: FuncId, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for b in f.block_ids() {
        if !cfg.is_reachable(b) {
            out.push(Diagnostic {
                code: Code::UnreachableBlock,
                func: fid,
                func_name: f.name.clone(),
                block: Some(b),
                message: "block is unreachable from the function entry".into(),
            });
        }
    }

    let analysis = Liveness { f };
    let sol = solve(cfg, &analysis);
    let mut uses = Vec::new();
    for &b in cfg.reverse_postorder() {
        let block = f.block(b);
        // `input` of a backward analysis is the fact at the block end;
        // replay the transfer to get per-instruction liveness.
        let mut live = sol.input[b.index()].clone();
        if let Some(r) = block.term.use_reg() {
            live.insert(r.index());
        }
        for inst in block.insts.iter().rev() {
            if let Some(d) = inst.def() {
                if !live.contains(d.index()) && is_pure_write(inst) {
                    out.push(Diagnostic {
                        code: Code::DeadWrite,
                        func: fid,
                        func_name: f.name.clone(),
                        block: Some(b),
                        message: format!("write to {d} is never read"),
                    });
                }
                live.remove(d.index());
            }
            uses.clear();
            inst.uses(&mut uses);
            for &r in &uses {
                live.insert(r.index());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{FunctionBuilder, Terminator};

    fn lint(f: &Function) -> Vec<Diagnostic> {
        check_function(f, FuncId(0), &Cfg::new(f))
    }

    #[test]
    fn live_chain_is_clean() {
        let mut b = FunctionBuilder::new("ok", 1);
        let p = b.param(0);
        let c = b.constant(2);
        let s = b.binary(ppp_ir::BinOp::Mul, p, c);
        b.emit(s);
        b.ret(None);
        assert!(lint(&b.finish()).is_empty());
    }

    #[test]
    fn unused_constant_is_ppp003() {
        let mut b = FunctionBuilder::new("dead", 0);
        let _unused = b.constant(42);
        b.ret(None);
        let ds = lint(&b.finish());
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::DeadWrite);
    }

    #[test]
    fn overwritten_before_read_is_ppp003() {
        let mut f = Function::new("shadow", 0);
        let r = f.new_reg();
        f.blocks[0].insts = vec![
            Inst::Const { dst: r, value: 1 }, // dead: overwritten below
            Inst::Const { dst: r, value: 2 },
            Inst::Emit { src: r },
        ];
        f.blocks[0].term = Terminator::Return { value: None };
        let ds = lint(&f);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::DeadWrite);
    }

    #[test]
    fn effectful_writes_are_not_dead() {
        // rand advances the VM's input stream: never report it.
        let mut b = FunctionBuilder::new("fx", 0);
        let bound = b.constant(4);
        let _ignored = b.rand(bound);
        b.ret(None);
        assert!(lint(&b.finish()).is_empty());
    }

    #[test]
    fn loop_carried_value_is_live() {
        let mut b = FunctionBuilder::new("loop", 1);
        let p = b.param(0);
        let acc = b.constant(0);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(p, body, exit);
        b.switch_to(body);
        b.binary_to(acc, ppp_ir::BinOp::Add, acc, p);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(Some(acc));
        assert!(lint(&b.finish()).is_empty());
    }

    #[test]
    fn orphan_block_is_ppp001() {
        let mut b = FunctionBuilder::new("orphan", 1);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let ds = lint(&f);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].code, Code::UnreachableBlock);
        assert_eq!(ds[0].block, Some(dead));
    }
}
