//! Instrumentation-soundness checking (`PPP101`–`PPP105`).
//!
//! Abstract-interprets the path register over every counted acyclic DAG
//! path of an instrumented routine (capped by
//! [`LintOptions::max_paths_per_func`](crate::LintOptions)): the plan's
//! per-edge op lists are concatenated along the path and executed
//! symbolically via [`ppp_core::plan::simulate`]. Soundness requires, per
//! counted path `p`:
//!
//! - exactly one counting op executes (`PPP103`);
//! - it counts at index `p` — so increment sums form a bijection onto
//!   `[0, num_paths)` and collisions are impossible (`PPP101`);
//! - every counter access stays inside the routine's table (`PPP102`);
//! - for *iteration* paths (those starting at an `ENTRY → header` dummy),
//!   the counted index must not depend on the stale path-register value
//!   left behind by the previous path (`PPP104`) — the VM only guarantees
//!   `r = 0` at activation entry, not at back edges.
//!
//! Routines the plan leaves uninstrumented must contain no profiling
//! instructions at all (`PPP105`).

use crate::diag::{Code, Diagnostic};
use crate::LintOptions;
use ppp_core::dag::DagEdgeKind;
use ppp_core::numbering::decode_path;
use ppp_core::plan::simulate;
use ppp_core::FuncPlan;
use ppp_ir::{Inst, Module, ProfOp, TableKind};

/// Arbitrary distinct stale path-register values used to probe whether an
/// iteration path's count depends on its incoming register state.
const STALE_PROBES: [i64; 2] = [0x5CA1E, -0x7EAF];

/// Checks one routine's plan against the instrumentation semantics.
pub fn check_function(module: &Module, fp: &FuncPlan, options: &LintOptions) -> Vec<Diagnostic> {
    let f = module.function(fp.func);
    let mut out = Vec::new();
    let diag = |code: Code, message: String| Diagnostic {
        code,
        func: fp.func,
        func_name: f.name.clone(),
        block: None,
        message,
    };

    if !fp.instrumented {
        let profs = f.prof_inst_count();
        if profs > 0 {
            out.push(diag(
                Code::StrayInstrumentation,
                format!("routine is planned uninstrumented but contains {profs} profiling op(s)"),
            ));
        }
        return out;
    }

    let table = fp.table.expect("instrumented plans have a table");
    let array_size = match module.table(table).kind {
        TableKind::Array { size } => Some(size),
        TableKind::Hash { .. } => None,
    };

    // Static bound check on constant-index counts (other counting forms
    // are covered by the per-path simulation below).
    if let Some(size) = array_size {
        for (b, block) in f.iter_blocks() {
            for inst in &block.insts {
                if let Inst::Prof(ProfOp::CountConst { table: t, index }) = *inst {
                    if t == table && (index < 0 || index as u64 >= size) {
                        out.push(Diagnostic {
                            block: Some(b),
                            ..diag(
                                Code::CounterBounds,
                                format!(
                                    "constant count index {index} outside table of size {size}"
                                ),
                            )
                        });
                    }
                }
            }
        }
    }

    // Single-block routine: one empty path, counted by a constant op in
    // the body; there are no edges to simulate.
    if fp.dag.entry == fp.dag.exit {
        let counts: Vec<ProfOp> = f
            .blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter_map(|i| match i {
                Inst::Prof(op) if op.is_count() => Some(*op),
                _ => None,
            })
            .collect();
        if counts != [ProfOp::CountConst { table, index: 0 }] {
            out.push(diag(
                Code::CountMultiplicity,
                format!(
                    "single-block routine must count its one path exactly once at index 0, \
                     found {counts:?}"
                ),
            ));
        }
        return out;
    }

    let numbering = fp
        .numbering
        .as_ref()
        .expect("instrumented plans have a numbering");
    let checked_paths = fp.n_paths.min(options.max_paths_per_func);
    let mut budget = [options.max_diags_per_code; 4]; // 101, 102, 103, 104
    for p in 0..checked_paths {
        let Some(edges) = decode_path(&fp.dag, numbering, &fp.cold, p) else {
            if budget[0] > 0 {
                budget[0] -= 1;
                out.push(diag(
                    Code::PathNumbering,
                    format!("path id {p} < N = {} does not decode to a path", fp.n_paths),
                ));
            }
            continue;
        };
        let lists: Vec<&[ppp_core::plan::PlanOp]> = edges
            .iter()
            .map(|&e| fp.edge_ops[e.index()].as_slice())
            .collect();
        let iteration_path = edges
            .first()
            .is_some_and(|&e| matches!(fp.dag.edge(e).kind, DagEdgeKind::EntryDummy { .. }));

        // Activation-entry paths run with the VM's guaranteed r = 0;
        // iteration paths run with whatever the previous path left.
        let r_ins: &[i64] = if iteration_path { &STALE_PROBES } else { &[0] };
        let mut results = Vec::with_capacity(r_ins.len());
        for &r_in in r_ins {
            results.push(simulate(&lists, r_in));
        }
        if iteration_path && results.windows(2).any(|w| w[0] != w[1]) {
            if budget[3] > 0 {
                budget[3] -= 1;
                out.push(diag(
                    Code::RegisterLeak,
                    format!(
                        "iteration path {p} counts {:?} or {:?} depending on the stale \
                         path register",
                        results[0], results[1]
                    ),
                ));
            }
            continue;
        }
        let counted = &results[0];
        if counted.len() != 1 {
            if budget[2] > 0 {
                budget[2] -= 1;
                out.push(diag(
                    Code::CountMultiplicity,
                    format!(
                        "path {p} executes {} counting ops, expected 1",
                        counted.len()
                    ),
                ));
            }
            continue;
        }
        let idx = counted[0];
        if idx != p as i64 && budget[0] > 0 {
            budget[0] -= 1;
            out.push(diag(
                Code::PathNumbering,
                format!("path {p} counts at index {idx} instead of its own id"),
            ));
        }
        if let Some(size) = array_size {
            if (idx < 0 || idx as u64 >= size) && budget[1] > 0 {
                budget[1] -= 1;
                out.push(diag(
                    Code::CounterBounds,
                    format!("path {p} counts at index {idx}, outside table of size {size}"),
                ));
            }
        }
    }
    out
}

/// Checks every routine of a plan.
pub fn check_plan(plan: &ppp_core::ModulePlan, options: &LintOptions) -> Vec<Diagnostic> {
    plan.funcs
        .iter()
        .flat_map(|fp| check_function(&plan.module, fp, options))
        .collect()
}
