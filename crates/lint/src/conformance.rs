//! Plan-conformance checking (`PPP201`–`PPP203`).
//!
//! The instrumenter records every physical insertion it performs as a
//! [`Placement`](ppp_core::Placement): which block received a lowered op
//! list and whether it was prepended or appended. This analysis re-derives
//! the expected `Prof` layout of every block from those records and
//! compares it against the instrumented function:
//!
//! - per block, prepended ops must form the exact leading `Prof` prefix,
//!   appended ops the exact trailing suffix, with no profiling ops in
//!   between (`PPP201`);
//! - function-wide, the multiset of `Prof` ops must equal the multiset of
//!   placement ops — nothing lost, nothing duplicated (`PPP202`);
//! - every op must reference the plan's own counter table (`PPP203`).
//!
//! Only instrumented routines are checked; stray ops in uninstrumented
//! ones are the soundness checker's `PPP105`.

use crate::diag::{Code, Diagnostic};
use ppp_core::{FuncPlan, PlacePos};
use ppp_ir::{Function, Inst, ProfOp};
use std::collections::HashMap;

/// Checks one instrumented routine against its recorded placements.
pub fn check_function(f: &Function, fp: &FuncPlan) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if !fp.instrumented {
        return out;
    }
    let diag = |code: Code, block, message: String| Diagnostic {
        code,
        func: fp.func,
        func_name: f.name.clone(),
        block,
        message,
    };

    // Expected per-block layout. The instrumenter performs at most one
    // prepend (sole-predecessor target) and one append (sole-successor
    // source, split block, or single-block count) per block, but we
    // concatenate defensively in recording order.
    let n = f.blocks.len();
    let mut prepends: Vec<Vec<ProfOp>> = vec![Vec::new(); n];
    let mut appends: Vec<Vec<ProfOp>> = vec![Vec::new(); n];
    for p in &fp.placements {
        match p.pos {
            PlacePos::Prepend => prepends[p.block.index()].extend(p.ops.iter().copied()),
            PlacePos::Append => appends[p.block.index()].extend(p.ops.iter().copied()),
        }
    }

    for (b, block) in f.iter_blocks() {
        let actual: Vec<(usize, ProfOp)> = block
            .insts
            .iter()
            .enumerate()
            .filter_map(|(i, inst)| match inst {
                Inst::Prof(op) => Some((i, *op)),
                _ => None,
            })
            .collect();
        let pre = &prepends[b.index()];
        let app = &appends[b.index()];

        let prefix_ok = actual.len() >= pre.len()
            && actual
                .iter()
                .take(pre.len())
                .enumerate()
                .all(|(i, &(pos, op))| pos == i && op == pre[i]);
        let suffix_ok = actual.len() >= app.len()
            && actual
                .iter()
                .rev()
                .take(app.len())
                .enumerate()
                .all(|(i, &(pos, op))| {
                    pos == block.insts.len() - 1 - i && op == app[app.len() - 1 - i]
                });
        let middle_clean = actual.len() == pre.len() + app.len();
        if !(prefix_ok && suffix_ok && middle_clean) {
            out.push(diag(
                Code::PlacementMismatch,
                Some(b),
                format!(
                    "block carries {} profiling op(s) but the plan placed {} prepended \
                     and {} appended here",
                    actual.len(),
                    pre.len(),
                    app.len()
                ),
            ));
        }
    }

    // Function-wide multiset comparison.
    let mut delta: HashMap<ProfOp, i64> = HashMap::new();
    for block in &f.blocks {
        for inst in &block.insts {
            if let Inst::Prof(op) = inst {
                *delta.entry(*op).or_insert(0) += 1;
            }
        }
    }
    for p in &fp.placements {
        for &op in &p.ops {
            *delta.entry(op).or_insert(0) -= 1;
        }
    }
    let mut mismatched: Vec<(ProfOp, i64)> = delta.into_iter().filter(|&(_, d)| d != 0).collect();
    if !mismatched.is_empty() {
        mismatched.sort_by_key(|&(op, _)| format!("{op}"));
        let (op, d) = mismatched[0];
        out.push(diag(
            Code::OpMultisetMismatch,
            None,
            format!(
                "{} op kind(s) differ from the plan; e.g. `{op}` appears {d:+} time(s) \
                 vs the placements",
                mismatched.len()
            ),
        ));
    }

    // Table binding.
    let table = fp.table.expect("instrumented plans have a table");
    for (b, block) in f.iter_blocks() {
        for inst in &block.insts {
            if let Inst::Prof(op) = inst {
                if let Some(t) = op.table() {
                    if t != table {
                        out.push(diag(
                            Code::TableBinding,
                            Some(b),
                            format!("op `{op}` references {t} but the plan owns {table}"),
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Checks every instrumented routine of a plan.
pub fn check_plan(plan: &ppp_core::ModulePlan) -> Vec<Diagnostic> {
    plan.funcs
        .iter()
        .filter(|fp| fp.instrumented)
        .flat_map(|fp| check_function(plan.module.function(fp.func), fp))
        .collect()
}
