//! Translation validation for the optimizer (`PPP3xx`).
//!
//! The optimizer's transforms (`ppp-opt`'s inliner, unroller, and scalar
//! pipeline) each emit a [`TransformWitness`] describing what they claim
//! to have done. This module *checks* those claims against the source and
//! optimized modules, so a miscompile surfaces as a stable diagnostic
//! instead of a silently-wrong downstream measurement:
//!
//! - **inlining and unrolling** are validated by *witness replay*: an
//!   independent reimplementation of the splice/clone machinery applies
//!   the witness to the source module and the result is compared with the
//!   optimized module block by block. Every witnessed id (fresh register
//!   bases, appended block ids) must equal the id the replay allocates,
//!   so the transform's bookkeeping is cross-validated rather than
//!   trusted. Mismatches are classified by what the diverging block *is*:
//!   transform glue ([`Code::InlineProtocol`]), an unroll guard
//!   ([`Code::UnrollGuard`]), a clone whose side effects changed
//!   ([`Code::EffectMismatch`]) or whose pure code changed
//!   ([`Code::CloneMismatch`]), or an edge the witness cannot explain
//!   ([`Code::SimulationBroken`]);
//! - **counted unrolling's elided tests** are additionally justified by
//!   symbolic execution of the optimized wide body: walking the
//!   straight-line copies from the `i < factor` guard's else-branch
//!   (where `i >= factor >= 1`), every certified `i -= 1` decrement is
//!   counted, and each elided junction must occur with fewer than
//!   `factor` decrements executed — i.e. where the elided source test
//!   would provably have been true ([`Code::UnrollGuard`] otherwise);
//! - **the scalar pipeline** is validated directly through its block
//!   descent map: the map must be injective into the source blocks
//!   ([`Code::WitnessShape`]), every optimized edge must descend from a
//!   source edge and returns from returns ([`Code::SimulationBroken`]),
//!   and each block's abstract side-effect sequence (stores, calls,
//!   emits, rand draws, profiling ops) must match its source block's,
//!   modulo dead loads ([`Code::EffectMismatch`]);
//! - **edge profiles** are checked for shape agreement
//!   ([`Code::ProfileShape`]) and per-block Kirchhoff flow conservation
//!   ([`Code::FlowConservation`]) — the invariant exact tracing
//!   guarantees and every profile consumer assumes.

use crate::diag::{Code, Diagnostic, LintReport};
use ppp_ir::{
    BinOp, Block, BlockId, FuncId, Function, InlineStep, Inst, Module, ModuleEdgeProfile, Reg,
    ScalarFuncWitness, Terminator, TransformWitness, UnrollMode, UnrolledLoop,
};
use std::collections::HashSet;

/// Checks that `optimized` is the result `witness` claims of transforming
/// `source`. Returns every `PPP3xx` finding (empty report = validated).
pub fn check_transform(
    source: &Module,
    witness: &TransformWitness,
    optimized: &Module,
) -> LintReport {
    let mut report = LintReport::new();
    match witness {
        TransformWitness::Inline(w) => check_inline(source, &w.steps, optimized, &mut report),
        TransformWitness::Unroll(w) => check_unroll(source, &w.loops, optimized, &mut report),
        TransformWitness::Scalar(w) => check_scalar(source, &w.funcs, optimized, &mut report),
    }
    report.sort();
    report
}

/// Checks `profile` against `module`: shape agreement (`PPP307`) and
/// per-block flow conservation (`PPP308`).
pub fn check_profile(module: &Module, profile: &ModuleEdgeProfile) -> LintReport {
    let mut report = LintReport::new();
    if profile.funcs.len() != module.functions.len() {
        report.push(module_diag(
            Code::ProfileShape,
            format!(
                "profile covers {} function(s) but the module has {}",
                profile.funcs.len(),
                module.functions.len()
            ),
        ));
        return report;
    }
    for (i, (fp, f)) in profile.funcs.iter().zip(&module.functions).enumerate() {
        let fid = FuncId(i as u32);
        if !fp.shape_matches(f) {
            report.push(diag(
                Code::ProfileShape,
                fid,
                &f.name,
                None,
                "profile shape (block or successor counts) does not match the function".into(),
            ));
            continue;
        }
        for v in fp.flow_violations(f) {
            report.push(diag(
                Code::FlowConservation,
                fid,
                &f.name,
                v.block,
                format!(
                    "{} must equal {} but the profile records {}",
                    v.kind, v.expected, v.actual
                ),
            ));
        }
    }
    report.sort();
    report
}

fn diag(
    code: Code,
    func: FuncId,
    name: &str,
    block: Option<BlockId>,
    message: String,
) -> Diagnostic {
    Diagnostic {
        code,
        func,
        func_name: name.to_string(),
        block,
        message,
    }
}

/// A module-level finding not attributable to one routine.
fn module_diag(code: Code, message: String) -> Diagnostic {
    diag(code, FuncId(0), "<module>", None, message)
}

/// What role a block plays in the replayed module, used to classify
/// divergences between the replay and the optimized module.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BlockClass {
    /// Untouched by the transform.
    Plain,
    /// Transform glue: a rewritten call block or a spliced continuation.
    Glue,
    /// A clone of a source block (inlined callee body, unroll replica).
    Clone,
    /// A synthesized unroll guard block.
    Guard,
}

/// Per-function block classes, kept in sync with the replay module.
type ClassMap = Vec<Vec<BlockClass>>;

fn plain_classes(module: &Module) -> ClassMap {
    module
        .functions
        .iter()
        .map(|f| vec![BlockClass::Plain; f.blocks.len()])
        .collect()
}

// ---------------------------------------------------------------------------
// Inline validation: replay every witnessed splice, then compare.
// ---------------------------------------------------------------------------

fn check_inline(
    source: &Module,
    steps: &[InlineStep],
    optimized: &Module,
    report: &mut LintReport,
) {
    let mut replay = source.clone();
    let mut classes = plain_classes(source);
    for step in steps {
        if let Err(d) = replay_inline_step(&mut replay, step, &mut classes) {
            // The replay state no longer tracks the transform; comparing
            // the modules would only produce noise on top of the cause.
            report.push(d);
            return;
        }
    }
    compare_modules(&replay, optimized, &classes, report);
}

/// Replays one splice, mirroring the inliner's protocol, or reports why
/// the witness cannot be replayed.
fn replay_inline_step(
    replay: &mut Module,
    step: &InlineStep,
    classes: &mut ClassMap,
) -> Result<(), Diagnostic> {
    if step.caller.index() >= replay.functions.len()
        || step.callee.index() >= replay.functions.len()
    {
        return Err(module_diag(
            Code::WitnessShape,
            format!(
                "inline step references function {:?}/{:?} outside the module",
                step.caller, step.callee
            ),
        ));
    }
    // Clone the callee in its *current* state: an earlier splice may have
    // already rewritten it, and application order is part of the witness.
    let callee = replay.function(step.callee).clone();
    let caller = replay.function_mut(step.caller);
    let name = caller.name.clone();
    if step.block.index() >= caller.blocks.len()
        || step.inst >= caller.block(step.block).insts.len()
    {
        return Err(diag(
            Code::InlineProtocol,
            step.caller,
            &name,
            Some(step.block),
            format!(
                "witnessed call site b{}:{} does not exist in the caller",
                step.block.index(),
                step.inst
            ),
        ));
    }
    match &caller.block(step.block).insts[step.inst] {
        Inst::Call { callee: c, .. } if *c == step.callee => {}
        other => {
            return Err(diag(
                Code::InlineProtocol,
                step.caller,
                &name,
                Some(step.block),
                format!(
                    "witnessed call site holds {other:?}, not a call to {:?}",
                    step.callee
                ),
            ));
        }
    }
    // The witnessed ids must be exactly the ids this replay allocates.
    let expect_cont = BlockId::new(caller.blocks.len());
    let expect_block_base = caller.blocks.len() as u32 + 1;
    let expect_reg_base = caller.reg_count;
    if step.cont != expect_cont
        || step.block_base != expect_block_base
        || step.reg_base != expect_reg_base
    {
        return Err(diag(
            Code::WitnessShape,
            step.caller,
            &name,
            Some(step.block),
            format!(
                "witnessed allocation bases (cont {:?}, blocks {}, regs {}) disagree with the \
                 replay ({:?}, {}, {})",
                step.cont,
                step.block_base,
                step.reg_base,
                expect_cont,
                expect_block_base,
                expect_reg_base,
            ),
        ));
    }

    // --- the splice itself, mirroring the inliner ---
    let mut tail_insts = caller.block_mut(step.block).insts.split_off(step.inst);
    let call = tail_insts.remove(0);
    let Inst::Call { dst, args, .. } = call else {
        unreachable!("checked above");
    };
    let cont_term = std::mem::replace(
        &mut caller.block_mut(step.block).term,
        Terminator::Return { value: None },
    );
    let cont = caller.add_block(Block {
        insts: tail_insts,
        term: cont_term,
    });
    let reg_base = caller.reg_count;
    caller.reg_count += callee.reg_count;
    let block_base = caller.blocks.len() as u32;
    let remap_reg = |r: Reg| Reg(r.0 + reg_base);
    let remap_block = |b: BlockId| BlockId(b.0 + block_base);
    for cb in &callee.blocks {
        let insts = cb.insts.iter().map(|i| remap_regs(i, &remap_reg)).collect();
        let term = match &cb.term {
            Terminator::Jump { target } => Terminator::Jump {
                target: remap_block(*target),
            },
            Terminator::Branch {
                cond,
                then_target,
                else_target,
            } => Terminator::Branch {
                cond: remap_reg(*cond),
                then_target: remap_block(*then_target),
                else_target: remap_block(*else_target),
            },
            Terminator::Switch {
                disc,
                targets,
                default,
            } => Terminator::Switch {
                disc: remap_reg(*disc),
                targets: targets.iter().copied().map(remap_block).collect(),
                default: remap_block(*default),
            },
            Terminator::Return { .. } => Terminator::Jump { target: cont },
        };
        let mut block = Block { insts, term };
        if matches!(block.term, Terminator::Jump { target } if target == cont) {
            if let Some(d) = dst {
                match &cb.term {
                    Terminator::Return { value: Some(v) } => block.insts.push(Inst::Copy {
                        dst: d,
                        src: remap_reg(*v),
                    }),
                    Terminator::Return { value: None } => {
                        block.insts.push(Inst::Const { dst: d, value: 0 })
                    }
                    _ => {}
                }
            }
        }
        caller.blocks.push(block);
    }
    // Glue: zero every non-parameter register the callee reads anywhere,
    // then copy the arguments, then enter the body.
    let mut read_regs = vec![false; callee.reg_count as usize];
    let mut uses = Vec::new();
    for b in &callee.blocks {
        for inst in &b.insts {
            uses.clear();
            inst.uses(&mut uses);
            for &u in &uses {
                read_regs[u.index()] = true;
            }
        }
        if let Some(u) = b.term.use_reg() {
            read_regs[u.index()] = true;
        }
    }
    let zero_inits: Vec<Inst> = read_regs
        .iter()
        .enumerate()
        .skip(callee.param_count as usize)
        .filter(|&(_, &read)| read)
        .map(|(i, _)| Inst::Const {
            dst: Reg(reg_base + i as u32),
            value: 0,
        })
        .collect();
    let arg_copies: Vec<Inst> = args
        .iter()
        .enumerate()
        .map(|(i, &a)| Inst::Copy {
            dst: Reg(reg_base + i as u32),
            src: a,
        })
        .collect();
    let call_blk = caller.block_mut(step.block);
    call_blk.insts.extend(zero_inits);
    call_blk.insts.extend(arg_copies);
    call_blk.term = Terminator::Jump {
        target: remap_block(callee.entry),
    };

    let fc = &mut classes[step.caller.index()];
    fc[step.block.index()] = BlockClass::Glue;
    fc.push(BlockClass::Glue); // cont
    fc.resize(fc.len() + callee.blocks.len(), BlockClass::Clone);
    Ok(())
}

fn remap_regs(inst: &Inst, remap: &impl Fn(Reg) -> Reg) -> Inst {
    match inst {
        Inst::Const { dst, value } => Inst::Const {
            dst: remap(*dst),
            value: *value,
        },
        Inst::Copy { dst, src } => Inst::Copy {
            dst: remap(*dst),
            src: remap(*src),
        },
        Inst::Unary { dst, op, src } => Inst::Unary {
            dst: remap(*dst),
            op: *op,
            src: remap(*src),
        },
        Inst::Binary { dst, op, lhs, rhs } => Inst::Binary {
            dst: remap(*dst),
            op: *op,
            lhs: remap(*lhs),
            rhs: remap(*rhs),
        },
        Inst::Load { dst, addr } => Inst::Load {
            dst: remap(*dst),
            addr: remap(*addr),
        },
        Inst::Store { addr, src } => Inst::Store {
            addr: remap(*addr),
            src: remap(*src),
        },
        Inst::Rand { dst, bound } => Inst::Rand {
            dst: remap(*dst),
            bound: remap(*bound),
        },
        Inst::Call { dst, callee, args } => Inst::Call {
            dst: dst.map(remap),
            callee: *callee,
            args: args.iter().copied().map(remap).collect(),
        },
        Inst::Emit { src } => Inst::Emit { src: remap(*src) },
        Inst::Prof(op) => Inst::Prof(*op),
    }
}

// ---------------------------------------------------------------------------
// Unroll validation: replay every witnessed loop, compare, then justify
// counted elision symbolically.
// ---------------------------------------------------------------------------

fn check_unroll(
    source: &Module,
    loops: &[UnrolledLoop],
    optimized: &Module,
    report: &mut LintReport,
) {
    let mut replay = source.clone();
    let mut classes = plain_classes(source);
    for l in loops {
        if let Err(d) = replay_unroll_loop(&mut replay, l, &mut classes) {
            report.push(d);
            return;
        }
    }
    compare_modules(&replay, optimized, &classes, report);
    for l in loops {
        if matches!(l.mode, UnrollMode::Counted { .. }) {
            justify_counted(source, optimized, l, report);
        }
    }
}

/// Checks a witnessed loop's structural invariants shared by both modes.
fn check_loop_shape(f: &Function, l: &UnrolledLoop, name: &str) -> Result<(), Diagnostic> {
    let in_range = |b: BlockId| b.index() < f.blocks.len();
    if !in_range(l.header) || !l.cloned.iter().all(|&b| in_range(b)) || l.cloned.is_empty() {
        return Err(diag(
            Code::WitnessShape,
            l.func,
            name,
            Some(l.header),
            "witnessed loop references blocks outside the function or clones nothing".into(),
        ));
    }
    if !l.cloned.windows(2).all(|w| w[0] < w[1]) {
        return Err(diag(
            Code::WitnessShape,
            l.func,
            name,
            Some(l.header),
            "witnessed clone list is not sorted and duplicate-free".into(),
        ));
    }
    if l.copies.iter().any(|c| c.len() != l.cloned.len()) {
        return Err(diag(
            Code::WitnessShape,
            l.func,
            name,
            Some(l.header),
            "a replica set's length differs from the clone list".into(),
        ));
    }
    Ok(())
}

fn replay_unroll_loop(
    replay: &mut Module,
    l: &UnrolledLoop,
    classes: &mut ClassMap,
) -> Result<(), Diagnostic> {
    if l.func.index() >= replay.functions.len() {
        return Err(module_diag(
            Code::WitnessShape,
            format!(
                "unroll witness references function {:?} outside the module",
                l.func
            ),
        ));
    }
    let f = replay.function_mut(l.func);
    let name = f.name.clone();
    check_loop_shape(f, l, &name)?;
    match &l.mode {
        UnrollMode::Counted {
            factor,
            induction,
            main_header,
            guard_cond,
            guard_bound,
        } => {
            if l.cloned.contains(&l.header) {
                return Err(diag(
                    Code::WitnessShape,
                    l.func,
                    &name,
                    Some(l.header),
                    "counted mode must elide the header from the clone list".into(),
                ));
            }
            if *factor == 0 || l.copies.len() != *factor as usize {
                return Err(diag(
                    Code::WitnessShape,
                    l.func,
                    &name,
                    Some(l.header),
                    format!(
                        "counted factor {} disagrees with {} replica set(s)",
                        factor,
                        l.copies.len()
                    ),
                ));
            }
            // The source header must actually be a counted-loop test on
            // the witnessed induction register, or eliding it is bogus.
            let header_blk = f.block(l.header);
            let Terminator::Branch {
                cond, then_target, ..
            } = header_blk.term
            else {
                return Err(diag(
                    Code::UnrollGuard,
                    l.func,
                    &name,
                    Some(l.header),
                    "counted unroll witnessed on a header that is not a two-way test".into(),
                ));
            };
            if !header_blk.insts.is_empty() || cond != *induction {
                return Err(diag(
                    Code::UnrollGuard,
                    l.func,
                    &name,
                    Some(l.header),
                    "header computes more than the witnessed induction test".into(),
                ));
            }
            let Ok(first_idx) = l.cloned.binary_search(&then_target) else {
                return Err(diag(
                    Code::UnrollGuard,
                    l.func,
                    &name,
                    Some(l.header),
                    "the header's loop successor is not among the cloned blocks".into(),
                ));
            };
            // The source body must decrement the induction register by a
            // certified constant 1 exactly once, with no calls and no
            // other writes — the precondition for eliding its test.
            walk_certified_chain(f, then_target, &l.cloned, l.header, *induction).map_err(
                |why| {
                    diag(
                        Code::UnrollGuard,
                        l.func,
                        &name,
                        Some(l.header),
                        format!("source loop does not qualify for test elision: {why}"),
                    )
                },
            )?;

            // --- replay, mirroring the unroller's allocation order ---
            let expect_t = Reg(f.reg_count);
            let expect_k = Reg(f.reg_count + 1);
            let expect_mh = BlockId::new(f.blocks.len());
            if *guard_cond != expect_t || *guard_bound != expect_k || *main_header != expect_mh {
                return Err(diag(
                    Code::WitnessShape,
                    l.func,
                    &name,
                    Some(l.header),
                    format!(
                        "witnessed guard ids ({guard_cond:?}, {guard_bound:?}, {main_header:?}) \
                         disagree with the replay ({expect_t:?}, {expect_k:?}, {expect_mh:?})"
                    ),
                ));
            }
            let t = f.new_reg();
            let k = f.new_reg();
            let mh = f.add_block(Block::new(Terminator::Return { value: None }));
            let mut entries = Vec::new();
            for copy in &l.copies {
                let map = replay_clone(f, l, copy, mh, &name)?;
                entries.push(map[first_idx]);
            }
            // Re-chain copy j's back edge to copy j+1's entry.
            for j in 0..l.copies.len() - 1 {
                for &cb in &l.copies[j] {
                    let term = &mut f.block_mut(cb).term;
                    for s in 0..term.successor_count() {
                        if term.successor(s) == Some(mh) {
                            term.set_successor(s, entries[j + 1]);
                        }
                    }
                }
            }
            let guard = f.block_mut(mh);
            guard.insts.push(Inst::Const {
                dst: k,
                value: i64::from(*factor),
            });
            guard.insts.push(Inst::Binary {
                dst: t,
                op: BinOp::Lt,
                lhs: *induction,
                rhs: k,
            });
            guard.term = Terminator::Branch {
                cond: t,
                then_target: l.header,
                else_target: entries[0],
            };
            // Redirect entry edges (header-targets outside the loop and
            // its replicas) to the guard.
            let inside: HashSet<BlockId> = l
                .cloned
                .iter()
                .chain(std::iter::once(&l.header))
                .copied()
                .chain(l.copies.iter().flatten().copied())
                .chain(std::iter::once(mh))
                .collect();
            for b in f.block_ids().collect::<Vec<_>>() {
                if inside.contains(&b) {
                    continue;
                }
                let term = &mut f.block_mut(b).term;
                for s in 0..term.successor_count() {
                    if term.successor(s) == Some(l.header) {
                        term.set_successor(s, mh);
                    }
                }
            }
            let fc = &mut classes[l.func.index()];
            fc.push(BlockClass::Guard);
            fc.resize(
                fc.len() + l.copies.len() * l.cloned.len(),
                BlockClass::Clone,
            );
        }
        UnrollMode::Generic { factor, back_edges } => {
            if *factor < 2 || l.copies.len() != *factor as usize - 1 {
                return Err(diag(
                    Code::WitnessShape,
                    l.func,
                    &name,
                    Some(l.header),
                    format!(
                        "generic factor {} disagrees with {} replica set(s)",
                        factor,
                        l.copies.len()
                    ),
                ));
            }
            let header_idx = l.cloned.binary_search(&l.header).map_err(|_| {
                diag(
                    Code::WitnessShape,
                    l.func,
                    &name,
                    Some(l.header),
                    "generic mode must include the header in the clone list".into(),
                )
            })?;
            for e in back_edges {
                let valid = l.cloned.contains(&e.from)
                    && f.block(e.from).term.successor(e.succ_index()) == Some(l.header);
                if !valid {
                    return Err(diag(
                        Code::WitnessShape,
                        l.func,
                        &name,
                        Some(e.from),
                        "a witnessed back edge does not target the loop header".into(),
                    ));
                }
            }
            let mut maps = Vec::new();
            for copy in &l.copies {
                maps.push(replay_clone(f, l, copy, l.header, &name)?);
            }
            // Re-chain latches through the copies, as the unroller does.
            let lookup = |map: &Vec<BlockId>, b: BlockId| map[l.cloned.binary_search(&b).unwrap()];
            let redirect = |blocks: Vec<BlockId>, to: BlockId, f: &mut Function| {
                for b in blocks {
                    let term = &mut f.block_mut(b).term;
                    for s in 0..term.successor_count() {
                        if term.successor(s) == Some(l.header) {
                            term.set_successor(s, to);
                        }
                    }
                }
            };
            let latches: Vec<BlockId> = back_edges.iter().map(|e| e.from).collect();
            redirect(latches, l.copies[0][header_idx], f);
            for (j, map) in maps.iter().enumerate().take(maps.len() - 1) {
                let copy_latches: Vec<BlockId> =
                    back_edges.iter().map(|e| lookup(map, e.from)).collect();
                redirect(copy_latches, l.copies[j + 1][header_idx], f);
            }
            let fc = &mut classes[l.func.index()];
            fc.resize(
                fc.len() + l.copies.len() * l.cloned.len(),
                BlockClass::Clone,
            );
        }
    }
    Ok(())
}

/// Clones the witnessed loop body once, checking each appended block gets
/// exactly the witnessed id; in-body targets are remapped and header
/// targets are redirected to `back_to`. Returns the replica ids aligned
/// with `l.cloned`.
fn replay_clone(
    f: &mut Function,
    l: &UnrolledLoop,
    copy: &[BlockId],
    back_to: BlockId,
    name: &str,
) -> Result<Vec<BlockId>, Diagnostic> {
    let mut ids = Vec::with_capacity(copy.len());
    for (&src, &witnessed) in l.cloned.iter().zip(copy) {
        let id = f.add_block(f.block(src).clone());
        if id != witnessed {
            return Err(diag(
                Code::WitnessShape,
                l.func,
                name,
                Some(src),
                format!(
                    "witnessed replica {witnessed:?} of {src:?} disagrees with the replayed {id:?}"
                ),
            ));
        }
        ids.push(id);
    }
    for &id in &ids {
        let term = &mut f.block_mut(id).term;
        for s in 0..term.successor_count() {
            let tgt = term.successor(s).expect("in-range successor");
            if tgt == l.header {
                term.set_successor(s, back_to);
            } else if let Ok(i) = l.cloned.binary_search(&tgt) {
                term.set_successor(s, ids[i]);
            }
        }
    }
    Ok(ids)
}

/// Walks the straight-line chain from `start` through `body` back to
/// `stop`, requiring exactly one decrement of `induction` by a certified
/// constant 1 and nothing else that writes it (or could: calls are
/// rejected outright). Errors describe why elision would be unsound.
fn walk_certified_chain(
    f: &Function,
    start: BlockId,
    body: &[BlockId],
    stop: BlockId,
    induction: Reg,
) -> Result<(), String> {
    let mut decrements = 0usize;
    let mut ones: Vec<Reg> = Vec::new();
    let mut cur = start;
    for _ in 0..body.len() + 1 {
        for inst in &f.block(cur).insts {
            if let Inst::Binary {
                dst,
                op: BinOp::Sub,
                lhs,
                rhs,
            } = inst
            {
                if *dst == induction && *lhs == induction {
                    if !ones.contains(rhs) {
                        return Err("decrement amount is not a certified constant 1".into());
                    }
                    decrements += 1;
                    continue;
                }
            }
            if matches!(inst, Inst::Call { .. }) {
                return Err("the body calls another routine".into());
            }
            if inst.def() == Some(induction) {
                return Err("the body writes the induction register".into());
            }
            if let Some(d) = inst.def() {
                ones.retain(|&r| r != d);
                if matches!(inst, Inst::Const { value: 1, .. }) {
                    ones.push(d);
                }
            }
        }
        match f.block(cur).term {
            Terminator::Jump { target } if target == stop => {
                return if decrements == 1 {
                    Ok(())
                } else {
                    Err(format!(
                        "the body decrements {decrements} time(s), not exactly once"
                    ))
                };
            }
            Terminator::Jump { target } if body.binary_search(&target).is_ok() => cur = target,
            _ => return Err("the body is not a straight-line chain".into()),
        }
    }
    Err("the body chain never returns to the header".into())
}

/// Justifies counted unrolling's elided tests on the *optimized* module:
/// symbolically executes the wide body from the guard's else-branch
/// (where `induction >= bound >= 1`) and checks that each elided junction
/// is reached with fewer than `bound` certified decrements — exactly when
/// the elided source test would have been true.
fn justify_counted(source: &Module, optimized: &Module, l: &UnrolledLoop, report: &mut LintReport) {
    let UnrollMode::Counted {
        induction,
        main_header,
        guard_cond,
        guard_bound,
        ..
    } = &l.mode
    else {
        return;
    };
    if l.func.index() >= optimized.functions.len() || l.func.index() >= source.functions.len() {
        return; // already reported as PPP301 by the replay/compare
    }
    let f = optimized.function(l.func);
    let in_range = |b: BlockId| b.index() < f.blocks.len();
    if !in_range(*main_header)
        || !l.copies.iter().flatten().all(|&b| in_range(b))
        || l.copies.is_empty()
    {
        return; // shape already reported
    }
    let mut fail = |block: BlockId, why: String| {
        report.push(diag(Code::UnrollGuard, l.func, &f.name, Some(block), why));
    };
    // The guard must establish `induction >= bound` on the wide-body edge.
    let guard = f.block(*main_header);
    let bound = match guard.insts.as_slice() {
        [Inst::Const { dst: kd, value }, Inst::Binary {
            dst: td,
            op: BinOp::Lt,
            lhs,
            rhs,
        }] if kd == guard_bound
            && td == guard_cond
            && lhs == induction
            && rhs == guard_bound
            && *value >= 1 =>
        {
            *value
        }
        _ => {
            fail(
                *main_header,
                "guard block does not establish `induction >= bound >= 1`".into(),
            );
            return;
        }
    };
    let (entries, sf) = (&l.copies, source.function(l.func));
    let Terminator::Branch { then_target, .. } = sf.block(l.header).term else {
        return; // source shape already reported by the replay
    };
    let Ok(first_idx) = l.cloned.binary_search(&then_target) else {
        return;
    };
    let Terminator::Branch {
        cond,
        then_target: g_then,
        else_target: g_else,
    } = guard.term
    else {
        fail(
            *main_header,
            "guard block does not branch on its test".into(),
        );
        return;
    };
    if cond != *guard_cond || g_then != l.header || g_else != entries[0][first_idx] {
        fail(
            *main_header,
            "guard branch does not dispatch remainder-vs-wide-body on its test".into(),
        );
        return;
    }

    // Symbolic walk of the chained copies: `induction >= bound` holds on
    // entry; after d certified decrements, `induction >= bound - d`, so
    // an elided junction is sound iff d < bound there.
    let mut decrements: i64 = 0;
    let mut ones: Vec<Reg> = Vec::new();
    for (j, copy) in l.copies.iter().enumerate() {
        let copy_set: HashSet<BlockId> = copy.iter().copied().collect();
        let junction = if j + 1 < l.copies.len() {
            l.copies[j + 1][first_idx]
        } else {
            *main_header
        };
        let mut cur = copy[first_idx];
        let mut steps = 0usize;
        loop {
            if steps > copy.len() {
                fail(cur, "wide-body copy is not a straight-line chain".into());
                return;
            }
            steps += 1;
            for inst in &f.block(cur).insts {
                if let Inst::Binary {
                    dst,
                    op: BinOp::Sub,
                    lhs,
                    rhs,
                } = inst
                {
                    if *dst == *induction && *lhs == *induction {
                        if !ones.contains(rhs) {
                            fail(cur, "uncertified write to the induction register".into());
                            return;
                        }
                        decrements += 1;
                        continue;
                    }
                }
                if matches!(inst, Inst::Call { .. }) || inst.def() == Some(*induction) {
                    fail(cur, "wide body may clobber the induction register".into());
                    return;
                }
                if let Some(d) = inst.def() {
                    ones.retain(|&r| r != d);
                    if matches!(inst, Inst::Const { value: 1, .. }) {
                        ones.push(d);
                    }
                }
            }
            match f.block(cur).term {
                Terminator::Jump { target } if target == junction => break,
                Terminator::Jump { target } if copy_set.contains(&target) => cur = target,
                _ => {
                    fail(cur, "wide-body copy does not chain to the next copy".into());
                    return;
                }
            }
        }
        // The junction into copy j+1 elides a source test; the final
        // junction re-enters the guard, which re-tests.
        if j + 1 < l.copies.len() && decrements >= bound {
            fail(
                junction,
                format!(
                    "elided test unjustified: {decrements} decrement(s) may exhaust the \
                     guard bound {bound}"
                ),
            );
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// Replay-vs-optimized comparison with class-based mismatch triage.
// ---------------------------------------------------------------------------

fn compare_modules(
    replay: &Module,
    optimized: &Module,
    classes: &ClassMap,
    report: &mut LintReport,
) {
    if replay.functions.len() != optimized.functions.len() {
        report.push(module_diag(
            Code::WitnessShape,
            format!(
                "replayed module has {} function(s) but the optimized module has {}",
                replay.functions.len(),
                optimized.functions.len()
            ),
        ));
        return;
    }
    for (i, (rf, of)) in replay
        .functions
        .iter()
        .zip(&optimized.functions)
        .enumerate()
    {
        let fid = FuncId(i as u32);
        if rf.blocks.len() != of.blocks.len()
            || rf.reg_count != of.reg_count
            || rf.param_count != of.param_count
        {
            report.push(diag(
                Code::WitnessShape,
                fid,
                &of.name,
                None,
                format!(
                    "replay predicts {} block(s)/{} register(s), the optimized function has \
                     {}/{}",
                    rf.blocks.len(),
                    rf.reg_count,
                    of.blocks.len(),
                    of.reg_count
                ),
            ));
            continue;
        }
        if rf.entry != of.entry {
            report.push(diag(
                Code::SimulationBroken,
                fid,
                &of.name,
                None,
                format!(
                    "entry moved to {:?}; the replay predicts {:?}",
                    of.entry, rf.entry
                ),
            ));
        }
        for (bi, (rb, ob)) in rf.blocks.iter().zip(&of.blocks).enumerate() {
            let block = BlockId::new(bi);
            let class = classes[i].get(bi).copied().unwrap_or(BlockClass::Plain);
            if rb.term != ob.term {
                let code = match class {
                    BlockClass::Guard => Code::UnrollGuard,
                    _ => Code::SimulationBroken,
                };
                report.push(diag(
                    code,
                    fid,
                    &of.name,
                    Some(block),
                    format!(
                        "terminator {:?} differs from the replayed {:?}",
                        ob.term, rb.term
                    ),
                ));
            }
            if rb.insts != ob.insts {
                let code = match class {
                    BlockClass::Glue => Code::InlineProtocol,
                    BlockClass::Guard => Code::UnrollGuard,
                    BlockClass::Clone | BlockClass::Plain => {
                        if effect_kinds(ob) != effect_kinds(rb) {
                            Code::EffectMismatch
                        } else {
                            Code::CloneMismatch
                        }
                    }
                };
                report.push(diag(
                    code,
                    fid,
                    &of.name,
                    Some(block),
                    format!(
                        "instructions differ from the witnessed replay ({} vs {} op(s))",
                        ob.insts.len(),
                        rb.insts.len()
                    ),
                ));
            }
        }
    }
}

/// The abstract side-effect alphabet: what an optimized region must
/// preserve about a source region, ignoring register renaming.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum EffectKind {
    Load,
    Store,
    Call(FuncId),
    Emit,
    Rand,
    Prof,
}

fn effect_kinds(block: &Block) -> Vec<EffectKind> {
    block
        .insts
        .iter()
        .filter_map(|inst| match inst {
            Inst::Load { .. } => Some(EffectKind::Load),
            Inst::Store { .. } => Some(EffectKind::Store),
            Inst::Call { callee, .. } => Some(EffectKind::Call(*callee)),
            Inst::Emit { .. } => Some(EffectKind::Emit),
            Inst::Rand { .. } => Some(EffectKind::Rand),
            Inst::Prof(_) => Some(EffectKind::Prof),
            _ => None,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Scalar validation: direct simulation checks through the descent map.
// ---------------------------------------------------------------------------

fn check_scalar(
    source: &Module,
    funcs: &[ScalarFuncWitness],
    optimized: &Module,
    report: &mut LintReport,
) {
    if funcs.len() != source.functions.len() || optimized.functions.len() != source.functions.len()
    {
        report.push(module_diag(
            Code::WitnessShape,
            format!(
                "scalar witness covers {} function(s); source has {}, optimized has {}",
                funcs.len(),
                source.functions.len(),
                optimized.functions.len()
            ),
        ));
        return;
    }
    for (i, w) in funcs.iter().enumerate() {
        let fid = FuncId(i as u32);
        check_scalar_func(
            &source.functions[i],
            w,
            &optimized.functions[i],
            fid,
            report,
        );
    }
}

fn check_scalar_func(
    sf: &Function,
    w: &ScalarFuncWitness,
    of: &Function,
    fid: FuncId,
    report: &mut LintReport,
) {
    let origin = &w.origin;
    if origin.len() != of.blocks.len() {
        report.push(diag(
            Code::WitnessShape,
            fid,
            &of.name,
            None,
            format!(
                "descent map covers {} block(s) but the optimized function has {}",
                origin.len(),
                of.blocks.len()
            ),
        ));
        return;
    }
    let mut seen = HashSet::new();
    for &o in origin {
        if o.index() >= sf.blocks.len() || !seen.insert(o) {
            report.push(diag(
                Code::WitnessShape,
                fid,
                &of.name,
                Some(o),
                "descent map is not an injection into the source blocks".into(),
            ));
            return;
        }
    }
    if origin[of.entry.index()] != sf.entry {
        report.push(diag(
            Code::SimulationBroken,
            fid,
            &of.name,
            Some(of.entry),
            format!(
                "optimized entry descends from {:?}, not the source entry {:?}",
                origin[of.entry.index()],
                sf.entry
            ),
        ));
    }
    for (bi, ob) in of.blocks.iter().enumerate() {
        let block = BlockId::new(bi);
        let sb = sf.block(origin[bi]);
        // Edge legality: every optimized edge must descend from a source
        // edge out of the same origin block (branch folding may *drop*
        // successors, never invent them), and returns from returns.
        let src_succs: Vec<BlockId> = sb.term.successors();
        match (&ob.term, &sb.term) {
            (Terminator::Return { value: ov }, Terminator::Return { value: sv }) => {
                if ov.is_some() != sv.is_some() {
                    report.push(diag(
                        Code::SimulationBroken,
                        fid,
                        &of.name,
                        Some(block),
                        "return value presence differs from the source block".into(),
                    ));
                }
            }
            (Terminator::Return { .. }, _) | (_, Terminator::Return { .. }) => {
                report.push(diag(
                    Code::SimulationBroken,
                    fid,
                    &of.name,
                    Some(block),
                    "block exchanges a return for a branch against its source".into(),
                ));
            }
            (ot, _) => {
                let legal = ot.successors().iter().all(|&s| {
                    origin
                        .get(s.index())
                        .is_some_and(|&so| src_succs.contains(&so))
                });
                if !legal {
                    report.push(diag(
                        Code::SimulationBroken,
                        fid,
                        &of.name,
                        Some(block),
                        "an optimized edge has no corresponding source edge".into(),
                    ));
                }
            }
        }
        // Side effects: the optimized sequence must be the source
        // sequence with (dead) loads elided — the only effectful-looking
        // op the scalar pipeline is allowed to delete.
        if !effects_match_with_load_elision(&effect_kinds(sb), &effect_kinds(ob)) {
            report.push(diag(
                Code::EffectMismatch,
                fid,
                &of.name,
                Some(block),
                "side-effect sequence is not the source's modulo dead loads".into(),
            ));
        }
    }
}

/// `true` when `optimized` can be obtained from `source` by deleting only
/// `Load` entries.
fn effects_match_with_load_elision(source: &[EffectKind], optimized: &[EffectKind]) -> bool {
    let mut oi = 0;
    for s in source {
        if oi < optimized.len() && optimized[oi] == *s {
            oi += 1;
        } else if *s != EffectKind::Load {
            return false;
        }
    }
    oi == optimized.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{FunctionBuilder, ScalarWitness};

    fn emit_module() -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(7);
        b.emit(c);
        b.ret(None);
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn identity_scalar_witness_validates() {
        let m = emit_module();
        let w = TransformWitness::Scalar(ScalarWitness {
            funcs: vec![ScalarFuncWitness::identity(m.functions[0].blocks.len())],
        });
        assert!(check_transform(&m, &w, &m).is_empty());
    }

    #[test]
    fn truncated_scalar_witness_is_ppp301() {
        let m = emit_module();
        let w = TransformWitness::Scalar(ScalarWitness {
            funcs: vec![ScalarFuncWitness { origin: vec![] }],
        });
        let r = check_transform(&m, &w, &m);
        assert!(r.has(Code::WitnessShape));
    }

    #[test]
    fn dropped_emit_is_ppp304() {
        let m = emit_module();
        let mut opt = m.clone();
        opt.functions[0].blocks[0]
            .insts
            .retain(|i| !matches!(i, Inst::Emit { .. }));
        let w = TransformWitness::Scalar(ScalarWitness {
            funcs: vec![ScalarFuncWitness::identity(m.functions[0].blocks.len())],
        });
        let r = check_transform(&m, &w, &opt);
        assert!(r.has(Code::EffectMismatch));
    }

    #[test]
    fn load_elision_subsequence_rules() {
        use EffectKind::*;
        assert!(effects_match_with_load_elision(&[Load, Emit], &[Emit]));
        assert!(effects_match_with_load_elision(
            &[Load, Emit],
            &[Load, Emit]
        ));
        assert!(!effects_match_with_load_elision(&[Store, Emit], &[Emit]));
        assert!(!effects_match_with_load_elision(&[Emit], &[Emit, Emit]));
        assert!(!effects_match_with_load_elision(
            &[Emit, Store],
            &[Store, Emit]
        ));
    }

    #[test]
    fn profile_shape_and_flow_codes() {
        let m = emit_module();
        let good = ModuleEdgeProfile::zeroed(&m);
        assert!(check_profile(&m, &good).is_empty());
        let empty = ModuleEdgeProfile::default();
        assert!(check_profile(&m, &empty).has(Code::ProfileShape));
        let mut bad = ModuleEdgeProfile::zeroed(&m);
        bad.func_mut(FuncId(0)).set_block(BlockId(0), 3);
        let r = check_profile(&m, &bad);
        assert!(r.has(Code::FlowConservation));
        assert!(!r.is_clean());
    }
}
