//! # ppp-faults: deterministic fault injection for profile ingestion
//!
//! The paper's premise (§1, §5) is that path profiles feed a *dynamic*
//! optimizer — an environment where truncated runs, saturated counters,
//! lost trace events, and stale profile artifacts are the norm, not the
//! exception. This crate produces exactly those damage shapes, on
//! purpose and reproducibly, so the ingestion pipeline's degradation
//! ladder can be exercised and gated in CI.
//!
//! Every mutation is driven by a seeded [`SplitMix64`] stream: a
//! [`FaultPlan`] of the same `(site, seed)` produces byte-identical
//! damage on every run and platform, which is what lets `repro chaos`
//! assert "the pipeline always completes and always *reports* the
//! degradation" as a deterministic test rather than a flaky fuzz run.
//!
//! The sites ([`FaultSite`]) cover the ingestion surface end to end:
//! persisted-artifact damage ([`FaultPlan::truncate_bytes`],
//! [`FaultPlan::corrupt_bytes`]), counter saturation
//! ([`FaultPlan::saturate_edge_profile`],
//! [`FaultPlan::saturate_path_profile`]), the 701×3 hash table
//! overflowing (driven by running the profiler with a deliberately
//! undersized table), dropped VM trace events
//! ([`FaultPlan::trace_faults`] → [`TraceFaults`]), a run killed
//! mid-execution (a tiny step budget), and a stale profile shape.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use ppp_ir::{ModuleEdgeProfile, ModulePathProfile};
use ppp_vm::{SplitMix64, TraceFaults};
use std::fmt;

/// One injectable fault site in the profile pipeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// Cut the persisted edge-profile artifact short.
    TruncateEdgeBytes,
    /// Flip bytes inside the persisted edge-profile artifact.
    CorruptEdgeBytes,
    /// Cut the persisted path-profile artifact short.
    TruncatePathBytes,
    /// Flip bytes inside the persisted path-profile artifact.
    CorruptPathBytes,
    /// Pin a function's profile counters at `u64::MAX`.
    SaturateCounters,
    /// Overflow the paper's hash table: run with far fewer than 701
    /// slots so probe exhaustion loses paths.
    HashOverflow,
    /// Drop VM trace events on a deterministic cadence.
    DropTraceEvents,
    /// Kill the profiled run mid-execution (tiny step budget).
    KillMidRun,
    /// Load the profile against a later build whose function order (and
    /// some shapes) changed.
    StaleShape,
    /// Cut a streamed aggregation frame short mid-payload (a worker
    /// dying mid-send).
    TruncateFrame,
    /// Flip bytes inside a streamed aggregation frame (header or
    /// payload) — the per-frame CRC must catch it.
    CorruptFrame,
    /// Kill a worker's aggregation connection after a seed-chosen
    /// number of frames: the stream simply stops, with no `Done`.
    KillConnection,
    /// Crash the whole aggregation server after a seed-chosen number
    /// of frames, then restart it over the same durability directory —
    /// checkpoint + WAL recovery must lose nothing and double-count
    /// nothing.
    CrashRestart,
    /// Stall a connection mid-frame (a slowloris peer): the server's
    /// read deadline must fire with a typed `timed-out` rejection, not
    /// a pinned thread.
    StallConnection,
    /// Overload the server so it sheds frames with `overloaded`
    /// rejections; a retrying client resends and nothing is counted
    /// twice.
    ShedOverload,
    /// The JIT loop re-optimizes off an aggregator snapshot taken while
    /// the serving run was still streaming deltas: the profile is a
    /// truthful prefix, not the full run.
    StaleSnapshotMidReopt,
    /// The host hot-swaps a re-optimized generation while a workload
    /// run is in flight: the run completes on the old code and its
    /// profile arrives against the new module's shape.
    SwapDuringRun,
}

impl FaultSite {
    /// Every fault site, in sweep order.
    pub const ALL: [FaultSite; 17] = [
        FaultSite::TruncateEdgeBytes,
        FaultSite::CorruptEdgeBytes,
        FaultSite::TruncatePathBytes,
        FaultSite::CorruptPathBytes,
        FaultSite::SaturateCounters,
        FaultSite::HashOverflow,
        FaultSite::DropTraceEvents,
        FaultSite::KillMidRun,
        FaultSite::StaleShape,
        FaultSite::TruncateFrame,
        FaultSite::CorruptFrame,
        FaultSite::KillConnection,
        FaultSite::CrashRestart,
        FaultSite::StallConnection,
        FaultSite::ShedOverload,
        FaultSite::StaleSnapshotMidReopt,
        FaultSite::SwapDuringRun,
    ];

    /// Stable machine-readable name (used in chaos reports and CLI args).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::TruncateEdgeBytes => "truncate-edge-bytes",
            FaultSite::CorruptEdgeBytes => "corrupt-edge-bytes",
            FaultSite::TruncatePathBytes => "truncate-path-bytes",
            FaultSite::CorruptPathBytes => "corrupt-path-bytes",
            FaultSite::SaturateCounters => "saturate-counters",
            FaultSite::HashOverflow => "hash-overflow",
            FaultSite::DropTraceEvents => "drop-trace-events",
            FaultSite::KillMidRun => "kill-mid-run",
            FaultSite::StaleShape => "stale-shape",
            FaultSite::TruncateFrame => "truncate-frame",
            FaultSite::CorruptFrame => "corrupt-frame",
            FaultSite::KillConnection => "kill-connection",
            FaultSite::CrashRestart => "crash-restart",
            FaultSite::StallConnection => "stall-connection",
            FaultSite::ShedOverload => "shed-overload",
            FaultSite::StaleSnapshotMidReopt => "stale-snapshot-mid-reopt",
            FaultSite::SwapDuringRun => "swap-during-run",
        }
    }

    /// Parses a site from its [`FaultSite::name`].
    pub fn parse(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|f| f.name() == s)
    }

    /// `true` for the sites whose chaos scenario must leave a
    /// flight-recorder dump artifact behind: the serve-tier trio
    /// (crash, stall, shed) and the JIT-loop pair (stale snapshot,
    /// mid-run swap). The operator debugging one of these needs the
    /// last-N-records ring, not just the degradation report.
    pub fn dumps_flight_recorder(self) -> bool {
        matches!(
            self,
            FaultSite::CrashRestart
                | FaultSite::StallConnection
                | FaultSite::ShedOverload
                | FaultSite::StaleSnapshotMidReopt
                | FaultSite::SwapDuringRun
        )
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic, seeded plan for injecting one fault.
///
/// The same plan always produces the same damage; different seeds move
/// the cut points, flipped bytes, and dropped events around.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    /// Where to inject.
    pub site: FaultSite,
    /// Determinism seed for every random choice the injection makes.
    pub seed: u64,
}

impl FaultPlan {
    /// Creates a plan.
    pub fn new(site: FaultSite, seed: u64) -> Self {
        Self { site, seed }
    }

    /// The plan's private random stream (site-keyed, so two sites with
    /// the same seed still damage different offsets).
    fn rng(&self) -> SplitMix64 {
        let site_key = self.site.name().bytes().fold(0u64, |h, b| {
            h.wrapping_mul(0x100_0000_01B3).wrapping_add(u64::from(b))
        });
        SplitMix64::new(self.seed ^ site_key)
    }

    /// Truncates `bytes` at a seed-chosen offset; returns the cut point.
    ///
    /// The offset is uniform in `[0, len)`, so the cut can land inside a
    /// section header, a payload, or the trailer — every loader stage
    /// gets exercised across seeds.
    pub fn truncate_bytes(&self, bytes: &mut Vec<u8>) -> usize {
        let mut rng = self.rng();
        if bytes.is_empty() {
            return 0;
        }
        let cut = (rng.next_u64() % bytes.len() as u64) as usize;
        bytes.truncate(cut);
        cut
    }

    /// Flips `flips` bytes of `bytes` at seed-chosen offsets to
    /// seed-chosen values; returns the damaged offsets.
    pub fn corrupt_bytes(&self, bytes: &mut [u8], flips: usize) -> Vec<usize> {
        let mut rng = self.rng();
        let mut hit = Vec::new();
        if bytes.is_empty() {
            return hit;
        }
        for _ in 0..flips {
            let at = (rng.next_u64() % bytes.len() as u64) as usize;
            let new = (rng.next_u64() & 0xFF) as u8;
            // Force a change even when the draw equals the old byte.
            bytes[at] = if new == bytes[at] { new ^ 0x01 } else { new };
            hit.push(at);
        }
        hit
    }

    /// Pins one seed-chosen function's edge counters at `u64::MAX`;
    /// returns the function index, or `None` for an empty profile.
    pub fn saturate_edge_profile(&self, profile: &mut ModuleEdgeProfile) -> Option<usize> {
        let n = profile.funcs.len();
        if n == 0 {
            return None;
        }
        let mut rng = self.rng();
        let i = (rng.next_u64() % n as u64) as usize;
        let f = &mut profile.funcs[i];
        f.set_entries(u64::MAX);
        Some(i)
    }

    /// Pins one seed-chosen recorded path's frequency at `u64::MAX`;
    /// returns the function index, or `None` if no paths are recorded.
    pub fn saturate_path_profile(&self, profile: &mut ModulePathProfile) -> Option<usize> {
        let populated: Vec<usize> = profile
            .funcs
            .iter()
            .enumerate()
            .filter(|(_, fp)| !fp.paths.is_empty())
            .map(|(i, _)| i)
            .collect();
        if populated.is_empty() {
            return None;
        }
        let mut rng = self.rng();
        let i = populated[(rng.next_u64() % populated.len() as u64) as usize];
        let fp = &mut profile.funcs[i];
        let mut keys: Vec<_> = fp.paths.keys().cloned().collect();
        keys.sort_by(|a, b| a.start.cmp(&b.start).then(a.edges.cmp(&b.edges)));
        let k = &keys[(rng.next_u64() % keys.len() as u64) as usize];
        fp.paths.get_mut(k).expect("key exists").freq = u64::MAX;
        Some(i)
    }

    /// The VM-level trace-fault configuration for this plan: drop edge
    /// events and path completions on short, seed-phased cadences.
    pub fn trace_faults(&self) -> TraceFaults {
        TraceFaults {
            drop_edge_every: 5,
            drop_path_every: 7,
            seed: self.seed,
        }
    }

    /// Step budget for a killed run: small enough that every benchmark
    /// halts mid-execution with `HaltReason::StepLimit`, large enough to
    /// accumulate a partial (truncated) profile worth salvaging.
    pub fn kill_step_budget(&self) -> u64 {
        let mut rng = self.rng();
        2_000 + rng.next_u64() % 8_000
    }

    /// For a killed aggregation connection: how many of `total` frames
    /// arrive before the stream stops. Always fewer than `total` (the
    /// `Done` frame never makes it), at least zero.
    pub fn frames_delivered(&self, total: usize) -> usize {
        if total == 0 {
            return 0;
        }
        let mut rng = self.rng();
        (rng.next_u64() % total as u64) as usize
    }

    /// For a shedding server: which of `total` frames are refused with
    /// an `overloaded` rejection (and must therefore be retried by the
    /// client). Roughly one in three, seed-chosen, never the first —
    /// shedding the hello would just be an admission refusal.
    pub fn shed_mask(&self, total: usize) -> Vec<bool> {
        let mut rng = self.rng();
        (0..total)
            .map(|i| i > 0 && rng.next_u64().is_multiple_of(3))
            .collect()
    }

    /// For a stalled (slowloris) peer: how many bytes of its frame
    /// arrive before the stall (at least one so the read starts, never
    /// the full `len`).
    pub fn stall_offset(&self, len: usize) -> usize {
        if len <= 1 {
            return len;
        }
        let mut rng = self.rng();
        1 + (rng.next_u64() % (len as u64 - 1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_names_roundtrip() {
        for s in FaultSite::ALL {
            assert_eq!(FaultSite::parse(s.name()), Some(s));
        }
        assert_eq!(FaultSite::parse("nope"), None);
    }

    #[test]
    fn flight_recorder_sites_are_the_serve_tier_trio_plus_the_jit_pair() {
        let dumping: Vec<_> = FaultSite::ALL
            .into_iter()
            .filter(|s| s.dumps_flight_recorder())
            .collect();
        assert_eq!(
            dumping,
            vec![
                FaultSite::CrashRestart,
                FaultSite::StallConnection,
                FaultSite::ShedOverload,
                FaultSite::StaleSnapshotMidReopt,
                FaultSite::SwapDuringRun,
            ]
        );
    }

    #[test]
    fn same_plan_same_damage() {
        let plan = FaultPlan::new(FaultSite::CorruptEdgeBytes, 701);
        let original: Vec<u8> = (0u8..=255).cycle().take(4096).collect();
        let mut a = original.clone();
        let mut b = original.clone();
        assert_eq!(plan.corrupt_bytes(&mut a, 8), plan.corrupt_bytes(&mut b, 8));
        assert_eq!(a, b);
        assert_ne!(a, original);
    }

    #[test]
    fn different_sites_damage_differently() {
        let base: Vec<u8> = vec![0xAA; 1024];
        let mut a = base.clone();
        let mut b = base.clone();
        FaultPlan::new(FaultSite::CorruptEdgeBytes, 1).corrupt_bytes(&mut a, 4);
        FaultPlan::new(FaultSite::CorruptPathBytes, 1).corrupt_bytes(&mut b, 4);
        assert_ne!(a, b, "site key must decorrelate streams");
    }

    #[test]
    fn truncation_is_deterministic_and_in_range() {
        let plan = FaultPlan::new(FaultSite::TruncateEdgeBytes, 99);
        let mut a = vec![1u8; 500];
        let mut b = vec![1u8; 500];
        let ca = plan.truncate_bytes(&mut a);
        let cb = plan.truncate_bytes(&mut b);
        assert_eq!(ca, cb);
        assert!(ca < 500);
        assert_eq!(a.len(), ca);
        let mut empty = Vec::new();
        assert_eq!(plan.truncate_bytes(&mut empty), 0);
    }

    #[test]
    fn kill_budget_is_small_but_nonzero() {
        let b = FaultPlan::new(FaultSite::KillMidRun, 3).kill_step_budget();
        assert!((2_000..10_000).contains(&b));
    }
}
