//! The interpreter.
//!
//! A small register-machine interpreter over [`ppp_ir`] modules with an
//! explicit frame stack (no host recursion), a deterministic input stream,
//! a cost model, optional exact tracing, and profile counter storage for
//! instrumented code.

use crate::cost::CostModel;
use crate::rng::SplitMix64;
use crate::storage::ProfileStore;
use crate::trace::{PathCursor, TraceFaults, Tracer};
use ppp_ir::{
    BlockId, EdgeRef, FuncId, Inst, Module, ModuleEdgeProfile, ModulePathProfile, ProfOp, Reg,
    Terminator,
};
use std::fmt;

/// Why a run stopped.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HaltReason {
    /// The entry function returned.
    Finished,
    /// The dynamic step budget was exhausted.
    StepLimit,
    /// The call stack exceeded the configured depth.
    CallDepthLimit,
}

/// Errors preventing a run from starting.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VmError {
    /// The named entry function does not exist.
    NoSuchFunction {
        /// The missing name.
        name: String,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::NoSuchFunction { name } => write!(f, "no function named {name:?}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Run configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    /// Seed for the synthetic input stream ([`ppp_ir::Inst::Rand`]).
    pub seed: u64,
    /// Dynamic step budget (instructions + terminators, including
    /// instrumentation); the run halts with [`HaltReason::StepLimit`] when
    /// exhausted.
    pub max_steps: u64,
    /// Global memory size in 64-bit words; addresses wrap.
    pub mem_words: usize,
    /// Collect edge and exact path profiles.
    pub trace: bool,
    /// Additionally record the *ordered* stream of completed paths
    /// (implies nothing unless `trace` is set; memory: one entry per
    /// dynamic path). Consumed by online predictors such as NET.
    pub trace_sequence: bool,
    /// Cost model.
    pub cost: CostModel,
    /// Maximum call-stack depth.
    pub max_call_depth: usize,
    /// Deterministic trace-event dropping (fault injection; only
    /// meaningful when `trace` is set).
    pub trace_faults: Option<TraceFaults>,
    /// Cut an incremental [`ProfileDelta`](crate::trace::ProfileDelta) every this many trace events
    /// (0 = keep the whole profile until exit; only meaningful when
    /// `trace` is set). Merging a run's deltas reproduces its cumulative
    /// profiles exactly.
    pub delta_interval: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            max_steps: 200_000_000,
            mem_words: 1 << 16,
            trace: false,
            trace_sequence: false,
            cost: CostModel::default(),
            max_call_depth: 512,
            trace_faults: None,
            delta_interval: 0,
        }
    }
}

impl RunOptions {
    /// Returns options with tracing enabled.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Returns options with tracing and path-sequence recording enabled.
    pub fn traced_with_sequence(mut self) -> Self {
        self.trace = true;
        self.trace_sequence = true;
        self
    }

    /// Returns options with the given seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns options that drop trace events per `faults` (implies
    /// nothing unless tracing is also enabled).
    pub fn with_trace_faults(mut self, faults: TraceFaults) -> Self {
        self.trace_faults = Some(faults);
        self
    }

    /// Returns options that cut an incremental profile delta every
    /// `interval` trace events (implies nothing unless tracing is
    /// enabled).
    pub fn with_delta_interval(mut self, interval: u64) -> Self {
        self.delta_interval = interval;
        self
    }
}

/// The outcome of one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Why the run stopped.
    pub halt: HaltReason,
    /// Order-sensitive checksum of all `emit`ted values; instrumentation
    /// and semantics-preserving optimizations must not change it.
    pub checksum: u64,
    /// Total cost units, including instrumentation.
    pub cost: u64,
    /// Cost units spent on profiling instrumentation only.
    pub prof_cost: u64,
    /// Dynamic step count (instructions + terminators, incl. prof ops).
    pub steps: u64,
    /// Dynamic profiling ops executed.
    pub prof_steps: u64,
    /// Number of calls executed (including the entry invocation).
    pub calls: u64,
    /// Runtime path-counter tables (instrumented runs).
    pub store: ProfileStore,
    /// Exact edge profile (when tracing).
    pub edge_profile: Option<ModuleEdgeProfile>,
    /// Exact path profile (when tracing).
    pub path_profile: Option<ModulePathProfile>,
    /// Ordered stream of completed paths (when `trace_sequence` was set).
    pub path_sequence: Vec<(FuncId, ppp_ir::PathKey)>,
    /// `(edge events, path completions)` dropped by injected trace faults
    /// (always `(0, 0)` without [`RunOptions::trace_faults`]).
    pub trace_events_dropped: (u64, u64),
    /// Incremental profile deltas cut during the run (empty without
    /// [`RunOptions::delta_interval`]); merging them reproduces
    /// `edge_profile`/`path_profile` exactly.
    pub deltas: Vec<crate::trace::ProfileDelta>,
}

impl RunResult {
    /// Cost units spent on the program itself (excluding instrumentation).
    pub fn program_cost(&self) -> u64 {
        self.cost - self.prof_cost
    }

    /// Runtime overhead of instrumentation relative to `baseline` cost:
    /// `cost / baseline - 1`, or `None` when `baseline` is zero (a
    /// degenerate benchmark — e.g. an entry function that halts before
    /// retiring any costed instruction). Callers that know their baseline
    /// is live should `expect` the value; pipeline code records a
    /// `ppp_degenerate_baseline_total` metric instead of panicking.
    pub fn overhead_vs(&self, baseline: u64) -> Option<f64> {
        if baseline == 0 {
            return None;
        }
        Some(self.cost as f64 / baseline as f64 - 1.0)
    }

    /// Records this run's VM-level observables into a metrics registry.
    ///
    /// Everything recorded here is read from counters the interpreter
    /// already maintains — the hot loop is untouched, so calling this (or
    /// not) cannot perturb the measured run.
    pub fn record_metrics(&self, reg: &ppp_obs::Registry, labels: &[(&str, &str)]) {
        reg.inc_by("ppp_vm_steps_total", labels, self.steps);
        reg.inc_by("ppp_vm_prof_steps_total", labels, self.prof_steps);
        reg.inc_by("ppp_vm_cost_units_total", labels, self.cost);
        reg.inc_by("ppp_vm_prof_cost_units_total", labels, self.prof_cost);
        reg.inc_by("ppp_vm_calls_total", labels, self.calls);
        let (edges, paths) = self.trace_events_dropped;
        reg.inc_by("ppp_vm_trace_edge_events_dropped_total", labels, edges);
        reg.inc_by("ppp_vm_trace_path_events_dropped_total", labels, paths);
        reg.inc_by("ppp_vm_paths_lost_total", labels, self.store.total_lost());
        reg.inc_by("ppp_vm_paths_cold_total", labels, self.store.total_cold());
        reg.inc_by(
            "ppp_vm_hash_collisions_total",
            labels,
            self.store.total_collisions(),
        );
        reg.inc_by(
            "ppp_vm_counters_saturated_total",
            labels,
            self.store.total_saturated(),
        );
        for table in self.store.iter() {
            if table.is_hash() {
                reg.observe("ppp_vm_hash_occupancy", labels, table.occupancy());
            }
        }
    }
}

struct Frame {
    func: FuncId,
    block: BlockId,
    inst: usize,
    regs: Vec<i64>,
    path_r: i64,
    ret_dst: Option<Reg>,
    cursor: Option<PathCursor>,
}

/// Runs `module` starting at its function named `entry`.
///
/// # Errors
///
/// Returns [`VmError::NoSuchFunction`] if `entry` does not name a function.
///
/// # Examples
///
/// ```
/// use ppp_ir::{FunctionBuilder, Module};
/// use ppp_vm::{run, RunOptions};
///
/// let mut b = FunctionBuilder::new("main", 0);
/// let c = b.constant(41);
/// b.emit(c);
/// b.ret(Some(c));
/// let mut m = Module::new();
/// m.add_function(b.finish());
///
/// let result = run(&m, "main", &RunOptions::default())?;
/// assert_eq!(result.halt, ppp_vm::HaltReason::Finished);
/// # Ok::<(), ppp_vm::VmError>(())
/// ```
pub fn run(module: &Module, entry: &str, options: &RunOptions) -> Result<RunResult, VmError> {
    let entry_id = module
        .function_by_name(entry)
        .ok_or_else(|| VmError::NoSuchFunction {
            name: entry.to_owned(),
        })?;
    Ok(run_func(module, entry_id, options))
}

/// Runs `module` starting at `entry` (which receives zeroed arguments).
pub fn run_func(module: &Module, entry: FuncId, options: &RunOptions) -> RunResult {
    Interp::new(module, options).run(entry)
}

struct Interp<'m> {
    module: &'m Module,
    opts: &'m RunOptions,
    mem: Vec<i64>,
    rng: SplitMix64,
    checksum: u64,
    cost: u64,
    prof_cost: u64,
    steps: u64,
    prof_steps: u64,
    calls: u64,
    store: ProfileStore,
    tracer: Option<Tracer>,
    stack: Vec<Frame>,
}

impl<'m> Interp<'m> {
    fn new(module: &'m Module, opts: &'m RunOptions) -> Self {
        Self {
            module,
            opts,
            mem: vec![0; opts.mem_words.max(1)],
            rng: SplitMix64::new(opts.seed),
            checksum: 0,
            cost: 0,
            prof_cost: 0,
            steps: 0,
            prof_steps: 0,
            calls: 0,
            store: ProfileStore::for_module(module),
            tracer: opts.trace.then(|| {
                let mut t = Tracer::new(module);
                if opts.trace_sequence {
                    t.record_sequence();
                }
                if let Some(f) = opts.trace_faults {
                    t.inject_faults(f);
                }
                if opts.delta_interval > 0 {
                    t.enable_deltas(module, opts.delta_interval);
                }
                t
            }),
            stack: Vec::new(),
        }
    }

    fn push_frame(&mut self, func: FuncId, args: &[i64], ret_dst: Option<Reg>) {
        let f = self.module.function(func);
        let mut regs = vec![0i64; f.reg_count as usize];
        let n = args.len().min(regs.len());
        regs[..n].copy_from_slice(&args[..n]);
        let cursor = self
            .tracer
            .as_mut()
            .map(|t| t.enter_function(func, f.entry));
        self.calls += 1;
        self.stack.push(Frame {
            func,
            block: f.entry,
            inst: 0,
            regs,
            path_r: 0,
            ret_dst,
            cursor,
        });
    }

    fn run(mut self, entry: FuncId) -> RunResult {
        self.push_frame(entry, &[], None);
        let halt = self.exec_loop();
        let (edge_profile, path_profile, path_sequence, trace_events_dropped, deltas) =
            match self.tracer {
                Some(t) => {
                    let dropped = t.dropped_events();
                    let (e, p, s, d) = t.finish_full(self.module);
                    (Some(e), Some(p), s, dropped, d)
                }
                None => (None, None, Vec::new(), (0, 0), Vec::new()),
            };
        RunResult {
            halt,
            checksum: self.checksum,
            cost: self.cost,
            prof_cost: self.prof_cost,
            steps: self.steps,
            prof_steps: self.prof_steps,
            calls: self.calls,
            store: self.store,
            edge_profile,
            path_profile,
            path_sequence,
            trace_events_dropped,
            deltas,
        }
    }

    fn exec_loop(&mut self) -> HaltReason {
        loop {
            if self.steps >= self.opts.max_steps {
                return HaltReason::StepLimit;
            }
            let frame = self.stack.last_mut().expect("non-empty stack in loop");
            let func = frame.func;
            let f = self.module.function(func);
            let block = f.block(frame.block);
            if frame.inst < block.insts.len() {
                let idx = frame.inst;
                frame.inst += 1;
                // Clone-free access: instructions are small; `Call` carries
                // a Vec but is read-only here.
                let inst = &block.insts[idx];
                self.steps += 1;
                match inst {
                    Inst::Prof(op) => {
                        self.prof_steps += 1;
                        let c = self.opts.cost.prof_cost(*op, self.table_is_hash(*op));
                        self.cost += c;
                        self.prof_cost += c;
                        self.exec_prof(*op);
                    }
                    Inst::Call { dst, callee, args } => {
                        self.cost += self.opts.cost.call;
                        if self.stack.len() >= self.opts.max_call_depth {
                            return HaltReason::CallDepthLimit;
                        }
                        let frame = self.stack.last().expect("frame");
                        let argv: Vec<i64> = args.iter().map(|r| frame.regs[r.index()]).collect();
                        let (dst, callee) = (*dst, *callee);
                        self.push_frame(callee, &argv, dst);
                    }
                    other => {
                        self.cost += self.opts.cost.inst_cost(other);
                        self.exec_simple(other);
                    }
                }
            } else {
                self.steps += 1;
                self.cost += self.opts.cost.term_cost(&block.term);
                match &block.term {
                    Terminator::Return { value } => {
                        let frame = self.stack.last().expect("frame");
                        let v = value.map_or(0, |r| frame.regs[r.index()]);
                        let frame = self.stack.pop().expect("frame");
                        if let (Some(t), Some(c)) = (self.tracer.as_mut(), frame.cursor) {
                            t.exit_function(frame.func, c);
                        }
                        match self.stack.last_mut() {
                            None => return HaltReason::Finished,
                            Some(parent) => {
                                if let Some(dst) = frame.ret_dst {
                                    parent.regs[dst.index()] = v;
                                }
                            }
                        }
                    }
                    term => {
                        let frame = self.stack.last().expect("frame");
                        let s = match term {
                            Terminator::Jump { .. } => 0,
                            Terminator::Branch { cond, .. } => {
                                usize::from(frame.regs[cond.index()] == 0)
                            }
                            Terminator::Switch { disc, targets, .. } => {
                                let v = frame.regs[disc.index()];
                                if v >= 0 && (v as usize) < targets.len() {
                                    v as usize
                                } else {
                                    targets.len()
                                }
                            }
                            Terminator::Return { .. } => unreachable!("handled above"),
                        };
                        let target = term.successor(s).expect("selected successor exists");
                        let edge = EdgeRef::new(frame.block, s);
                        let frame = self.stack.last_mut().expect("frame");
                        frame.block = target;
                        frame.inst = 0;
                        if let (Some(t), Some(c)) = (self.tracer.as_mut(), frame.cursor.as_mut()) {
                            t.take_edge(func, c, edge, target);
                        }
                    }
                }
            }
        }
    }

    fn table_is_hash(&self, op: ProfOp) -> bool {
        op.table()
            .map(|t| self.module.table(t).kind.is_hash())
            .unwrap_or(false)
    }

    fn exec_prof(&mut self, op: ProfOp) {
        let frame = self.stack.last_mut().expect("frame");
        match op {
            ProfOp::SetR { value } => frame.path_r = value,
            ProfOp::AddR { value } => frame.path_r = frame.path_r.wrapping_add(value),
            ProfOp::CountR { table } => {
                let r = frame.path_r;
                self.store.table_mut(table).bump(r);
            }
            ProfOp::CountRPlus { table, addend } => {
                let r = frame.path_r.wrapping_add(addend);
                self.store.table_mut(table).bump(r);
            }
            ProfOp::CountConst { table, index } => {
                self.store.table_mut(table).bump(index);
            }
            ProfOp::CountRChecked { table } => {
                let r = frame.path_r;
                let t = self.store.table_mut(table);
                if r < 0 {
                    t.bump_cold();
                } else {
                    t.bump(r);
                }
            }
            ProfOp::CountRPlusChecked { table, addend } => {
                let r = frame.path_r;
                let t = self.store.table_mut(table);
                if r < 0 {
                    t.bump_cold();
                } else {
                    t.bump(r.wrapping_add(addend));
                }
            }
        }
    }

    fn exec_simple(&mut self, inst: &Inst) {
        let mem_len = self.mem.len() as i64;
        let frame = self.stack.last_mut().expect("frame");
        match inst {
            Inst::Const { dst, value } => frame.regs[dst.index()] = *value,
            Inst::Copy { dst, src } => frame.regs[dst.index()] = frame.regs[src.index()],
            Inst::Unary { dst, op, src } => {
                frame.regs[dst.index()] = op.eval(frame.regs[src.index()]);
            }
            Inst::Binary { dst, op, lhs, rhs } => {
                frame.regs[dst.index()] = op.eval(frame.regs[lhs.index()], frame.regs[rhs.index()]);
            }
            Inst::Load { dst, addr } => {
                let a = frame.regs[addr.index()].rem_euclid(mem_len) as usize;
                frame.regs[dst.index()] = self.mem[a];
            }
            Inst::Store { addr, src } => {
                let a = frame.regs[addr.index()].rem_euclid(mem_len) as usize;
                self.mem[a] = frame.regs[src.index()];
            }
            Inst::Rand { dst, bound } => {
                let b = frame.regs[bound.index()];
                frame.regs[dst.index()] = self.rng.below(b);
            }
            Inst::Emit { src } => {
                let v = frame.regs[src.index()] as u64;
                self.checksum = self
                    .checksum
                    .rotate_left(13)
                    .wrapping_add(v ^ 0x9E37_79B9_7F4A_7C15);
            }
            Inst::Call { .. } | Inst::Prof(_) => unreachable!("handled by exec_loop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{BinOp, FunctionBuilder, TableDecl, TableKind};

    fn module_one(f: ppp_ir::Function) -> Module {
        let mut m = Module::new();
        m.add_function(f);
        m
    }

    #[test]
    fn straight_line_arithmetic() {
        let mut b = FunctionBuilder::new("main", 0);
        let x = b.constant(20);
        let y = b.constant(22);
        let s = b.binary(BinOp::Add, x, y);
        b.emit(s);
        b.ret(Some(s));
        let m = module_one(b.finish());
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.halt, HaltReason::Finished);
        assert_eq!(r.calls, 1);
        // const + const + add + emit = 4 basic, ret = 1 terminator.
        assert_eq!(r.steps, 5);
        assert_eq!(r.cost, 5);
        assert_eq!(r.prof_cost, 0);
    }

    #[test]
    fn missing_entry_errors() {
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        let m = module_one(b.finish());
        assert!(matches!(
            run(&m, "nope", &RunOptions::default()),
            Err(VmError::NoSuchFunction { .. })
        ));
    }

    #[test]
    fn branch_selects_successor() {
        // if 1 != 0 then emit 7 else emit 9
        let mut b = FunctionBuilder::new("main", 0);
        let c = b.constant(1);
        let (t, e, j) = (b.new_block(), b.new_block(), b.new_block());
        b.branch(c, t, e);
        b.switch_to(t);
        let v7 = b.constant(7);
        b.emit(v7);
        b.jump(j);
        b.switch_to(e);
        let v9 = b.constant(9);
        b.emit(v9);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let m = module_one(b.finish());
        let r1 = run(&m, "main", &RunOptions::default()).unwrap();

        // Flip the condition to 0: different checksum (else arm).
        let mut m2 = m.clone();
        m2.function_mut(FuncId(0)).blocks[0].insts[0] = Inst::Const {
            dst: Reg(0),
            value: 0,
        };
        let r2 = run(&m2, "main", &RunOptions::default()).unwrap();
        assert_ne!(r1.checksum, r2.checksum);
    }

    #[test]
    fn switch_in_and_out_of_range() {
        let mut b = FunctionBuilder::new("main", 1);
        let (a, c, d) = (b.new_block(), b.new_block(), b.new_block());
        let disc = b.constant(1);
        b.switch(disc, vec![a, c], d);
        b.switch_to(a);
        b.ret(None);
        b.switch_to(c);
        let v = b.constant(5);
        b.emit(v);
        b.ret(None);
        b.switch_to(d);
        b.ret(None);
        let m = module_one(b.finish());
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        // disc = 1 selects targets[1] = c, which emits.
        assert_ne!(r.checksum, 0);
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut m = Module::new();
        let mut g = FunctionBuilder::new("inc", 1);
        let p = g.param(0);
        let one = g.constant(1);
        let s = g.binary(BinOp::Add, p, one);
        g.ret(Some(s));
        let gid = m.add_function(g.finish());

        let mut b = FunctionBuilder::new("main", 0);
        let x = b.constant(41);
        let y = b.call(gid, vec![x]);
        b.emit(y);
        b.ret(Some(y));
        m.add_function(b.finish());

        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.halt, HaltReason::Finished);
        assert_eq!(r.calls, 2);
    }

    #[test]
    fn loops_and_step_limit() {
        // Infinite loop halts at the step budget.
        let mut b = FunctionBuilder::new("main", 0);
        let l = b.new_block();
        b.jump(l);
        b.switch_to(l);
        b.jump(l);
        let m = module_one(b.finish());
        let opts = RunOptions {
            max_steps: 1000,
            ..RunOptions::default()
        };
        let r = run(&m, "main", &opts).unwrap();
        assert_eq!(r.halt, HaltReason::StepLimit);
        assert_eq!(r.steps, 1000);
    }

    #[test]
    fn recursion_depth_limit() {
        let mut m = Module::new();
        // f() calls f() forever.
        let mut b = FunctionBuilder::new("main", 0);
        b.call_void(FuncId(0), vec![]);
        b.ret(None);
        m.add_function(b.finish());
        let opts = RunOptions {
            max_call_depth: 16,
            ..RunOptions::default()
        };
        let r = run(&m, "main", &opts).unwrap();
        assert_eq!(r.halt, HaltReason::CallDepthLimit);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let mut b = FunctionBuilder::new("main", 0);
        let bound = b.constant(1000);
        let v = b.rand(bound);
        b.emit(v);
        b.ret(None);
        let m = module_one(b.finish());
        let r1 = run(&m, "main", &RunOptions::default().with_seed(9)).unwrap();
        let r2 = run(&m, "main", &RunOptions::default().with_seed(9)).unwrap();
        let r3 = run(&m, "main", &RunOptions::default().with_seed(10)).unwrap();
        assert_eq!(r1.checksum, r2.checksum);
        assert_ne!(r1.checksum, r3.checksum);
    }

    #[test]
    fn memory_wraps_addresses() {
        let mut b = FunctionBuilder::new("main", 0);
        let addr = b.constant(-3);
        let v = b.constant(77);
        b.store(addr, v);
        let l = b.load(addr);
        b.emit(l);
        b.ret(None);
        let m = module_one(b.finish());
        let opts = RunOptions {
            mem_words: 8,
            ..RunOptions::default()
        };
        let r = run(&m, "main", &opts).unwrap();
        assert_eq!(r.halt, HaltReason::Finished);
        // Load observes the stored value through the same wrapped address.
        let mut b2 = FunctionBuilder::new("main", 0);
        let v2 = b2.constant(77);
        b2.emit(v2);
        b2.ret(None);
        let m2 = module_one(b2.finish());
        let r2 = run(&m2, "main", &opts).unwrap();
        assert_eq!(r.checksum, r2.checksum);
    }

    #[test]
    fn prof_ops_update_store_and_costs() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let t = m.add_table(TableDecl {
            func: fid,
            kind: TableKind::Array { size: 8 },
            hot_paths: 8,
        });
        let f = m.function_mut(fid);
        f.blocks[0].insts.extend([
            Inst::Prof(ProfOp::SetR { value: 2 }),
            Inst::Prof(ProfOp::AddR { value: 3 }),
            Inst::Prof(ProfOp::CountR { table: t }),
            Inst::Prof(ProfOp::CountRPlus {
                table: t,
                addend: -5,
            }),
            Inst::Prof(ProfOp::CountConst { table: t, index: 7 }),
        ]);
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        let counts: Vec<_> = r.store.table(t).iter_counts().collect();
        assert_eq!(counts, vec![(0, 1), (5, 1), (7, 1)]);
        assert_eq!(r.prof_steps, 5);
        // 2 reg ops + 3 array counts = 2*1 + 3*2 = 8 cost units.
        assert_eq!(r.prof_cost, 8);
        assert_eq!(r.program_cost(), 1); // just the ret
    }

    #[test]
    fn checked_counts_report_cold() {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("main", 0);
        b.ret(None);
        let fid = m.add_function(b.finish());
        let t = m.add_table(TableDecl {
            func: fid,
            kind: TableKind::Array { size: 8 },
            hot_paths: 8,
        });
        let f = m.function_mut(fid);
        f.blocks[0].insts.extend([
            Inst::Prof(ProfOp::SetR { value: -1_000_000 }),
            Inst::Prof(ProfOp::CountRChecked { table: t }),
            Inst::Prof(ProfOp::SetR { value: 3 }),
            Inst::Prof(ProfOp::CountRPlusChecked {
                table: t,
                addend: 1,
            }),
        ]);
        let r = run(&m, "main", &RunOptions::default()).unwrap();
        assert_eq!(r.store.table(t).cold(), 1);
        assert_eq!(
            r.store.table(t).iter_counts().collect::<Vec<_>>(),
            vec![(4, 1)]
        );
    }

    #[test]
    fn tracing_produces_profiles_and_costs_match_untraced() {
        let mut b = FunctionBuilder::new("main", 0);
        let ten = b.constant(10);
        let i = b.copy(ten); // countdown register
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(i, body, exit);
        b.switch_to(body);
        let one = b.constant(1);
        b.binary_to(i, BinOp::Sub, i, one);
        b.jump(hdr);
        b.switch_to(exit);
        b.ret(None);
        let m = module_one(b.finish());

        let plain = run(&m, "main", &RunOptions::default()).unwrap();
        let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
        assert_eq!(plain.cost, traced.cost, "tracing must not perturb cost");
        assert_eq!(plain.checksum, traced.checksum);

        let edges = traced.edge_profile.unwrap();
        let paths = traced.path_profile.unwrap();
        let f0 = FuncId(0);
        assert_eq!(edges.func(f0).entries(), 1);
        // Loop body executes 10 times.
        assert_eq!(edges.func(f0).edge(EdgeRef::new(BlockId(1), 0)), 10);
        // Paths: entry..back (1), header-iteration..back (9), header->exit (1).
        assert_eq!(paths.func(f0).total_unit_flow(), 11);
        assert_eq!(paths.func(f0).distinct_paths(), 3);
    }
}
