//! # ppp-vm: deterministic execution substrate for the PPP reproduction
//!
//! The paper measures path-profiling overhead on an AlphaServer running
//! SPEC2000. This crate is the substitute substrate: a deterministic
//! interpreter for [`ppp_ir`] modules that
//!
//! - executes instrumented or uninstrumented code and charges each
//!   operation per a [`CostModel`] whose ratios follow the paper (hash
//!   counter update ≈ 5× array update; poison checks cost one comparison),
//! - maintains the runtime path-counter tables ([`ProfileStore`]),
//!   including the 701-slot × 3-probe hash table with a lost-path counter
//!   (§7.4),
//! - optionally traces execution exactly, producing the reference edge
//!   profile and ground-truth path profile that accuracy and coverage are
//!   measured against (§6), and
//! - draws program input from a seeded stream so instrumented and
//!   uninstrumented runs of the same seed follow bit-identical control
//!   flow (the paper's *self advice* setting, §7.2).
//!
//! # Examples
//!
//! ```
//! use ppp_ir::{FunctionBuilder, Module, BinOp};
//! use ppp_vm::{run, RunOptions};
//!
//! // A tiny program: sum 0..10 and emit the total.
//! let mut b = FunctionBuilder::new("main", 0);
//! let ten = b.constant(10);
//! let i = b.copy(ten);
//! let acc = b.constant(0);
//! let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
//! b.jump(hdr);
//! b.switch_to(hdr);
//! b.branch(i, body, exit);
//! b.switch_to(body);
//! let one = b.constant(1);
//! b.binary_to(acc, BinOp::Add, acc, i);
//! b.binary_to(i, BinOp::Sub, i, one);
//! b.jump(hdr);
//! b.switch_to(exit);
//! b.emit(acc);
//! b.ret(Some(acc));
//! let mut m = Module::new();
//! m.add_function(b.finish());
//!
//! let result = run(&m, "main", &RunOptions::default().traced())?;
//! let paths = result.path_profile.expect("traced run records paths");
//! assert_eq!(paths.func(ppp_ir::FuncId(0)).total_unit_flow(), 11);
//! # Ok::<(), ppp_vm::VmError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod cost;
mod host;
mod machine;
mod rng;
mod storage;
mod trace;

pub use cost::CostModel;
pub use host::{Checkout, VmHost};
pub use machine::{run, run_func, HaltReason, RunOptions, RunResult, VmError};
pub use rng::SplitMix64;
pub use storage::{CounterTable, ProfileStore};
pub use trace::{EdgeClassifier, EdgeKind, PathCursor, ProfileDelta, TraceFaults, Tracer};
