//! Runtime path-frequency counter storage: dense arrays and the paper's
//! 701-slot hash table with three probes and a lost-path counter (§7.4).

use ppp_ir::{Module, TableId, TableKind};

/// One counter table at runtime.
#[derive(Clone, Debug)]
pub enum CounterTable {
    /// Dense array of counters, indexed directly by path number.
    Array {
        /// Counter slots.
        counts: Vec<u64>,
        /// Paths whose index fell outside the array (should not happen for
        /// well-formed instrumentation; kept as a safety valve).
        lost: u64,
        /// Poisoned (negative-register) paths observed by checked counts.
        cold: u64,
    },
    /// Open-addressed hash table with bounded probing.
    Hash {
        /// `slots[i] = Some((key, count))` for occupied slots.
        slots: Vec<Option<(u64, u64)>>,
        /// Maximum probes before a path is recorded as lost.
        max_probes: u32,
        /// Paths lost to probe exhaustion.
        lost: u64,
        /// Poisoned (negative-register) paths observed by checked counts.
        cold: u64,
        /// Probe attempts that hit a slot occupied by a *different* key
        /// (each extra probe of the double-hash sequence counts once).
        /// This is the observability signal for 701×3 table pressure.
        collisions: u64,
    },
}

impl CounterTable {
    /// Creates an empty table for the given declaration kind.
    pub fn new(kind: TableKind) -> Self {
        match kind {
            TableKind::Array { size } => CounterTable::Array {
                counts: vec![0; usize::try_from(size).expect("array size fits usize")],
                lost: 0,
                cold: 0,
            },
            TableKind::Hash { slots, max_probes } => CounterTable::Hash {
                slots: vec![None; usize::try_from(slots).expect("slot count fits usize")],
                max_probes,
                lost: 0,
                cold: 0,
                collisions: 0,
            },
        }
    }

    /// Returns `true` for hash-backed tables.
    pub fn is_hash(&self) -> bool {
        matches!(self, CounterTable::Hash { .. })
    }

    /// Increments the counter for path number `key`.
    ///
    /// Negative keys are treated as poisoned and recorded in the cold
    /// counter (this is how the *checked* counting ops report poison; the
    /// unchecked ops never pass negative keys for well-formed free-poisoned
    /// instrumentation, but the behaviour is safe either way).
    ///
    /// All counters saturate at [`u64::MAX`]: a long-running profiled
    /// process degrades to a pinned (and detectable) counter rather than
    /// a debug-build overflow panic.
    pub fn bump(&mut self, key: i64) {
        if key < 0 {
            match self {
                CounterTable::Array { cold, .. } | CounterTable::Hash { cold, .. } => {
                    *cold = cold.saturating_add(1)
                }
            }
            return;
        }
        self.add(key as u64, 1);
    }

    /// Adds `count` to the counter for path number `key` (saturating).
    ///
    /// This is the bulk form of [`CounterTable::bump`]; fault injection
    /// uses it to preload a counter near [`u64::MAX`] so one more bump
    /// exercises the saturation path.
    pub fn add(&mut self, key: u64, count: u64) {
        match self {
            CounterTable::Array { counts, lost, .. } => match counts.get_mut(key as usize) {
                Some(c) => *c = c.saturating_add(count),
                None => *lost = lost.saturating_add(count),
            },
            CounterTable::Hash {
                slots,
                max_probes,
                lost,
                collisions,
                ..
            } => {
                let n = slots.len() as u64;
                debug_assert!(n >= 3, "hash table needs at least 3 slots");
                // Double hashing as in CLRS ch. 11 (the paper's citation
                // [15]): h(k, i) = (h1 + i * h2) mod n, h2 coprime-ish.
                let h1 = key % n;
                let h2 = 1 + key % (n - 2);
                for i in 0..u64::from(*max_probes) {
                    let idx = ((h1 + i * h2) % n) as usize;
                    match &mut slots[idx] {
                        Some((k, c)) if *k == key => {
                            *c = c.saturating_add(count);
                            return;
                        }
                        Some(_) => {
                            *collisions = collisions.saturating_add(1);
                            continue;
                        }
                        empty @ None => {
                            *empty = Some((key, count));
                            return;
                        }
                    }
                }
                *lost = lost.saturating_add(count);
            }
        }
    }

    /// Records a poisoned path (explicitly, for checked counting ops).
    pub fn bump_cold(&mut self) {
        match self {
            CounterTable::Array { cold, .. } | CounterTable::Hash { cold, .. } => {
                *cold = cold.saturating_add(1)
            }
        }
    }

    /// `true` when any counter has pinned at [`u64::MAX`].
    pub fn saturated(&self) -> bool {
        self.iter_counts().any(|(_, c)| c == u64::MAX)
    }

    /// Number of counters pinned at [`u64::MAX`].
    pub fn saturated_count(&self) -> u64 {
        self.iter_counts().filter(|&(_, c)| c == u64::MAX).count() as u64
    }

    /// Probe attempts that hit an occupied slot with a different key
    /// (always 0 for array tables).
    pub fn collisions(&self) -> u64 {
        match self {
            CounterTable::Array { .. } => 0,
            CounterTable::Hash { collisions, .. } => *collisions,
        }
    }

    /// Number of occupied slots (distinct paths actually stored).
    pub fn occupancy(&self) -> u64 {
        self.iter_counts().count() as u64
    }

    /// Iterates `(path number, count)` over all non-zero counters.
    pub fn iter_counts(&self) -> Box<dyn Iterator<Item = (u64, u64)> + '_> {
        match self {
            CounterTable::Array { counts, .. } => Box::new(
                counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (i as u64, c)),
            ),
            CounterTable::Hash { slots, .. } => Box::new(slots.iter().flatten().copied()),
        }
    }

    /// Paths lost to probe exhaustion or out-of-range indices.
    pub fn lost(&self) -> u64 {
        match self {
            CounterTable::Array { lost, .. } | CounterTable::Hash { lost, .. } => *lost,
        }
    }

    /// Poisoned paths observed.
    pub fn cold(&self) -> u64 {
        match self {
            CounterTable::Array { cold, .. } | CounterTable::Hash { cold, .. } => *cold,
        }
    }

    /// Total counted flow (sum of all counters, excluding lost/cold).
    /// Saturating, so preloaded or pinned counters cannot overflow it.
    pub fn total(&self) -> u64 {
        self.iter_counts()
            .fold(0u64, |acc, (_, c)| acc.saturating_add(c))
    }
}

/// All counter tables of a module, indexed by [`TableId`].
#[derive(Clone, Debug, Default)]
pub struct ProfileStore {
    tables: Vec<CounterTable>,
}

impl ProfileStore {
    /// Allocates empty tables matching the module's declarations.
    pub fn for_module(module: &Module) -> Self {
        Self {
            tables: module
                .tables
                .iter()
                .map(|d| CounterTable::new(d.kind))
                .collect(),
        }
    }

    /// Returns the table with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn table(&self, id: TableId) -> &CounterTable {
        &self.tables[id.index()]
    }

    /// Returns the table with the given id, mutably.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn table_mut(&mut self, id: TableId) -> &mut CounterTable {
        &mut self.tables[id.index()]
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Returns `true` if there are no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total lost paths across all tables (saturating, like every
    /// counter total in the system: pinned tables must not wrap the sum).
    pub fn total_lost(&self) -> u64 {
        self.fold_tables(CounterTable::lost)
    }

    /// Total poisoned paths across all tables (saturating).
    pub fn total_cold(&self) -> u64 {
        self.fold_tables(CounterTable::cold)
    }

    /// Total hash-probe collisions across all tables (saturating).
    pub fn total_collisions(&self) -> u64 {
        self.fold_tables(CounterTable::collisions)
    }

    /// Total counters pinned at [`u64::MAX`] across all tables
    /// (saturating).
    pub fn total_saturated(&self) -> u64 {
        self.fold_tables(CounterTable::saturated_count)
    }

    fn fold_tables(&self, f: impl Fn(&CounterTable) -> u64) -> u64 {
        self.tables
            .iter()
            .fold(0u64, |acc, t| acc.saturating_add(f(t)))
    }

    /// Iterates over the tables.
    pub fn iter(&self) -> impl Iterator<Item = &CounterTable> {
        self.tables.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_counts_and_loses_out_of_range() {
        let mut t = CounterTable::new(TableKind::Array { size: 4 });
        t.bump(0);
        t.bump(3);
        t.bump(3);
        t.bump(4); // out of range
        assert_eq!(t.lost(), 1);
        assert_eq!(t.total(), 3);
        let counts: Vec<_> = t.iter_counts().collect();
        assert_eq!(counts, vec![(0, 1), (3, 2)]);
    }

    #[test]
    fn negative_keys_are_cold() {
        let mut t = CounterTable::new(TableKind::Array { size: 4 });
        t.bump(-100);
        t.bump_cold();
        assert_eq!(t.cold(), 2);
        assert_eq!(t.total(), 0);
    }

    #[test]
    fn hash_counts_distinct_keys() {
        let mut t = CounterTable::new(TableKind::Hash {
            slots: 701,
            max_probes: 3,
        });
        for k in 0..500 {
            t.bump(k);
            t.bump(k);
        }
        assert_eq!(t.total() + t.lost() * 2, 1000);
        // With 500 keys in 701 slots and 3 probes, losses are rare.
        assert!(t.lost() < 50, "too many lost: {}", t.lost());
    }

    #[test]
    fn hash_exhaustion_counts_lost() {
        let mut t = CounterTable::new(TableKind::Hash {
            slots: 5,
            max_probes: 3,
        });
        // Saturate a tiny table.
        for k in 0..100 {
            t.bump(k);
        }
        assert!(t.lost() > 0);
        assert_eq!(t.total() + t.lost(), 100);
    }

    #[test]
    fn hash_collisions_are_counted() {
        let mut t = CounterTable::new(TableKind::Hash {
            slots: 701,
            max_probes: 3,
        });
        // Distinct keys, no pressure yet: first insert may or may not
        // collide, but the same key again never adds collisions.
        t.bump(1);
        let after_first = t.collisions();
        t.bump(1);
        assert_eq!(t.collisions(), after_first);
        // Force collisions: key and key+701 share h1.
        t.bump(2);
        t.bump(2 + 701);
        assert!(t.collisions() > after_first);
        assert_eq!(
            CounterTable::new(TableKind::Array { size: 4 }).collisions(),
            0
        );
    }

    #[test]
    fn saturated_and_occupancy_counts() {
        let mut t = CounterTable::new(TableKind::Array { size: 4 });
        t.add(0, u64::MAX);
        t.add(1, u64::MAX);
        t.bump(2);
        assert_eq!(t.saturated_count(), 2);
        assert_eq!(t.occupancy(), 3);
    }

    #[test]
    fn hash_same_key_accumulates() {
        let mut t = CounterTable::new(TableKind::Hash {
            slots: 701,
            max_probes: 3,
        });
        for _ in 0..10 {
            t.bump(12345);
        }
        assert_eq!(t.iter_counts().collect::<Vec<_>>(), vec![(12345, 10)]);
    }

    #[test]
    fn counters_saturate_instead_of_overflowing() {
        let mut t = CounterTable::new(TableKind::Array { size: 2 });
        t.add(0, u64::MAX - 1);
        assert!(!t.saturated());
        t.bump(0);
        assert!(t.saturated());
        t.bump(0); // would overflow without saturation
        assert_eq!(t.iter_counts().next(), Some((0, u64::MAX)));
        assert_eq!(t.total(), u64::MAX);

        let mut h = CounterTable::new(TableKind::Hash {
            slots: 7,
            max_probes: 3,
        });
        h.add(5, u64::MAX);
        h.bump(5);
        assert!(h.saturated());
        assert_eq!(h.iter_counts().collect::<Vec<_>>(), vec![(5, u64::MAX)]);
    }

    #[test]
    fn store_builds_from_module() {
        use ppp_ir::{FunctionBuilder, TableDecl};
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 0);
        b.ret(None);
        let f = m.add_function(b.finish());
        let a = m.add_table(TableDecl {
            func: f,
            kind: TableKind::Array { size: 8 },
            hot_paths: 8,
        });
        let h = m.add_table(TableDecl {
            func: f,
            kind: TableKind::Hash {
                slots: 701,
                max_probes: 3,
            },
            hot_paths: 5000,
        });
        let mut s = ProfileStore::for_module(&m);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(!s.table(a).is_hash());
        assert!(s.table(h).is_hash());
        s.table_mut(a).bump(1);
        assert_eq!(s.table(a).total(), 1);
        assert_eq!(s.total_lost(), 0);
    }
}
