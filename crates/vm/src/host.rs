//! The module host: the piece of "VM" a dynamic optimizer talks to.
//!
//! A JIT loop (see `ppp-jit`) repeatedly re-optimizes the running
//! program and swaps the new code in while workload runs are in flight.
//! [`VmHost`] models that hand-off point: it owns the *current*
//! (instrumented) module behind a lock, hands out [`Checkout`]s that pin
//! one generation for the duration of a run, and atomically replaces the
//! module on [`VmHost::swap`], bumping a generation counter.
//!
//! The crucial property is that a checkout taken *before* a swap keeps
//! executing the old code to completion (the `Arc` keeps it alive), so
//! its delta stream describes the old module's shape. Reconciling such a
//! stale stream against the new generation is `ppp-match`'s job; the
//! `swap-during-run` chaos scenario exercises exactly this seam.

use ppp_ir::Module;
use std::sync::{Arc, Mutex};

use crate::machine::{run, RunOptions, RunResult, VmError};

/// One generation of the running program, pinned for the duration of a
/// workload run. Dropping the checkout releases the pin; a swap that
/// happened in the meantime does not invalidate it.
#[derive(Clone, Debug)]
pub struct Checkout {
    /// The module that was current when the checkout was taken.
    pub module: Arc<Module>,
    /// The generation counter at checkout time (0 = initial module).
    pub generation: u64,
}

/// Holds the currently-served module and swaps re-optimized generations
/// in atomically.
#[derive(Debug)]
pub struct VmHost {
    current: Mutex<(Arc<Module>, u64)>,
}

impl VmHost {
    /// Creates a host serving `module` as generation 0.
    pub fn new(module: Arc<Module>) -> Self {
        Self {
            current: Mutex::new((module, 0)),
        }
    }

    /// The current generation counter (number of swaps so far).
    pub fn generation(&self) -> u64 {
        self.current.lock().expect("host lock").1
    }

    /// The currently-served module.
    pub fn current(&self) -> Arc<Module> {
        Arc::clone(&self.current.lock().expect("host lock").0)
    }

    /// Pins the current module and generation for one workload run.
    pub fn checkout(&self) -> Checkout {
        let guard = self.current.lock().expect("host lock");
        Checkout {
            module: Arc::clone(&guard.0),
            generation: guard.1,
        }
    }

    /// Atomically replaces the served module with a new generation and
    /// returns the new generation number. Checkouts taken before the
    /// swap keep running the old module to completion.
    pub fn swap(&self, module: Arc<Module>) -> u64 {
        let mut guard = self.current.lock().expect("host lock");
        guard.0 = module;
        guard.1 += 1;
        guard.1
    }

    /// Checks out the current module and runs `entry` on it. The result
    /// is paired with the checkout so the caller knows *which*
    /// generation produced the profile even if a swap raced the run.
    pub fn run_current(
        &self,
        entry: &str,
        opts: &RunOptions,
    ) -> Result<(Checkout, RunResult), VmError> {
        let checkout = self.checkout();
        let result = run(&checkout.module, entry, opts)?;
        Ok((checkout, result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{BinOp, FunctionBuilder};

    /// A program whose edge-profile shape differs with `blocks`: a
    /// counted loop summing 0..n, padded with `blocks` extra blocks.
    fn program(n: i64, blocks: usize) -> Module {
        let mut b = FunctionBuilder::new("main", 0);
        let ten = b.constant(n);
        let i = b.copy(ten);
        let acc = b.constant(0);
        let (hdr, body, exit) = (b.new_block(), b.new_block(), b.new_block());
        b.jump(hdr);
        b.switch_to(hdr);
        b.branch(i, body, exit);
        b.switch_to(body);
        let one = b.constant(1);
        b.binary_to(acc, BinOp::Add, acc, i);
        b.binary_to(i, BinOp::Sub, i, one);
        b.jump(hdr);
        b.switch_to(exit);
        let mut cur = exit;
        for _ in 0..blocks {
            let next = b.new_block();
            b.switch_to(cur);
            b.jump(next);
            cur = next;
            b.switch_to(cur);
        }
        b.emit(acc);
        b.ret(Some(acc));
        let mut m = Module::new();
        m.add_function(b.finish());
        m
    }

    #[test]
    fn swap_bumps_the_generation_and_replaces_the_module() {
        let host = VmHost::new(Arc::new(program(10, 0)));
        assert_eq!(host.generation(), 0);
        let before = host.current().function_by_name("main").is_some();
        assert!(before);
        assert_eq!(host.swap(Arc::new(program(10, 3))), 1);
        assert_eq!(host.generation(), 1);
        assert_eq!(host.current().function(ppp_ir::FuncId(0)).blocks.len(), 7);
    }

    #[test]
    fn a_checkout_survives_a_swap_and_keeps_the_old_shape() {
        let host = VmHost::new(Arc::new(program(10, 0)));
        let checkout = host.checkout();
        host.swap(Arc::new(program(10, 5)));
        // The pinned module still runs, and its traced profile matches
        // the OLD shape, not the newly-swapped generation.
        let r = run(
            &checkout.module,
            "main",
            &RunOptions::default().with_seed(7).traced(),
        )
        .expect("old generation runs");
        let edges = r.edge_profile.expect("traced");
        assert!(edges.shape_matches(&checkout.module));
        assert!(!edges.shape_matches(&host.current()));
        assert_eq!(checkout.generation, 0);
        assert_eq!(host.generation(), 1);
    }

    #[test]
    fn run_current_pairs_the_result_with_its_generation() {
        let host = VmHost::new(Arc::new(program(4, 0)));
        let baseline = run(&program(4, 0), "main", &RunOptions::default().with_seed(3))
            .expect("plain run")
            .checksum;
        let (checkout, r) = host
            .run_current("main", &RunOptions::default().with_seed(3))
            .expect("hosted run");
        assert_eq!(checkout.generation, 0);
        assert_eq!(r.checksum, baseline);
    }

    #[test]
    fn concurrent_checkouts_see_a_coherent_module_generation_pair() {
        let host = Arc::new(VmHost::new(Arc::new(program(10, 0))));
        let swapper = {
            let host = Arc::clone(&host);
            std::thread::spawn(move || {
                for g in 1..=8usize {
                    host.swap(Arc::new(program(10, g)));
                }
            })
        };
        for _ in 0..64 {
            let c = host.checkout();
            // Generation g serves the g-padded program: 4 + g blocks.
            let blocks = c.module.function(ppp_ir::FuncId(0)).blocks.len() as u64;
            assert_eq!(blocks, 4 + c.generation);
        }
        swapper.join().expect("swapper");
        assert_eq!(host.generation(), 8);
    }
}
