//! The dynamic cost model.
//!
//! The paper reports *runtime overhead*: extra execution time caused by
//! instrumentation. On real hardware that is wall-clock; here the VM
//! charges each executed operation a deterministic cost, which makes
//! overhead a pure function of the instrumentation the profilers insert —
//! exactly the quantity the PPP techniques attack. The relative costs
//! follow the paper: Joshi et al. estimate a hash-table counter update is
//! about **five times** an array update (§3.2), and a poison check adds one
//! comparison (§4.6).

use ppp_ir::{Inst, ProfOp, Terminator};

/// Per-operation costs, in abstract units.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// Plain ALU/const/copy/emit instructions.
    pub basic: u64,
    /// Memory loads and stores.
    pub memory: u64,
    /// The `rand` input intrinsic.
    pub rand: u64,
    /// Call overhead (frame setup), charged at the call instruction.
    pub call: u64,
    /// Block terminators (jump/branch/switch/return).
    pub terminator: u64,
    /// Path-register ops: `r = c` and `r += c`.
    pub prof_reg: u64,
    /// Array counter update `count[x]++`.
    pub count_array: u64,
    /// Hash-table counter update (per completed probe sequence).
    pub count_hash: u64,
    /// Extra cost of the TPP poison check on checked counts.
    pub poison_check: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            basic: 1,
            memory: 2,
            rand: 1,
            call: 3,
            terminator: 1,
            prof_reg: 1,
            count_array: 2,
            count_hash: 10, // 5x the array cost, per Joshi et al.
            poison_check: 1,
        }
    }
}

impl CostModel {
    /// Cost of a non-profiling instruction.
    ///
    /// Profiling ops are *not* charged here: their cost depends on the
    /// backing table kind, which the interpreter resolves via
    /// [`CostModel::prof_cost`].
    pub fn inst_cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Const { .. }
            | Inst::Copy { .. }
            | Inst::Unary { .. }
            | Inst::Binary { .. }
            | Inst::Emit { .. } => self.basic,
            Inst::Load { .. } | Inst::Store { .. } => self.memory,
            Inst::Rand { .. } => self.rand,
            Inst::Call { .. } => self.call,
            Inst::Prof(_) => 0,
        }
    }

    /// Cost of a terminator.
    pub fn term_cost(&self, _term: &Terminator) -> u64 {
        self.terminator
    }

    /// Cost of a profiling op given whether its table is hash-backed.
    pub fn prof_cost(&self, op: ProfOp, table_is_hash: bool) -> u64 {
        let count = if table_is_hash {
            self.count_hash
        } else {
            self.count_array
        };
        match op {
            ProfOp::SetR { .. } | ProfOp::AddR { .. } => self.prof_reg,
            ProfOp::CountR { .. } | ProfOp::CountRPlus { .. } | ProfOp::CountConst { .. } => count,
            ProfOp::CountRChecked { .. } | ProfOp::CountRPlusChecked { .. } => {
                count + self.poison_check
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::{Reg, TableId};

    #[test]
    fn default_ratios_match_paper() {
        let c = CostModel::default();
        // Hash is 5x array (Joshi et al., §3.2 of the paper).
        assert_eq!(c.count_hash, 5 * c.count_array);
        assert!(c.poison_check >= 1);
    }

    #[test]
    fn prof_ops_charged_by_table_kind() {
        let c = CostModel::default();
        let t = TableId::new(0);
        assert_eq!(c.prof_cost(ProfOp::SetR { value: 0 }, false), c.prof_reg);
        assert_eq!(
            c.prof_cost(ProfOp::CountR { table: t }, false),
            c.count_array
        );
        assert_eq!(c.prof_cost(ProfOp::CountR { table: t }, true), c.count_hash);
        assert_eq!(
            c.prof_cost(ProfOp::CountRChecked { table: t }, false),
            c.count_array + c.poison_check
        );
        assert_eq!(
            c.prof_cost(
                ProfOp::CountRPlusChecked {
                    table: t,
                    addend: 1
                },
                true
            ),
            c.count_hash + c.poison_check
        );
    }

    #[test]
    fn prof_insts_not_double_charged() {
        let c = CostModel::default();
        assert_eq!(c.inst_cost(&Inst::Prof(ProfOp::SetR { value: 0 })), 0);
        assert_eq!(c.inst_cost(&Inst::Emit { src: Reg(0) }), c.basic);
    }
}
