//! Exact execution tracing: edge profiles and ground-truth path profiles.
//!
//! The tracer observes every taken CFG edge and maintains, per activation,
//! the current Ball–Larus path (started at function entry or a loop
//! header, ended at a `return` or a taken back edge — §3.1). Paths are
//! interned in a per-function trie so the per-edge cost is one hash lookup,
//! and the full [`ModulePathProfile`] is reconstructed on demand.
//!
//! This is the reproduction's *reference* profile: unlike PP
//! instrumentation it has no hash-table losses and no truncation, so
//! accuracy/coverage are measured against exact data (§6).

use ppp_ir::{
    BlockId, Cfg, EdgeRef, FuncId, Function, Module, ModuleEdgeProfile, ModulePathProfile, PathKey,
};
use std::collections::HashMap;

/// Whether a taken edge is a back edge (ends the current path).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Forward edge: extends the current path.
    Forward,
    /// Back edge: terminates the current path and starts a new one at the
    /// edge's target (a loop header).
    Back,
}

/// Precomputed per-function edge classification for the tracer.
#[derive(Clone, Debug)]
pub struct EdgeClassifier {
    /// `kinds[block][succ]` mirrors the function's successor lists.
    kinds: Vec<Vec<EdgeKind>>,
}

impl EdgeClassifier {
    /// Classifies every edge of `f` as forward or back (retreating with
    /// respect to reverse postorder; on reducible CFGs these are exactly
    /// the natural-loop back edges).
    pub fn new(f: &Function) -> Self {
        let cfg = Cfg::new(f);
        let kinds = f
            .iter_blocks()
            .map(|(id, b)| {
                (0..b.term.successor_count())
                    .map(|s| {
                        let tgt = b.term.successor(s).expect("in-range successor");
                        if cfg.is_retreating(id, tgt) {
                            EdgeKind::Back
                        } else {
                            EdgeKind::Forward
                        }
                    })
                    .collect()
            })
            .collect();
        Self { kinds }
    }

    /// Kind of edge `(b, s)`.
    #[inline]
    pub fn kind(&self, e: EdgeRef) -> EdgeKind {
        self.kinds[e.from.index()][e.succ_index()]
    }
}

/// Path-interning trie for one function.
///
/// Each node is a distinct path prefix; the per-edge transition is one
/// `HashMap` lookup. Node 0 is unused; roots are created per start block.
#[derive(Clone, Debug, Default)]
struct PathTrie {
    /// Root state per start block.
    roots: HashMap<BlockId, u32>,
    /// `(state, edge) -> state` transitions.
    trans: HashMap<(u32, EdgeRef), u32>,
    /// Per-state data: parent state, incoming edge, start block, count of
    /// paths *ending* at this state.
    nodes: Vec<TrieNode>,
}

#[derive(Clone, Copy, Debug)]
struct TrieNode {
    parent: u32,
    via: EdgeRef,
    start: BlockId,
    count: u64,
}

impl PathTrie {
    fn root(&mut self, start: BlockId) -> u32 {
        if let Some(&s) = self.roots.get(&start) {
            return s;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(TrieNode {
            parent: u32::MAX,
            via: EdgeRef::new(start, 0), // unused for roots
            start,
            count: 0,
        });
        self.roots.insert(start, id);
        id
    }

    fn step(&mut self, state: u32, edge: EdgeRef) -> u32 {
        if let Some(&s) = self.trans.get(&(state, edge)) {
            return s;
        }
        let id = self.nodes.len() as u32;
        let start = self.nodes[state as usize].start;
        self.nodes.push(TrieNode {
            parent: state,
            via: edge,
            start,
            count: 0,
        });
        self.trans.insert((state, edge), id);
        id
    }

    fn end_path(&mut self, state: u32) {
        let c = &mut self.nodes[state as usize].count;
        *c = c.saturating_add(1);
    }

    fn key_of(&self, state: u32) -> PathKey {
        let mut edges = Vec::new();
        let mut cur = state;
        while self.nodes[cur as usize].parent != u32::MAX {
            let n = &self.nodes[cur as usize];
            edges.push(n.via);
            cur = n.parent;
        }
        edges.reverse();
        PathKey {
            start: self.nodes[state as usize].start,
            edges,
        }
    }

    fn reconstruct(&self, f: &Function, out: &mut ppp_ir::FuncPathProfile) {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.count == 0 {
                continue;
            }
            out.record(f, self.key_of(i as u32), node.count);
        }
    }
}

/// Live per-activation path state, owned by the interpreter's frames.
#[derive(Clone, Copy, Debug)]
pub struct PathCursor {
    state: u32,
}

/// Deterministic trace-event fault injection (testing only).
///
/// Real profile collectors lose events — ring buffers wrap, signals race,
/// agents detach — so the ingestion side must cope with profiles whose
/// flow no longer balances. These knobs drop events on a fixed cadence
/// (seed-phased, so runs are reproducible but the first casualty moves
/// with the seed), producing exactly the damage shapes the degradation
/// ladder has to absorb:
///
/// - dropped *edge* events leave a flow-inconsistent edge profile
///   (Kirchhoff violations at the affected blocks);
/// - dropped *path completions* leave an undercounted path profile.
#[derive(Clone, Copy, Debug)]
pub struct TraceFaults {
    /// Drop every Nth edge-profile update (0 = never drop).
    pub drop_edge_every: u64,
    /// Drop every Nth path completion (0 = never drop).
    pub drop_path_every: u64,
    /// Phase seed: offsets which event in the cadence is the first lost.
    pub seed: u64,
}

/// Collects edge and path profiles during a run.
#[derive(Clone, Debug)]
pub struct Tracer {
    edges: ModuleEdgeProfile,
    classifiers: Vec<EdgeClassifier>,
    tries: Vec<PathTrie>,
    /// When enabled, the ordered stream of completed paths as
    /// `(function, trie state)` pairs — resolvable to [`PathKey`]s at the
    /// end. Online predictors (e.g. Dynamo's NET) consume this.
    sequence: Option<Vec<(FuncId, u32)>>,
    /// Active fault-injection plan, if any.
    faults: Option<TraceFaults>,
    /// Edge events observed since the last edge drop.
    edge_tick: u64,
    /// Path completions observed since the last path drop.
    path_tick: u64,
    /// Edge-profile updates deliberately dropped.
    dropped_edges: u64,
    /// Path completions deliberately dropped.
    dropped_paths: u64,
}

impl Tracer {
    /// Creates a tracer shaped for `module`.
    pub fn new(module: &Module) -> Self {
        Self {
            edges: ModuleEdgeProfile::zeroed(module),
            classifiers: module.functions.iter().map(EdgeClassifier::new).collect(),
            tries: vec![PathTrie::default(); module.functions.len()],
            sequence: None,
            faults: None,
            edge_tick: 0,
            path_tick: 0,
            dropped_edges: 0,
            dropped_paths: 0,
        }
    }

    /// Enables recording of the ordered path-completion stream
    /// (memory: one entry per dynamic path).
    pub fn record_sequence(&mut self) {
        self.sequence = Some(Vec::new());
    }

    /// Arms deterministic trace-event dropping (see [`TraceFaults`]).
    pub fn inject_faults(&mut self, faults: TraceFaults) {
        // Phase the cadences by the seed so different seeds lose
        // different events while the same seed reproduces exactly.
        if faults.drop_edge_every > 0 {
            self.edge_tick = faults.seed % faults.drop_edge_every;
        }
        if faults.drop_path_every > 0 {
            self.path_tick = (faults.seed >> 17) % faults.drop_path_every;
        }
        self.faults = Some(faults);
    }

    /// `(dropped edge events, dropped path completions)` so far.
    pub fn dropped_events(&self) -> (u64, u64) {
        (self.dropped_edges, self.dropped_paths)
    }

    /// Decides whether the next edge-profile update is dropped.
    fn drop_edge_event(&mut self) -> bool {
        let Some(f) = self.faults else { return false };
        if f.drop_edge_every == 0 {
            return false;
        }
        self.edge_tick += 1;
        if self.edge_tick >= f.drop_edge_every {
            self.edge_tick = 0;
            self.dropped_edges += 1;
            true
        } else {
            false
        }
    }

    /// Decides whether the next path completion is dropped.
    fn drop_path_event(&mut self) -> bool {
        let Some(f) = self.faults else { return false };
        if f.drop_path_every == 0 {
            return false;
        }
        self.path_tick += 1;
        if self.path_tick >= f.drop_path_every {
            self.path_tick = 0;
            self.dropped_paths += 1;
            true
        } else {
            false
        }
    }

    /// Called when `func` is entered; returns the cursor for its first path.
    pub fn enter_function(&mut self, func: FuncId, entry: BlockId) -> PathCursor {
        let p = self.edges.func_mut(func);
        p.bump_entry();
        p.bump_block(entry);
        PathCursor {
            state: self.tries[func.index()].root(entry),
        }
    }

    /// Called when edge `e` of `func` is taken; `target` is the block the
    /// edge leads to. Updates the edge profile and advances (or ends and
    /// restarts) the current path.
    pub fn take_edge(
        &mut self,
        func: FuncId,
        cursor: &mut PathCursor,
        e: EdgeRef,
        target: BlockId,
    ) {
        // A dropped edge event loses the *counts* only; the path cursor
        // still advances so the trie never sees a malformed edge chain.
        if !self.drop_edge_event() {
            let prof = self.edges.func_mut(func);
            prof.bump_edge(e);
            prof.bump_block(target);
        }
        let trie = &mut self.tries[func.index()];
        match self.classifiers[func.index()].kind(e) {
            EdgeKind::Forward => {
                cursor.state = trie.step(cursor.state, e);
            }
            EdgeKind::Back => {
                // The back edge belongs to the ending path (it is its
                // terminating branch), then a fresh path starts at the
                // header.
                let end_state = trie.step(cursor.state, e);
                if !self.drop_path_event() {
                    let trie = &mut self.tries[func.index()];
                    trie.end_path(end_state);
                    if let Some(seq) = &mut self.sequence {
                        seq.push((func, end_state));
                    }
                }
                cursor.state = self.tries[func.index()].root(target);
            }
        }
    }

    /// Called when the current activation of `func` returns.
    pub fn exit_function(&mut self, func: FuncId, cursor: PathCursor) {
        if self.drop_path_event() {
            return;
        }
        self.tries[func.index()].end_path(cursor.state);
        if let Some(seq) = &mut self.sequence {
            seq.push((func, cursor.state));
        }
    }

    /// Finishes tracing, producing the edge profile and the exact path
    /// profile.
    pub fn finish(self, module: &Module) -> (ModuleEdgeProfile, ModulePathProfile) {
        let (edges, paths, _) = self.finish_with_sequence(module);
        (edges, paths)
    }

    /// Like [`Tracer::finish`], also resolving the recorded path stream
    /// (empty unless [`Tracer::record_sequence`] was called).
    pub fn finish_with_sequence(
        self,
        module: &Module,
    ) -> (ModuleEdgeProfile, ModulePathProfile, Vec<(FuncId, PathKey)>) {
        let mut paths = ModulePathProfile::with_capacity(module.functions.len());
        for (i, trie) in self.tries.iter().enumerate() {
            let func = FuncId::new(i);
            trie.reconstruct(module.function(func), paths.func_mut(func));
        }
        let mut resolved = Vec::new();
        if let Some(seq) = self.sequence {
            // Cache state -> key resolution per function.
            let mut cache: Vec<std::collections::HashMap<u32, PathKey>> =
                vec![std::collections::HashMap::new(); self.tries.len()];
            for (func, state) in seq {
                let key = cache[func.index()]
                    .entry(state)
                    .or_insert_with(|| self.tries[func.index()].key_of(state))
                    .clone();
                resolved.push((func, key));
            }
        }
        (self.edges, paths, resolved)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::FunctionBuilder;
    use ppp_ir::Reg;

    /// 0 -> 1(hdr); 1 -> 2 | 3; 2 -> 1 (back); 3: ret
    fn looped() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.branch(Reg(0), b2, b3);
        b.switch_to(b2);
        b.jump(b1);
        b.switch_to(b3);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn classifier_marks_back_edges() {
        let m = looped();
        let c = EdgeClassifier::new(m.function(FuncId(0)));
        assert_eq!(c.kind(EdgeRef::new(BlockId(0), 0)), EdgeKind::Forward);
        assert_eq!(c.kind(EdgeRef::new(BlockId(2), 0)), EdgeKind::Back);
    }

    #[test]
    fn tracer_records_loop_iteration_paths() {
        let m = looped();
        let f = FuncId(0);
        let mut t = Tracer::new(&m);
        // Simulate: enter, 0->1, 1->2, 2->1 (back), 1->3, return.
        let mut cur = t.enter_function(f, BlockId(0));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(0), 0), BlockId(1));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 0), BlockId(2));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(2), 0), BlockId(1));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 1), BlockId(3));
        t.exit_function(f, cur);
        let (edges, paths) = t.finish(&m);

        assert_eq!(edges.func(f).entries(), 1);
        assert_eq!(edges.func(f).edge(EdgeRef::new(BlockId(2), 0)), 1);
        assert_eq!(edges.func(f).block(BlockId(1)), 2);

        let fp = paths.func(f);
        assert_eq!(fp.distinct_paths(), 2);
        // Path A: entry -> 1 -> 2 -> (back to 1), one branch (1->2) plus no
        // branch on jump edges; the back edge 2->1 has a single-successor
        // source so it is not a branch.
        let a = PathKey {
            start: BlockId(0),
            edges: vec![
                EdgeRef::new(BlockId(0), 0),
                EdgeRef::new(BlockId(1), 0),
                EdgeRef::new(BlockId(2), 0),
            ],
        };
        // Path B: 1 -> 3 return, one branch.
        let b = PathKey {
            start: BlockId(1),
            edges: vec![EdgeRef::new(BlockId(1), 1)],
        };
        assert_eq!(fp.paths[&a].freq, 1);
        assert_eq!(fp.paths[&a].branches, 1);
        assert_eq!(fp.paths[&b].freq, 1);
        assert_eq!(fp.paths[&b].branches, 1);
    }

    fn run_looped_iters(t: &mut Tracer, iters: usize) {
        let f = FuncId(0);
        let mut cur = t.enter_function(f, BlockId(0));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(0), 0), BlockId(1));
        for _ in 0..iters {
            t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 0), BlockId(2));
            t.take_edge(f, &mut cur, EdgeRef::new(BlockId(2), 0), BlockId(1));
        }
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 1), BlockId(3));
        t.exit_function(f, cur);
    }

    #[test]
    fn dropped_edge_events_break_flow_but_not_paths() {
        let m = looped();
        let mut t = Tracer::new(&m);
        t.inject_faults(TraceFaults {
            drop_edge_every: 3,
            drop_path_every: 0,
            seed: 7,
        });
        run_looped_iters(&mut t, 10);
        let (de, dp) = t.dropped_events();
        assert!(de > 0);
        assert_eq!(dp, 0);
        let (edges, paths) = t.finish(&m);
        // The edge profile lost flow at some blocks...
        assert!(!edges.is_flow_conservative(&m));
        // ...but the path profile is intact: 10 loop paths + 1 exit path.
        assert_eq!(paths.func(FuncId(0)).total_unit_flow(), 11);
    }

    #[test]
    fn dropped_path_events_undercount_paths_deterministically() {
        let m = looped();
        let collect = |seed| {
            let mut t = Tracer::new(&m);
            t.inject_faults(TraceFaults {
                drop_edge_every: 0,
                drop_path_every: 4,
                seed,
            });
            run_looped_iters(&mut t, 10);
            let dropped = t.dropped_events().1;
            let (_, paths) = t.finish(&m);
            (dropped, paths.func(FuncId(0)).total_unit_flow())
        };
        let (d1, flow1) = collect(42);
        let (d2, flow2) = collect(42);
        assert!(d1 > 0);
        assert_eq!(flow1 + d1, 11, "dropped paths are exactly the missing flow");
        assert_eq!((d1, flow1), (d2, flow2), "same seed, same losses");
    }

    #[test]
    fn repeated_paths_accumulate() {
        let m = looped();
        let f = FuncId(0);
        let mut t = Tracer::new(&m);
        for _ in 0..3 {
            let mut cur = t.enter_function(f, BlockId(0));
            t.take_edge(f, &mut cur, EdgeRef::new(BlockId(0), 0), BlockId(1));
            t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 1), BlockId(3));
            t.exit_function(f, cur);
        }
        let (_, paths) = t.finish(&m);
        let fp = paths.func(f);
        assert_eq!(fp.distinct_paths(), 1);
        assert_eq!(fp.total_unit_flow(), 3);
    }
}
