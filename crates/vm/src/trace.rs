//! Exact execution tracing: edge profiles and ground-truth path profiles.
//!
//! The tracer observes every taken CFG edge and maintains, per activation,
//! the current Ball–Larus path (started at function entry or a loop
//! header, ended at a `return` or a taken back edge — §3.1). Paths are
//! interned in a per-function trie so the per-edge cost is one hash lookup,
//! and the full [`ModulePathProfile`] is reconstructed on demand.
//!
//! This is the reproduction's *reference* profile: unlike PP
//! instrumentation it has no hash-table losses and no truncation, so
//! accuracy/coverage are measured against exact data (§6).

use ppp_ir::{
    BlockId, Cfg, EdgeRef, FuncId, Function, Module, ModuleEdgeProfile, ModulePathProfile, PathKey,
};
use std::collections::HashMap;

/// Whether a taken edge is a back edge (ends the current path).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeKind {
    /// Forward edge: extends the current path.
    Forward,
    /// Back edge: terminates the current path and starts a new one at the
    /// edge's target (a loop header).
    Back,
}

/// Precomputed per-function edge classification for the tracer.
#[derive(Clone, Debug)]
pub struct EdgeClassifier {
    /// `kinds[block][succ]` mirrors the function's successor lists.
    kinds: Vec<Vec<EdgeKind>>,
}

impl EdgeClassifier {
    /// Classifies every edge of `f` as forward or back (retreating with
    /// respect to reverse postorder; on reducible CFGs these are exactly
    /// the natural-loop back edges).
    pub fn new(f: &Function) -> Self {
        let cfg = Cfg::new(f);
        let kinds = f
            .iter_blocks()
            .map(|(id, b)| {
                (0..b.term.successor_count())
                    .map(|s| {
                        let tgt = b.term.successor(s).expect("in-range successor");
                        if cfg.is_retreating(id, tgt) {
                            EdgeKind::Back
                        } else {
                            EdgeKind::Forward
                        }
                    })
                    .collect()
            })
            .collect();
        Self { kinds }
    }

    /// Kind of edge `(b, s)`.
    #[inline]
    pub fn kind(&self, e: EdgeRef) -> EdgeKind {
        self.kinds[e.from.index()][e.succ_index()]
    }
}

/// Path-interning trie for one function.
///
/// Each node is a distinct path prefix; the per-edge transition is one
/// `HashMap` lookup. Node 0 is unused; roots are created per start block.
#[derive(Clone, Debug, Default)]
struct PathTrie {
    /// Root state per start block.
    roots: HashMap<BlockId, u32>,
    /// `(state, edge) -> state` transitions.
    trans: HashMap<(u32, EdgeRef), u32>,
    /// Per-state data: parent state, incoming edge, start block, count of
    /// paths *ending* at this state.
    nodes: Vec<TrieNode>,
}

#[derive(Clone, Copy, Debug)]
struct TrieNode {
    parent: u32,
    via: EdgeRef,
    start: BlockId,
    count: u64,
}

impl PathTrie {
    fn root(&mut self, start: BlockId) -> u32 {
        if let Some(&s) = self.roots.get(&start) {
            return s;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(TrieNode {
            parent: u32::MAX,
            via: EdgeRef::new(start, 0), // unused for roots
            start,
            count: 0,
        });
        self.roots.insert(start, id);
        id
    }

    fn step(&mut self, state: u32, edge: EdgeRef) -> u32 {
        if let Some(&s) = self.trans.get(&(state, edge)) {
            return s;
        }
        let id = self.nodes.len() as u32;
        let start = self.nodes[state as usize].start;
        self.nodes.push(TrieNode {
            parent: state,
            via: edge,
            start,
            count: 0,
        });
        self.trans.insert((state, edge), id);
        id
    }

    fn end_path(&mut self, state: u32) {
        let c = &mut self.nodes[state as usize].count;
        *c = c.saturating_add(1);
    }

    fn key_of(&self, state: u32) -> PathKey {
        let mut edges = Vec::new();
        let mut cur = state;
        while self.nodes[cur as usize].parent != u32::MAX {
            let n = &self.nodes[cur as usize];
            edges.push(n.via);
            cur = n.parent;
        }
        edges.reverse();
        PathKey {
            start: self.nodes[state as usize].start,
            edges,
        }
    }

    fn reconstruct(&self, f: &Function, out: &mut ppp_ir::FuncPathProfile) {
        for (i, node) in self.nodes.iter().enumerate() {
            if node.count == 0 {
                continue;
            }
            out.record(f, self.key_of(i as u32), node.count);
        }
    }
}

/// Live per-activation path state, owned by the interpreter's frames.
#[derive(Clone, Copy, Debug)]
pub struct PathCursor {
    state: u32,
}

/// One cut of a traced run's incremental profile stream: the edge and
/// path flow accumulated since the previous cut (or since the start of
/// the run, for the first delta).
///
/// Deltas exist so N concurrent VM workers can stream partial profiles
/// to an aggregation tier (`ppp-agg`) instead of holding a whole run's
/// profile until exit. Merging every delta of a run — in any order,
/// with saturating adds — reproduces exactly the profiles
/// [`Tracer::finish`] returns; the VM tests pin that invariant.
#[derive(Clone, Debug)]
pub struct ProfileDelta {
    /// Edge/block/entry flow since the previous cut.
    pub edges: ModuleEdgeProfile,
    /// Path completions since the previous cut.
    pub paths: ModulePathProfile,
}

/// Incremental delta accumulation (armed by [`Tracer::enable_deltas`]).
///
/// Path completions are staged as `(trie state, count)` — states are
/// only resolvable to [`PathKey`]s against the trie, so raw cuts are
/// held until [`Tracer::finish`] sees the module.
#[derive(Clone, Debug)]
struct DeltaState {
    /// Trace events (entries + edges + completions) per cut.
    interval: u64,
    /// Events recorded since the last cut.
    tick: u64,
    /// Edge flow since the last cut.
    edges: ModuleEdgeProfile,
    /// Per-function completed-path counts since the last cut, keyed by
    /// trie state.
    paths: Vec<HashMap<u32, u64>>,
    /// Finished raw cuts, resolved at `finish`.
    cuts: Vec<(ModuleEdgeProfile, Vec<HashMap<u32, u64>>)>,
}

impl DeltaState {
    fn new(module: &Module, interval: u64) -> Self {
        Self {
            interval,
            tick: 0,
            edges: ModuleEdgeProfile::zeroed(module),
            paths: vec![HashMap::new(); module.functions.len()],
            cuts: Vec::new(),
        }
    }

    /// `true` when anything accumulated since the last cut.
    fn dirty(&self) -> bool {
        self.tick > 0
    }

    fn cut(&mut self) {
        let edges = self.edges.clone();
        for f in &mut self.edges.funcs {
            f.zero();
        }
        let n = self.paths.len();
        let paths = std::mem::replace(&mut self.paths, vec![HashMap::new(); n]);
        self.cuts.push((edges, paths));
        self.tick = 0;
    }

    /// Counts one recorded event; cuts when the interval fills.
    fn tick(&mut self) {
        self.tick += 1;
        if self.tick >= self.interval {
            self.cut();
        }
    }
}

/// Deterministic trace-event fault injection (testing only).
///
/// Real profile collectors lose events — ring buffers wrap, signals race,
/// agents detach — so the ingestion side must cope with profiles whose
/// flow no longer balances. These knobs drop events on a fixed cadence
/// (seed-phased, so runs are reproducible but the first casualty moves
/// with the seed), producing exactly the damage shapes the degradation
/// ladder has to absorb:
///
/// - dropped *edge* events leave a flow-inconsistent edge profile
///   (Kirchhoff violations at the affected blocks);
/// - dropped *path completions* leave an undercounted path profile.
#[derive(Clone, Copy, Debug)]
pub struct TraceFaults {
    /// Drop every Nth edge-profile update (0 = never drop).
    pub drop_edge_every: u64,
    /// Drop every Nth path completion (0 = never drop).
    pub drop_path_every: u64,
    /// Phase seed: offsets which event in the cadence is the first lost.
    pub seed: u64,
}

/// Collects edge and path profiles during a run.
#[derive(Clone, Debug)]
pub struct Tracer {
    edges: ModuleEdgeProfile,
    classifiers: Vec<EdgeClassifier>,
    tries: Vec<PathTrie>,
    /// When enabled, the ordered stream of completed paths as
    /// `(function, trie state)` pairs — resolvable to [`PathKey`]s at the
    /// end. Online predictors (e.g. Dynamo's NET) consume this.
    sequence: Option<Vec<(FuncId, u32)>>,
    /// Active fault-injection plan, if any.
    faults: Option<TraceFaults>,
    /// Incremental delta accumulation, if armed.
    delta: Option<DeltaState>,
    /// Edge events observed since the last edge drop.
    edge_tick: u64,
    /// Path completions observed since the last path drop.
    path_tick: u64,
    /// Edge-profile updates deliberately dropped.
    dropped_edges: u64,
    /// Path completions deliberately dropped.
    dropped_paths: u64,
}

impl Tracer {
    /// Creates a tracer shaped for `module`.
    pub fn new(module: &Module) -> Self {
        Self {
            edges: ModuleEdgeProfile::zeroed(module),
            classifiers: module.functions.iter().map(EdgeClassifier::new).collect(),
            tries: vec![PathTrie::default(); module.functions.len()],
            sequence: None,
            faults: None,
            delta: None,
            edge_tick: 0,
            path_tick: 0,
            dropped_edges: 0,
            dropped_paths: 0,
        }
    }

    /// Enables recording of the ordered path-completion stream
    /// (memory: one entry per dynamic path).
    pub fn record_sequence(&mut self) {
        self.sequence = Some(Vec::new());
    }

    /// Arms incremental delta export: every `interval` recorded trace
    /// events (entries, edges, path completions) the accumulated flow is
    /// cut into a [`ProfileDelta`], retrievable from
    /// [`Tracer::finish_full`]. Fault-dropped events never reach a delta,
    /// so merged deltas always equal the cumulative profiles — damaged
    /// or not.
    pub fn enable_deltas(&mut self, module: &Module, interval: u64) {
        if interval > 0 {
            self.delta = Some(DeltaState::new(module, interval));
        }
    }

    /// Arms deterministic trace-event dropping (see [`TraceFaults`]).
    pub fn inject_faults(&mut self, faults: TraceFaults) {
        // Phase the cadences by the seed so different seeds lose
        // different events while the same seed reproduces exactly.
        if faults.drop_edge_every > 0 {
            self.edge_tick = faults.seed % faults.drop_edge_every;
        }
        if faults.drop_path_every > 0 {
            self.path_tick = (faults.seed >> 17) % faults.drop_path_every;
        }
        self.faults = Some(faults);
    }

    /// `(dropped edge events, dropped path completions)` so far.
    pub fn dropped_events(&self) -> (u64, u64) {
        (self.dropped_edges, self.dropped_paths)
    }

    /// Decides whether the next edge-profile update is dropped.
    fn drop_edge_event(&mut self) -> bool {
        let Some(f) = self.faults else { return false };
        if f.drop_edge_every == 0 {
            return false;
        }
        self.edge_tick += 1;
        if self.edge_tick >= f.drop_edge_every {
            self.edge_tick = 0;
            self.dropped_edges += 1;
            true
        } else {
            false
        }
    }

    /// Decides whether the next path completion is dropped.
    fn drop_path_event(&mut self) -> bool {
        let Some(f) = self.faults else { return false };
        if f.drop_path_every == 0 {
            return false;
        }
        self.path_tick += 1;
        if self.path_tick >= f.drop_path_every {
            self.path_tick = 0;
            self.dropped_paths += 1;
            true
        } else {
            false
        }
    }

    /// Called when `func` is entered; returns the cursor for its first path.
    pub fn enter_function(&mut self, func: FuncId, entry: BlockId) -> PathCursor {
        let p = self.edges.func_mut(func);
        p.bump_entry();
        p.bump_block(entry);
        if let Some(d) = &mut self.delta {
            let p = d.edges.func_mut(func);
            p.bump_entry();
            p.bump_block(entry);
            d.tick();
        }
        PathCursor {
            state: self.tries[func.index()].root(entry),
        }
    }

    /// Called when edge `e` of `func` is taken; `target` is the block the
    /// edge leads to. Updates the edge profile and advances (or ends and
    /// restarts) the current path.
    pub fn take_edge(
        &mut self,
        func: FuncId,
        cursor: &mut PathCursor,
        e: EdgeRef,
        target: BlockId,
    ) {
        // A dropped edge event loses the *counts* only; the path cursor
        // still advances so the trie never sees a malformed edge chain.
        if !self.drop_edge_event() {
            let prof = self.edges.func_mut(func);
            prof.bump_edge(e);
            prof.bump_block(target);
            if let Some(d) = &mut self.delta {
                let prof = d.edges.func_mut(func);
                prof.bump_edge(e);
                prof.bump_block(target);
                d.tick();
            }
        }
        let trie = &mut self.tries[func.index()];
        match self.classifiers[func.index()].kind(e) {
            EdgeKind::Forward => {
                cursor.state = trie.step(cursor.state, e);
            }
            EdgeKind::Back => {
                // The back edge belongs to the ending path (it is its
                // terminating branch), then a fresh path starts at the
                // header.
                let end_state = trie.step(cursor.state, e);
                if !self.drop_path_event() {
                    let trie = &mut self.tries[func.index()];
                    trie.end_path(end_state);
                    if let Some(seq) = &mut self.sequence {
                        seq.push((func, end_state));
                    }
                    self.delta_path(func, end_state);
                }
                cursor.state = self.tries[func.index()].root(target);
            }
        }
    }

    /// Called when the current activation of `func` returns.
    pub fn exit_function(&mut self, func: FuncId, cursor: PathCursor) {
        if self.drop_path_event() {
            return;
        }
        self.tries[func.index()].end_path(cursor.state);
        if let Some(seq) = &mut self.sequence {
            seq.push((func, cursor.state));
        }
        self.delta_path(func, cursor.state);
    }

    /// Stages one path completion into the current delta cut.
    fn delta_path(&mut self, func: FuncId, state: u32) {
        if let Some(d) = &mut self.delta {
            let c = d.paths[func.index()].entry(state).or_insert(0);
            *c = c.saturating_add(1);
            d.tick();
        }
    }

    /// Finishes tracing, producing the edge profile and the exact path
    /// profile.
    pub fn finish(self, module: &Module) -> (ModuleEdgeProfile, ModulePathProfile) {
        let (edges, paths, _) = self.finish_with_sequence(module);
        (edges, paths)
    }

    /// Like [`Tracer::finish`], also resolving the recorded path stream
    /// (empty unless [`Tracer::record_sequence`] was called).
    pub fn finish_with_sequence(
        self,
        module: &Module,
    ) -> (ModuleEdgeProfile, ModulePathProfile, Vec<(FuncId, PathKey)>) {
        let (edges, paths, seq, _) = self.finish_full(module);
        (edges, paths, seq)
    }

    /// Finishes tracing, returning everything the tracer accumulated:
    /// cumulative profiles, the resolved path stream (empty unless
    /// [`Tracer::record_sequence`] was called), and the delta stream
    /// (empty unless [`Tracer::enable_deltas`] was called). Merging all
    /// deltas reproduces the cumulative profiles exactly.
    #[allow(clippy::type_complexity)]
    pub fn finish_full(
        mut self,
        module: &Module,
    ) -> (
        ModuleEdgeProfile,
        ModulePathProfile,
        Vec<(FuncId, PathKey)>,
        Vec<ProfileDelta>,
    ) {
        // Flush the tail of the delta stream before reconstructing.
        if let Some(d) = &mut self.delta {
            if d.dirty() {
                d.cut();
            }
        }
        let mut paths = ModulePathProfile::with_capacity(module.functions.len());
        for (i, trie) in self.tries.iter().enumerate() {
            let func = FuncId::new(i);
            trie.reconstruct(module.function(func), paths.func_mut(func));
        }
        // Cache state -> key resolution per function; shared by the
        // sequence and the delta cuts.
        let mut cache: Vec<HashMap<u32, PathKey>> = vec![HashMap::new(); self.tries.len()];
        let mut resolve = |tries: &[PathTrie], fi: usize, state: u32| -> PathKey {
            cache[fi]
                .entry(state)
                .or_insert_with(|| tries[fi].key_of(state))
                .clone()
        };
        let mut resolved = Vec::new();
        if let Some(seq) = self.sequence.take() {
            for (func, state) in seq {
                resolved.push((func, resolve(&self.tries, func.index(), state)));
            }
        }
        let mut deltas = Vec::new();
        if let Some(d) = self.delta.take() {
            for (edges, raw_paths) in d.cuts {
                let mut dp = ModulePathProfile::with_capacity(module.functions.len());
                for (fi, states) in raw_paths.into_iter().enumerate() {
                    let f = module.function(FuncId::new(fi));
                    for (state, count) in states {
                        let key = resolve(&self.tries, fi, state);
                        dp.funcs[fi].record(f, key, count);
                    }
                }
                deltas.push(ProfileDelta { edges, paths: dp });
            }
        }
        (self.edges, paths, resolved, deltas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppp_ir::FunctionBuilder;
    use ppp_ir::Reg;

    /// 0 -> 1(hdr); 1 -> 2 | 3; 2 -> 1 (back); 3: ret
    fn looped() -> Module {
        let mut m = Module::new();
        let mut b = FunctionBuilder::new("f", 1);
        let b1 = b.new_block();
        let b2 = b.new_block();
        let b3 = b.new_block();
        b.jump(b1);
        b.switch_to(b1);
        b.branch(Reg(0), b2, b3);
        b.switch_to(b2);
        b.jump(b1);
        b.switch_to(b3);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn classifier_marks_back_edges() {
        let m = looped();
        let c = EdgeClassifier::new(m.function(FuncId(0)));
        assert_eq!(c.kind(EdgeRef::new(BlockId(0), 0)), EdgeKind::Forward);
        assert_eq!(c.kind(EdgeRef::new(BlockId(2), 0)), EdgeKind::Back);
    }

    #[test]
    fn tracer_records_loop_iteration_paths() {
        let m = looped();
        let f = FuncId(0);
        let mut t = Tracer::new(&m);
        // Simulate: enter, 0->1, 1->2, 2->1 (back), 1->3, return.
        let mut cur = t.enter_function(f, BlockId(0));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(0), 0), BlockId(1));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 0), BlockId(2));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(2), 0), BlockId(1));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 1), BlockId(3));
        t.exit_function(f, cur);
        let (edges, paths) = t.finish(&m);

        assert_eq!(edges.func(f).entries(), 1);
        assert_eq!(edges.func(f).edge(EdgeRef::new(BlockId(2), 0)), 1);
        assert_eq!(edges.func(f).block(BlockId(1)), 2);

        let fp = paths.func(f);
        assert_eq!(fp.distinct_paths(), 2);
        // Path A: entry -> 1 -> 2 -> (back to 1), one branch (1->2) plus no
        // branch on jump edges; the back edge 2->1 has a single-successor
        // source so it is not a branch.
        let a = PathKey {
            start: BlockId(0),
            edges: vec![
                EdgeRef::new(BlockId(0), 0),
                EdgeRef::new(BlockId(1), 0),
                EdgeRef::new(BlockId(2), 0),
            ],
        };
        // Path B: 1 -> 3 return, one branch.
        let b = PathKey {
            start: BlockId(1),
            edges: vec![EdgeRef::new(BlockId(1), 1)],
        };
        assert_eq!(fp.paths[&a].freq, 1);
        assert_eq!(fp.paths[&a].branches, 1);
        assert_eq!(fp.paths[&b].freq, 1);
        assert_eq!(fp.paths[&b].branches, 1);
    }

    fn run_looped_iters(t: &mut Tracer, iters: usize) {
        let f = FuncId(0);
        let mut cur = t.enter_function(f, BlockId(0));
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(0), 0), BlockId(1));
        for _ in 0..iters {
            t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 0), BlockId(2));
            t.take_edge(f, &mut cur, EdgeRef::new(BlockId(2), 0), BlockId(1));
        }
        t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 1), BlockId(3));
        t.exit_function(f, cur);
    }

    #[test]
    fn dropped_edge_events_break_flow_but_not_paths() {
        let m = looped();
        let mut t = Tracer::new(&m);
        t.inject_faults(TraceFaults {
            drop_edge_every: 3,
            drop_path_every: 0,
            seed: 7,
        });
        run_looped_iters(&mut t, 10);
        let (de, dp) = t.dropped_events();
        assert!(de > 0);
        assert_eq!(dp, 0);
        let (edges, paths) = t.finish(&m);
        // The edge profile lost flow at some blocks...
        assert!(!edges.is_flow_conservative(&m));
        // ...but the path profile is intact: 10 loop paths + 1 exit path.
        assert_eq!(paths.func(FuncId(0)).total_unit_flow(), 11);
    }

    #[test]
    fn dropped_path_events_undercount_paths_deterministically() {
        let m = looped();
        let collect = |seed| {
            let mut t = Tracer::new(&m);
            t.inject_faults(TraceFaults {
                drop_edge_every: 0,
                drop_path_every: 4,
                seed,
            });
            run_looped_iters(&mut t, 10);
            let dropped = t.dropped_events().1;
            let (_, paths) = t.finish(&m);
            (dropped, paths.func(FuncId(0)).total_unit_flow())
        };
        let (d1, flow1) = collect(42);
        let (d2, flow2) = collect(42);
        assert!(d1 > 0);
        assert_eq!(flow1 + d1, 11, "dropped paths are exactly the missing flow");
        assert_eq!((d1, flow1), (d2, flow2), "same seed, same losses");
    }

    #[test]
    fn deltas_merge_back_to_cumulative_profiles() {
        let m = looped();
        // Tiny interval forces many cuts; the merged stream must equal a
        // delta-free trace exactly.
        for interval in [1u64, 3, 1000] {
            let mut t = Tracer::new(&m);
            t.enable_deltas(&m, interval);
            run_looped_iters(&mut t, 10);
            run_looped_iters(&mut t, 2);
            let (edges, paths, _, deltas) = t.finish_full(&m);
            if interval == 1 {
                assert!(deltas.len() > 10, "interval 1 cuts per event");
            }
            let mut medges = ppp_ir::ModuleEdgeProfile::zeroed(&m);
            let mut mpaths = ppp_ir::ModulePathProfile::with_capacity(m.functions.len());
            for d in &deltas {
                medges.merge(&d.edges);
                mpaths.merge(&d.paths);
            }
            assert_eq!(medges, edges, "interval {interval}: edges");
            assert_eq!(mpaths, paths, "interval {interval}: paths");
            assert!(edges.is_flow_conservative(&m));
        }
    }

    #[test]
    fn deltas_mirror_fault_dropped_events() {
        let m = looped();
        let mut t = Tracer::new(&m);
        t.enable_deltas(&m, 2);
        t.inject_faults(TraceFaults {
            drop_edge_every: 3,
            drop_path_every: 4,
            seed: 7,
        });
        run_looped_iters(&mut t, 10);
        let (de, dp) = t.dropped_events();
        assert!(de > 0 && dp > 0);
        let (edges, paths, _, deltas) = t.finish_full(&m);
        let mut medges = ppp_ir::ModuleEdgeProfile::zeroed(&m);
        let mut mpaths = ppp_ir::ModulePathProfile::with_capacity(m.functions.len());
        for d in &deltas {
            medges.merge(&d.edges);
            mpaths.merge(&d.paths);
        }
        // Dropped events are missing from *both* sides equally.
        assert_eq!(medges, edges);
        assert_eq!(mpaths, paths);
    }

    #[test]
    fn repeated_paths_accumulate() {
        let m = looped();
        let f = FuncId(0);
        let mut t = Tracer::new(&m);
        for _ in 0..3 {
            let mut cur = t.enter_function(f, BlockId(0));
            t.take_edge(f, &mut cur, EdgeRef::new(BlockId(0), 0), BlockId(1));
            t.take_edge(f, &mut cur, EdgeRef::new(BlockId(1), 1), BlockId(3));
            t.exit_function(f, cur);
        }
        let (_, paths) = t.finish(&m);
        let fp = paths.func(f);
        assert_eq!(fp.distinct_paths(), 1);
        assert_eq!(fp.total_unit_flow(), 3);
    }
}
