//! Deterministic pseudo-random input stream (SplitMix64).
//!
//! The VM's [`Rand`](ppp_ir::Inst::Rand) intrinsic draws from this stream.
//! SplitMix64 is tiny, fast, has excellent statistical quality for this
//! purpose, and — crucially — is fully specified here, so a given seed
//! yields identical control flow on every run and on every platform.

/// A SplitMix64 generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a value uniform in `[0, bound)`; `bound < 1` behaves as `1`.
    ///
    /// Uses simple modulo reduction: the slight modulo bias is irrelevant
    /// for synthetic workload generation and keeps the stream consumption
    /// rate fixed at one draw per call (important for reproducibility).
    pub fn below(&mut self, bound: i64) -> i64 {
        let b = bound.max(1) as u64;
        (self.next_u64() % b) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let v = r.below(10);
            assert!((0..10).contains(&v));
        }
        // Degenerate bounds behave as 1.
        assert_eq!(r.below(0), 0);
        assert_eq!(r.below(-5), 0);
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn known_vector() {
        // Reference value for seed 0 (pins the algorithm).
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_roughly_uniform() {
        let mut r = SplitMix64::new(123);
        let mut buckets = [0u32; 4];
        for _ in 0..4000 {
            buckets[r.below(4) as usize] += 1;
        }
        for &b in &buckets {
            assert!((800..1200).contains(&b), "bucket count {b} out of range");
        }
    }
}
