//! # ppp: practical path profiling for dynamic optimizers
//!
//! An umbrella crate re-exporting the whole PPP reproduction workspace
//! (Bond & McKinley, *Practical Path Profiling for Dynamic Optimizers*,
//! CGO 2005):
//!
//! - [`ir`] — the compiler IR, CFG analyses, edge/path profile types;
//! - [`vm`] — the deterministic interpreter, cost model, and exact tracer;
//! - [`opt`] — edge-profile-guided inlining and unrolling (§7.3);
//! - [`core`] — PP, TPP, and PPP instrumentation plus flow estimation and
//!   the accuracy/coverage metrics (§3–6 and the appendix);
//! - [`workloads`] — the synthetic SPEC2000-style benchmark generator;
//! - [`lint`] — dataflow-based static analysis and the
//!   instrumentation-soundness checker (`repro lint`);
//! - [`repro`] — the experiment pipeline regenerating Tables 1–2 and
//!   Figures 9–13.
//!
//! See the `examples/` directory for runnable walkthroughs, and the
//! `ppp-repro` binary for the full evaluation.

pub use ppp_core as core;
pub use ppp_ir as ir;
pub use ppp_lint as lint;
pub use ppp_opt as opt;
pub use ppp_repro as repro;
pub use ppp_vm as vm;
pub use ppp_workloads as workloads;
