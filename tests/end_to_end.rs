//! Cross-crate integration tests: the whole stack, end to end, on
//! generated workloads.

use ppp::core::{instrument_module, measured_paths, normalize_module, ProfilerConfig, Technique};
use ppp::ir::verify_module;
use ppp::opt::{inline_module, unroll_module, InlineOptions, UnrollOptions};
use ppp::vm::{run, RunOptions};
use ppp::workloads::{generate, spec2000_suite, BenchmarkSpec};

fn workload(name: &str) -> ppp::ir::Module {
    let mut m = generate(&BenchmarkSpec::named(name).scaled(0.05));
    normalize_module(&mut m);
    m
}

/// Instrumentation must never change program semantics, for any profiler
/// configuration, on any benchmark personality — the checksum is the
/// oracle.
#[test]
fn instrumentation_is_semantically_transparent_across_suite() {
    let suite = spec2000_suite();
    for entry in suite.iter().step_by(4) {
        let m = generate(&entry.spec.clone().scaled(0.02));
        let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let edges = traced.edge_profile.unwrap();
        for config in [
            ProfilerConfig::pp(),
            ProfilerConfig::tpp(),
            ProfilerConfig::ppp(),
        ] {
            let plan = instrument_module(&m, Some(&edges), &config);
            assert_eq!(verify_module(&plan.module), Ok(()), "{}", entry.spec.name);
            let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
            assert_eq!(
                r.checksum,
                traced.checksum,
                "{} under {}",
                entry.spec.name,
                config.label()
            );
        }
    }
}

/// The full staged-optimizer pipeline (profile → inline → unroll →
/// re-instrument) preserves semantics at every step.
#[test]
fn optimization_pipeline_preserves_semantics() {
    let mut m = workload("pipeline-e2e");
    let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
    let checksum = traced.checksum;
    let edges0 = traced.edge_profile.unwrap();

    inline_module(&mut m, &edges0, &InlineOptions::default());
    assert_eq!(verify_module(&m), Ok(()));
    let r1 = run(&m, "main", &RunOptions::default().traced()).unwrap();
    assert_eq!(r1.checksum, checksum, "inlining broke semantics");

    let edges1 = r1.edge_profile.unwrap();
    unroll_module(&mut m, &edges1, &UnrollOptions::default());
    normalize_module(&mut m);
    assert_eq!(verify_module(&m), Ok(()));
    let r2 = run(&m, "main", &RunOptions::default().traced()).unwrap();
    assert_eq!(r2.checksum, checksum, "unrolling broke semantics");

    // And instrumenting the optimized module is still transparent.
    let edges2 = r2.edge_profile.unwrap();
    let plan = instrument_module(&m, Some(&edges2), &ProfilerConfig::ppp());
    let r3 = run(&plan.module, "main", &RunOptions::default()).unwrap();
    assert_eq!(
        r3.checksum, checksum,
        "instrumenting optimized code broke semantics"
    );
}

/// PP's measured profile equals the tracer's exact profile whenever no
/// hash table loses paths.
#[test]
fn pp_measures_exactly_when_arrays_suffice() {
    let mut spec = BenchmarkSpec::named("exact-check").scaled(0.05);
    spec.explosive_funcs = 0; // keep every routine under the hash threshold
    let m = generate(&spec);
    let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();
    let truth = traced.path_profile.unwrap();
    let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::pp());
    assert!(plan.funcs.iter().all(|f| !f.uses_hash));
    let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
    assert_eq!(r.store.total_lost(), 0);
    let measured = measured_paths(&plan, &m, &r.store);
    assert_eq!(measured.total_unit_flow(), truth.total_unit_flow());
    for (fid, key, stats) in truth.iter() {
        let got = measured.func(fid).paths.get(key).copied();
        assert_eq!(got.map(|s| s.freq), Some(stats.freq), "path {key:?}");
    }
}

/// Overheads must be ordered PPP <= TPP <= PP (allowing tiny noise) and
/// PPP must never lose much accuracy to TPP.
#[test]
fn profiler_ordering_holds_on_generated_workloads() {
    for name in ["order-a", "order-b"] {
        let m = workload(name);
        let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let base = traced.cost;
        let edges = traced.edge_profile.unwrap();
        let cost = |c: ProfilerConfig| {
            let plan = instrument_module(&m, Some(&edges), &c);
            run(&plan.module, "main", &RunOptions::default())
                .unwrap()
                .overhead_vs(base)
                .expect("live baseline")
        };
        let pp = cost(ProfilerConfig::pp());
        let tpp = cost(ProfilerConfig::tpp());
        let ppp = cost(ProfilerConfig::ppp());
        assert!(tpp <= pp + 1e-9, "{name}: TPP {tpp} > PP {pp}");
        assert!(ppp <= tpp + 1e-9, "{name}: PPP {ppp} > TPP {tpp}");
    }
}

/// Each leave-one-out ablation runs, verifies, and costs at least as much
/// as full PPP minus noise (removing a technique should not help much).
#[test]
fn ablations_cost_no_less_than_full_ppp() {
    let m = workload("ablate");
    let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
    let base = traced.cost;
    let edges = traced.edge_profile.unwrap();
    let full = {
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
        run(&plan.module, "main", &RunOptions::default())
            .unwrap()
            .overhead_vs(base)
            .expect("live baseline")
    };
    for t in Technique::ALL {
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp_without(t));
        assert_eq!(verify_module(&plan.module), Ok(()), "{t:?}");
        let oh = run(&plan.module, "main", &RunOptions::default())
            .unwrap()
            .overhead_vs(base)
            .expect("live baseline");
        // The paper observes occasional anomalies where removing a
        // technique helps (SPN permutes cache behaviour); under the cost
        // model only small reversals are possible (ordering effects).
        assert!(
            oh >= full - 0.02,
            "removing {t:?} reduced overhead too much: {oh} vs {full}"
        );
    }
}

/// The textual IR round-trips for generated modules (printer ↔ parser).
#[test]
fn generated_modules_roundtrip_through_text() {
    let m = workload("roundtrip");
    let text = ppp::ir::print_module(&m);
    let parsed = ppp::ir::parse_module(&text).expect("printed module parses");
    assert_eq!(m, parsed);
}

/// Real profiles persist and reload losslessly (the staged-optimizer
/// save/load cycle).
#[test]
fn profiles_roundtrip_through_persistence() {
    let m = workload("persist");
    let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
    let edges = traced.edge_profile.unwrap();
    let paths = traced.path_profile.unwrap();

    let etext = ppp::ir::write_edge_profile(&m, &edges);
    let eback = ppp::ir::read_edge_profile(&m, &etext).expect("edge profile parses");
    assert_eq!(edges, eback);

    let ptext = ppp::ir::write_path_profile(&paths);
    let pback = ppp::ir::read_path_profile(&m, &ptext).expect("path profile parses");
    assert_eq!(paths.total_unit_flow(), pback.total_unit_flow());
    assert_eq!(paths.distinct_paths(), pback.distinct_paths());
    assert_eq!(paths.total_branch_flow(), pback.total_branch_flow());

    // A reloaded edge profile drives instrumentation identically.
    let plan_a = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
    let plan_b = instrument_module(&m, Some(&eback), &ProfilerConfig::ppp());
    assert_eq!(plan_a.module, plan_b.module);
}

/// Determinism: the same spec and seed produce identical results at every
/// stage, including instrumented runs.
#[test]
fn whole_stack_is_deterministic() {
    let run_once = || {
        let m = workload("determinism");
        let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
        let edges = traced.edge_profile.unwrap();
        let plan = instrument_module(&m, Some(&edges), &ProfilerConfig::ppp());
        let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
        (traced.checksum, traced.cost, r.cost, r.prof_steps)
    };
    assert_eq!(run_once(), run_once());
}
