//! End-to-end property tests: random workload knobs → generate → trace →
//! instrument (each profiler) → run → decode, checking the global
//! correctness contracts.

use ppp::core::{instrument_module, measured_paths, ProfilerConfig};
use ppp::ir::verify_module;
use ppp::vm::{run, RunOptions};
use ppp::workloads::{generate, BenchmarkSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = BenchmarkSpec> {
    (
        any::<u64>(),
        0.0f64..1.0,
        0.5f64..0.99,
        2i64..40,
        0.0f64..1.0,
        1usize..6,
        0usize..2,
    )
        .prop_map(
            |(seed, correlation, bias, avg_trip, counted, funcs, explosive)| {
                let mut s = BenchmarkSpec::named("prop");
                s.seed = seed;
                s.correlation = correlation;
                s.bias = bias;
                s.avg_trip = avg_trip;
                s.counted_loop_prob = counted;
                s.funcs = funcs;
                s.explosive_funcs = explosive;
                s.explosive_diamonds = 8; // keep path counts manageable
                s.outer_iters = 40;
                s
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_profiler_is_transparent_and_decodes_real_paths(spec in arb_spec()) {
        let m = generate(&spec);
        prop_assert_eq!(verify_module(&m), Ok(()));
        let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
        prop_assert_eq!(traced.halt, ppp::vm::HaltReason::Finished);
        let edges = traced.edge_profile.unwrap();
        let truth = traced.path_profile.unwrap();

        for config in [ProfilerConfig::pp(), ProfilerConfig::tpp(), ProfilerConfig::ppp()] {
            let plan = instrument_module(&m, Some(&edges), &config);
            prop_assert_eq!(verify_module(&plan.module), Ok(()));
            let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
            // Contract 1: semantic transparency.
            prop_assert_eq!(r.checksum, traced.checksum, "{} broke semantics", config.label());
            // Contract 2: instrumentation only adds cost.
            prop_assert!(r.cost >= traced.cost);
            // Contract 3: PP and TPP only record paths that actually ran.
            // PPP's pushing may let a cold execution record a *hot* path
            // number whose own path never ran (§4.4) — for PPP we require
            // the branch count to match whenever the path did run, and
            // that the total measured unit flow never exceeds the real
            // dynamic path count (each execution counts at most once).
            let measured = measured_paths(&plan, &m, &r.store);
            for (fid, key, stats) in measured.iter() {
                let actual = truth.func(fid).paths.get(key);
                if config.kind != ppp::core::ProfilerKind::Ppp {
                    prop_assert!(
                        actual.is_some(),
                        "{}: decoded a path that never ran: {:?}",
                        config.label(),
                        key
                    );
                }
                if let Some(actual) = actual {
                    prop_assert_eq!(stats.branches, actual.branches);
                }
            }
            // PP/TPP: at most one count per execution. PPP's push-past-
            // cold can in principle count one cold execution more than
            // once (multiple adopted overcounts), so it only gets a loose
            // sanity bound.
            if config.kind == ppp::core::ProfilerKind::Ppp {
                prop_assert!(
                    measured.total_unit_flow() <= 2 * truth.total_unit_flow(),
                    "PPP: implausible overcount volume"
                );
            } else {
                prop_assert!(
                    measured.total_unit_flow() <= truth.total_unit_flow(),
                    "{}: counted more paths than executed",
                    config.label()
                );
            }
            // Contract 4: PP with arrays is exact.
            if config.kind == ppp::core::ProfilerKind::Pp
                && plan.funcs.iter().all(|f| !f.uses_hash)
            {
                prop_assert_eq!(
                    measured.total_unit_flow(),
                    truth.total_unit_flow(),
                    "PP/array must count every dynamic path"
                );
            }
        }
    }
}
