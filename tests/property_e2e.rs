//! End-to-end randomized tests: random workload knobs → generate → trace →
//! instrument (each profiler) → run → decode, checking the global
//! correctness contracts. Deterministic seed-loop version of what used to
//! be a property test: each case derives its knobs from a SplitMix64
//! stream, so failures reproduce from the case index alone.

use ppp::core::{instrument_module, measured_paths, ProfilerConfig};
use ppp::ir::verify_module;
use ppp::vm::{run, RunOptions, SplitMix64};
use ppp::workloads::{generate, BenchmarkSpec};

const CASES: u64 = 12;

fn unit(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn case_spec(case: u64) -> BenchmarkSpec {
    let mut rng = SplitMix64::new(0xE2E_0000 + case);
    let mut s = BenchmarkSpec::named("prop");
    s.seed = rng.next_u64();
    s.correlation = unit(&mut rng);
    s.bias = 0.5 + 0.49 * unit(&mut rng);
    s.avg_trip = 2 + rng.below(38);
    s.counted_loop_prob = unit(&mut rng);
    s.funcs = 1 + rng.below(5) as usize;
    s.explosive_funcs = rng.below(2) as usize;
    s.explosive_diamonds = 8; // keep path counts manageable
    s.outer_iters = 40;
    s
}

#[test]
fn every_profiler_is_transparent_and_decodes_real_paths() {
    for case in 0..CASES {
        let spec = case_spec(case);
        let m = generate(&spec);
        assert_eq!(verify_module(&m), Ok(()), "case {case}");
        let traced = run(&m, "main", &RunOptions::default().traced()).unwrap();
        assert_eq!(traced.halt, ppp::vm::HaltReason::Finished, "case {case}");
        let edges = traced.edge_profile.unwrap();
        let truth = traced.path_profile.unwrap();

        for config in [
            ProfilerConfig::pp(),
            ProfilerConfig::tpp(),
            ProfilerConfig::ppp(),
        ] {
            let plan = instrument_module(&m, Some(&edges), &config);
            assert_eq!(verify_module(&plan.module), Ok(()), "case {case}");
            let r = run(&plan.module, "main", &RunOptions::default()).unwrap();
            // Contract 1: semantic transparency.
            assert_eq!(
                r.checksum,
                traced.checksum,
                "case {case}: {} broke semantics",
                config.label()
            );
            // Contract 2: instrumentation only adds cost.
            assert!(r.cost >= traced.cost, "case {case}");
            // Contract 3: PP and TPP only record paths that actually ran.
            // PPP's pushing may let a cold execution record a *hot* path
            // number whose own path never ran (§4.4) — for PPP we require
            // the branch count to match whenever the path did run, and
            // that the total measured unit flow never exceeds the real
            // dynamic path count (each execution counts at most once).
            let measured = measured_paths(&plan, &m, &r.store);
            for (fid, key, stats) in measured.iter() {
                let actual = truth.func(fid).paths.get(key);
                if config.kind != ppp::core::ProfilerKind::Ppp {
                    assert!(
                        actual.is_some(),
                        "case {case}: {}: decoded a path that never ran: {key:?}",
                        config.label(),
                    );
                }
                if let Some(actual) = actual {
                    assert_eq!(stats.branches, actual.branches, "case {case}");
                }
            }
            // PP/TPP: at most one count per execution. PPP's push-past-
            // cold can in principle count one cold execution more than
            // once (multiple adopted overcounts), so it only gets a loose
            // sanity bound.
            if config.kind == ppp::core::ProfilerKind::Ppp {
                assert!(
                    measured.total_unit_flow() <= 2 * truth.total_unit_flow(),
                    "case {case}: PPP: implausible overcount volume"
                );
            } else {
                assert!(
                    measured.total_unit_flow() <= truth.total_unit_flow(),
                    "case {case}: {}: counted more paths than executed",
                    config.label()
                );
            }
            // Contract 4: PP with arrays is exact.
            if config.kind == ppp::core::ProfilerKind::Pp && plan.funcs.iter().all(|f| !f.uses_hash)
            {
                assert_eq!(
                    measured.total_unit_flow(),
                    truth.total_unit_flow(),
                    "case {case}: PP/array must count every dynamic path"
                );
            }
        }
    }
}
